"""Figures 4-5: the Jukic-Vrbsky model and its interpretation table."""

from repro.reporting.figures import figure_04, figure_05
from repro.workloads import FIGURE5_EXPECTED, jv_mission


def test_fig04_artifact_verified():
    assert figure_04().verified


def test_fig05_artifact_verified():
    assert figure_05().verified


def test_fig05_interpretation_table(benchmark):
    jv = jv_mission()
    table = benchmark(jv.interpretation_table, ["u", "c", "s"])
    for tid, expected in FIGURE5_EXPECTED.items():
        got = tuple(table[tid][level].value for level in ("u", "c", "s"))
        assert got == expected


def test_fig04_annotation_build(benchmark):
    jv = benchmark(jv_mission)
    assert len(jv.tuples) == 10
