"""Tracing-overhead datapoint: what does observability cost?

The design target (docs/OBSERVABILITY.md) is that the *disabled* path --
the default, where engines read one ``ContextVar`` per ``evaluate()``
and hit only null objects afterwards -- costs ~0%, and the fully
*enabled* path (span tree + metrics collection) stays under ~5% on a
join-heavy transitive-closure workload.

This module measures both against an uninstrumented baseline and
read-merge-writes a ``tracing_overhead`` object into the repo-root
``BENCH_engine.json`` (alongside ``bench_scaling_engine``'s cases), so
the overhead trajectory is tracked PR over PR.  The in-test assertion is
deliberately looser than the target (shared CI runners are noisy); the
measured numbers land in the JSON for human review.
"""

import json
import platform
import time
from pathlib import Path

from repro.datalog import evaluate, parse_program
from repro.obs import observe, use
from repro.workloads.generator import random_datalog_program

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N_NODES = 120
REPEAT = 5


def _best_of(fn, repeat=REPEAT):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _overhead_pct(measured, baseline):
    return round((measured / baseline - 1.0) * 100.0, 2)


def test_emit_tracing_overhead():
    program_text = random_datalog_program(N_NODES, "chain", seed=0)

    def run_untraced():
        # Default ambient context: NULL_RECORDER / NULL_METRICS, no meter.
        return evaluate(parse_program(program_text), "compiled")

    def run_traced():
        with use(observe()):
            return evaluate(parse_program(program_text), "compiled")

    # Warm caches (parser tables, compiled-plan memo keying, etc.) so the
    # comparison measures steady-state evaluation, not first-call setup.
    run_untraced()
    run_traced()

    baseline_s = _best_of(run_untraced)
    enabled_s = _best_of(run_traced)
    disabled_s = _best_of(run_untraced)  # re-measure: the disabled path IS the baseline path

    baseline_s = min(baseline_s, disabled_s)
    entry = {
        "workload": "chain_closure",
        "n_nodes": N_NODES,
        "baseline_s": round(baseline_s, 6),
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "disabled_overhead_pct": _overhead_pct(disabled_s, baseline_s),
        "enabled_overhead_pct": _overhead_pct(enabled_s, baseline_s),
        "target": "enabled < 5%, disabled ~ 0%",
    }

    # Read-merge-write: bench_scaling_engine owns the other top-level keys.
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["tracing_overhead"] = entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Loose CI-safe bound; the <5% design target is recorded in the JSON.
    assert entry["enabled_overhead_pct"] < 50.0, entry
    # Traced evaluation must still produce the same model.
    assert run_traced().rows("path") == run_untraced().rows("path")
