"""Resilience-overhead datapoint: what does the executor wrapper cost?

The design target (docs/RESILIENCE.md) is that routing evaluation
through a :class:`~repro.resilience.ResilientExecutor` with nothing
armed -- no faults, no budget, first attempt succeeds -- costs under 5%
over calling :func:`~repro.datalog.engine.evaluate` directly: the
disabled path is one ``try`` frame and a handful of attribute reads per
call.

This module measures the wrapped path against the direct call on the
same join-heavy transitive-closure workload ``bench_tracing_overhead``
uses, and read-merge-writes a ``resilience_overhead`` object into the
repo-root ``BENCH_engine.json`` so the trajectory is tracked PR over
PR.  The in-test assertion is deliberately looser than the target
(shared CI runners are noisy); the measured numbers land in the JSON
for human review.
"""

import json
import platform
import time
from pathlib import Path

from repro.datalog import evaluate, parse_program
from repro.resilience import ResilientExecutor
from repro.workloads.generator import random_datalog_program

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N_NODES = 120
REPEAT = 5


def _best_of(fn, repeat=REPEAT):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _overhead_pct(measured, baseline):
    return round((measured / baseline - 1.0) * 100.0, 2)


def test_emit_resilience_overhead():
    program_text = random_datalog_program(N_NODES, "chain", seed=0)
    executor = ResilientExecutor()

    def run_direct():
        return evaluate(parse_program(program_text), "compiled")

    def run_wrapped():
        return executor.evaluate(parse_program(program_text), "compiled")

    # Warm caches so the comparison measures steady-state evaluation.
    run_direct()
    run_wrapped()

    direct_s = _best_of(run_direct)
    wrapped_s = _best_of(run_wrapped)
    direct_again_s = _best_of(run_direct)  # run-to-run noise floor

    baseline_s = min(direct_s, direct_again_s)
    entry = {
        "workload": "chain_closure",
        "n_nodes": N_NODES,
        "baseline_s": round(baseline_s, 6),
        "wrapped_s": round(wrapped_s, 6),
        "wrapped_overhead_pct": _overhead_pct(wrapped_s, baseline_s),
        "target": "disabled-path executor < 5%",
    }

    # Read-merge-write: bench_scaling_engine owns the other top-level keys.
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["resilience_overhead"] = entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Loose CI-safe bound; the <5% design target is recorded in the JSON.
    assert entry["wrapped_overhead_pct"] < 50.0, entry
    # The wrapped call must still produce the same model.
    assert run_wrapped().rows("path") == run_direct().rows("path")
