"""Ablation: evaluation-strategy choices for the Datalog back-end.

CORAL performed magic rewriting and semi-naive iteration internally; this
bench reconstructs the design space on a bound transitive-closure query:

* naive vs semi-naive bottom-up (delta iteration pays off with depth);
* full bottom-up vs predicate-level demand (top-down) vs tuple-level
  demand (magic sets) when only one source node is asked for.
"""

import pytest

from repro.datalog import (
    TopDownEngine,
    answer_rows,
    evaluate,
    magic_query,
    parse_atom,
    parse_program,
)
from repro.workloads.generator import random_datalog_program

N_NODES = 40


@pytest.fixture(scope="module")
def chain_text():
    return random_datalog_program(N_NODES, "chain")


@pytest.fixture(scope="module")
def expected(chain_text):
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")
    return answer_rows(evaluate(parse_program(chain_text)), goal)


def test_ablation_naive(benchmark, chain_text, expected):
    program = parse_program(chain_text)
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")

    def run():
        return answer_rows(evaluate(program, "naive"), goal)

    assert benchmark(run) == expected


def test_ablation_seminaive(benchmark, chain_text, expected):
    program = parse_program(chain_text)
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")

    def run():
        return answer_rows(evaluate(program, "seminaive"), goal)

    assert benchmark(run) == expected


def test_ablation_topdown(benchmark, chain_text, expected):
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")

    def run():
        return TopDownEngine(parse_program(chain_text)).answer_rows(goal)

    assert benchmark(run) == expected


def test_ablation_magic(benchmark, chain_text, expected):
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")

    def run():
        return magic_query(parse_program(chain_text), goal)

    assert benchmark(run) == expected


def test_magic_derives_fewer_facts(chain_text):
    """The point of demand: magic evaluation touches a fraction of the
    full closure when the goal is bound near the chain's end."""
    from repro.datalog import magic_transform
    program = parse_program(chain_text)
    goal = parse_atom(f"path(n{N_NODES - 5}, X)")
    magic = magic_transform(parse_program(chain_text), goal)
    magic_model = evaluate(magic.program)
    derived = sum(
        len(magic_model.rows(pred))
        for pred in magic_model.predicates() if pred.startswith("path__")
    )
    full = len(evaluate(program).rows("path"))
    assert derived < full / 10


def test_ablation_join_order_pessimal(benchmark):
    """A triangle rule written worst-first (three cross-producted scans
    before any join): greedy most-bound-first ordering turns the cubic
    enumeration into index-driven joins."""
    text = _triangle_workload()

    def run():
        return evaluate(parse_program(text), optimize_joins=True).rows("triple")

    rows = benchmark(run)
    assert len(rows) == 58


def test_ablation_join_order_baseline(benchmark):
    """The same pessimal rule evaluated verbatim, for comparison."""
    text = _triangle_workload()

    def run():
        return evaluate(parse_program(text)).rows("triple")

    rows = benchmark(run)
    assert len(rows) == 58


def _triangle_workload(n: int = 60) -> str:
    facts = "\n".join(f"person(p{i})." for i in range(n))
    facts += "\n" + "\n".join(f"likes(p{i}, p{i + 1})." for i in range(n - 1))
    return facts + """
    triple(A, B, C) :- person(A), person(B), person(C), likes(A, B), likes(B, C).
    """
