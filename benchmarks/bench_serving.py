"""Serving-layer datapoint: sustained concurrency over one database.

PR 7 adds the asyncio serving layer; its design target (docs/SERVING.md)
is to multiplex >= 1000 concurrent clients over one shared
MultiLogDatabase without shedding, with bounded tail latency.  This
bench drives two cases against an in-process server on an ephemeral
port and read-merge-writes a ``serving_cases`` stanza into the
repo-root ``BENCH_engine.json``:

* ``ask_storm`` -- N concurrent clients (default 1000; override with
  ``MULTILOG_BENCH_CLIENTS``), each asking at its clearance, all reads
  riding the snapshot read lock concurrently.
* ``mixed_writes`` -- 200 clients interleaving asks with asserts, so
  the write-preferring lock is exercised: every answer still computed
  at one frozen version while writers serialize through the journal-
  backed session path.

Latency is measured per request at the client (so it includes loop
scheduling and admission control, not just engine time); the stanza
records p50/p95/p99 and throughput.  In-test assertions stay loose
(shared CI runners are noisy); the numbers land in the JSON for review.
"""

import asyncio
import json
import os
import platform
import time
from pathlib import Path

from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

CLEARANCES = ("u", "c", "s")
ASKS = {
    "u": "u[p(K : a -C-> V)] << cau",
    "c": "c[p(K : a -C-> V)] << opt",
    "s": "s[p(K : a -C-> V)] << cau",
}

N_CLIENTS = int(os.environ.get("MULTILOG_BENCH_CLIENTS", "1000"))
CONNECT_CHUNK = 100  # keep the SYN burst under the listen backlog


def _percentile(sorted_latencies, q):
    index = min(len(sorted_latencies) - 1,
                int(q * (len(sorted_latencies) - 1) + 0.5))
    return sorted_latencies[index]


async def _connect_all(host, port, count):
    clients = []
    for start in range(0, count, CONNECT_CHUNK):
        chunk = range(start, min(start + CONNECT_CHUNK, count))
        clients.extend(await asyncio.gather(*(
            ServingClient.connect(host, port, CLEARANCES[i % len(CLEARANCES)])
            for i in chunk)))
    return clients


async def _run_case(name, n_clients, ops_per_client, assert_every):
    """Drive one case; returns the stanza entry."""
    server = MultiLogServer(
        D1_SOURCE,
        ServerConfig(clearance="s", max_inflight=4096, workers=8))
    await server.start()
    host, port = server.address
    base_version = server.root.database.version
    latencies: list[float] = []
    failures: list[dict] = []

    async def drive(index, client):
        clearance = CLEARANCES[index % len(CLEARANCES)]
        for op in range(ops_per_client):
            if assert_every and op % assert_every == assert_every - 1:
                payload = {"op": "assert",
                           "clause": f"{clearance}[t(b{index}_{op} : "
                                     f"f -{clearance}-> {op})]."}
            else:
                payload = {"op": "ask", "query": ASKS[clearance]}
            started = time.perf_counter()
            response = await client.request(payload)
            latencies.append(time.perf_counter() - started)
            if not response.get("ok"):
                failures.append(response)

    clients = await _connect_all(host, port, n_clients)
    try:
        assert server.stats.connections == n_clients
        wall_start = time.perf_counter()
        await asyncio.gather(*(drive(i, c) for i, c in enumerate(clients)))
        wall = time.perf_counter() - wall_start
    finally:
        await asyncio.gather(*(c.close() for c in clients))
        await server.stop()

    latencies.sort()
    entry = {
        "case": name,
        "clients": n_clients,
        "requests": len(latencies),
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(latencies) / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "shed": server.stats.shed_total,
        "degraded": server.stats.degraded_total,
        "errors": len(failures),
        "asserts": server.stats.asserts_total,
        "versions_committed": server.root.database.version - base_version,
    }
    assert not failures, failures[:3]
    assert server.stats.shed_total == 0, entry
    return entry


def test_emit_serving_bench():
    async def main():
        cases = [await _run_case("ask_storm", N_CLIENTS,
                                 ops_per_client=3, assert_every=0)]
        cases.append(await _run_case("mixed_writes", min(200, N_CLIENTS),
                                     ops_per_client=5, assert_every=5))
        return cases

    cases = asyncio.run(main())

    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["serving_cases"] = {
        "target": ">= 1000 concurrent clients, zero shed, bounded p99",
        "cases": cases,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    storm = cases[0]
    assert storm["clients"] >= min(N_CLIENTS, 1000)
    assert storm["p99_ms"] > 0
    mixed = cases[1]
    assert mixed["asserts"] > 0
    # Writes are serialized: every assert produced exactly one version.
    assert mixed["versions_committed"] == mixed["asserts"]
