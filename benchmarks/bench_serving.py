"""Serving-layer datapoint: sustained concurrency over one database.

PR 7 adds the asyncio serving layer; its design target (docs/SERVING.md)
is to multiplex >= 1000 concurrent clients over one shared
MultiLogDatabase without shedding, with bounded tail latency.  This
bench drives two cases against an in-process server on an ephemeral
port and read-merge-writes a ``serving_cases`` stanza into the
repo-root ``BENCH_engine.json``:

* ``ask_storm`` -- N concurrent clients (default 1000; override with
  ``MULTILOG_BENCH_CLIENTS``), each asking at its clearance, all reads
  riding the snapshot read lock concurrently.
* ``mixed_writes`` -- 200 clients interleaving asks with asserts, so
  the write-preferring lock is exercised: every answer still computed
  at one frozen version while writers serialize through the journal-
  backed session path.

Latency is measured per request at the client (so it includes loop
scheduling and admission control, not just engine time); the stanza
records p50/p95/p99 and throughput.  In-test assertions stay loose
(shared CI runners are noisy); the numbers land in the JSON for review.
"""

import asyncio
import json
import os
import platform
import time
from pathlib import Path

from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

CLEARANCES = ("u", "c", "s")
ASKS = {
    "u": "u[p(K : a -C-> V)] << cau",
    "c": "c[p(K : a -C-> V)] << opt",
    "s": "s[p(K : a -C-> V)] << cau",
}

N_CLIENTS = int(os.environ.get("MULTILOG_BENCH_CLIENTS", "1000"))
CONNECT_CHUNK = 100  # keep the SYN burst under the listen backlog


def _percentile(sorted_latencies, q):
    index = min(len(sorted_latencies) - 1,
                int(q * (len(sorted_latencies) - 1) + 0.5))
    return sorted_latencies[index]


async def _connect_all(host, port, count):
    clients = []
    for start in range(0, count, CONNECT_CHUNK):
        chunk = range(start, min(start + CONNECT_CHUNK, count))
        clients.extend(await asyncio.gather(*(
            ServingClient.connect(host, port, CLEARANCES[i % len(CLEARANCES)])
            for i in chunk)))
    return clients


async def _run_case(name, n_clients, ops_per_client, assert_every):
    """Drive one case; returns the stanza entry."""
    server = MultiLogServer(
        D1_SOURCE,
        ServerConfig(clearance="s", max_inflight=4096, workers=8))
    await server.start()
    host, port = server.address
    base_version = server.root.database.version
    latencies: list[float] = []
    failures: list[dict] = []

    async def drive(index, client):
        clearance = CLEARANCES[index % len(CLEARANCES)]
        for op in range(ops_per_client):
            if assert_every and op % assert_every == assert_every - 1:
                payload = {"op": "assert",
                           "clause": f"{clearance}[t(b{index}_{op} : "
                                     f"f -{clearance}-> {op})]."}
            else:
                payload = {"op": "ask", "query": ASKS[clearance]}
            started = time.perf_counter()
            response = await client.request(payload)
            latencies.append(time.perf_counter() - started)
            if not response.get("ok"):
                failures.append(response)

    clients = await _connect_all(host, port, n_clients)
    try:
        assert server.stats.connections == n_clients
        wall_start = time.perf_counter()
        await asyncio.gather(*(drive(i, c) for i, c in enumerate(clients)))
        wall = time.perf_counter() - wall_start
    finally:
        await asyncio.gather(*(c.close() for c in clients))
        await server.stop()

    latencies.sort()
    entry = {
        "case": name,
        "clients": n_clients,
        "requests": len(latencies),
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(latencies) / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "shed": server.stats.shed_total,
        "degraded": server.stats.degraded_total,
        "errors": len(failures),
        "asserts": server.stats.asserts_total,
        "versions_committed": server.root.database.version - base_version,
    }
    assert not failures, failures[:3]
    assert server.stats.shed_total == 0, entry
    return entry


async def _paired_latencies(source, query, clearance, pairs):
    """Per-request latencies: untraced vs traced, paired per request.

    Both servers (one with ``trace=True``, one without) are up
    simultaneously and each pair of asks runs back to back with the
    side order alternating, so CPU-frequency drift and noisy
    neighbours on a shared runner hit both sides equally -- sequential
    whole-run A/B comparison was measured at +-20% run-to-run on the
    same config, which would drown any real overhead signal.
    """
    off_server = MultiLogServer(source, ServerConfig(
        clearance=clearance, max_inflight=4096, workers=8))
    on_server = MultiLogServer(source, ServerConfig(
        clearance=clearance, max_inflight=4096, workers=8, trace=True))
    await off_server.start()
    await on_server.start()
    off_client = await ServingClient.connect(*off_server.address, clearance)
    on_client = await ServingClient.connect(*on_server.address, clearance)
    untraced: list[float] = []
    traced: list[float] = []
    try:
        for warm_client in (off_client, on_client):
            await warm_client.request({"op": "ask", "query": query})
        for pair in range(pairs):
            sides = ((off_client, untraced), (on_client, traced))
            if pair % 2:
                sides = tuple(reversed(sides))
            for client, sink in sides:
                started = time.perf_counter()
                response = await client.request(
                    {"op": "ask", "query": query})
                sink.append(time.perf_counter() - started)
                assert response.get("ok"), response
    finally:
        await off_client.close()
        await on_client.close()
        await off_server.stop()
        await on_server.stop()
    untraced.sort()
    traced.sort()
    return untraced, traced


async def _measure_tracing_overhead():
    """Per-request cost of full tracing, absolute and relative.

    The traced server opens a root span per request, threads it through
    the executor offload (contextvars copy) and grafts the engine's
    span tree under it -- the whole tentpole path.  Tracing is a fixed
    per-request cost (a few tens of microseconds of span/scope
    bookkeeping), so the stanza reports it both ways:

    * ``fixed_overhead_us_p50`` -- the absolute cost, exposed by a
      paired run over the near-trivial D1 ask (~0.6 ms wall) where it
      is the whole signal;
    * ``overhead_pct`` -- the gated p95 ratio over a representative
      medium-weight query (a generated 120-tuple polyinstantiated
      database, several ms of engine time per ask), which is what a
      production ask mix actually pays.
    """
    from repro.workloads.generator import random_multilog_database

    # The absolute cost, measured where it dominates: the light ask.
    light_off, light_on = await _paired_latencies(
        D1_SOURCE, ASKS["s"], "s", pairs=300)
    fixed_us = (_percentile(light_on, 0.50)
                - _percentile(light_off, 0.50)) * 1e6

    # The gated ratio, measured on a representative query weight.  The
    # p95 of a multi-ms engine ask carries scheduler/thermal tail noise
    # even under pairing, so the gate statistic is the median over
    # three independent sub-trials (standard repeated-measurement
    # hygiene; every sub-trial lands in the stanza for review).
    db = random_multilog_database(30, seed=23, polyinstantiation_rate=0.3)
    rep_query = "t[p(K : a1 -C-> V)] << cau"
    trials = []
    for _trial in range(3):
        rep_off, rep_on = await _paired_latencies(db, rep_query, "t",
                                                  pairs=800)
        trials.append({
            "requests_per_side": len(rep_off),
            "p95_untraced_ms": round(_percentile(rep_off, 0.95) * 1e3, 3),
            "p95_traced_ms": round(_percentile(rep_on, 0.95) * 1e3, 3),
            "p50_untraced_ms": round(_percentile(rep_off, 0.50) * 1e3, 3),
            "p50_traced_ms": round(_percentile(rep_on, 0.50) * 1e3, 3),
            "overhead_pct": round((_percentile(rep_on, 0.95)
                                   / _percentile(rep_off, 0.95)
                                   - 1.0) * 100.0, 2),
        })
    median = sorted(trials, key=lambda t: t["overhead_pct"])[1]
    return {
        "case": "trace_on_vs_off",
        "method": "paired per-request A/B, alternating order, "
                  "median of 3 sub-trials",
        **median,
        "trials_overhead_pct": [t["overhead_pct"] for t in trials],
        "fixed_overhead_us_p50": round(fixed_us, 1),
        "light_query_p50_ms": round(_percentile(light_off, 0.50) * 1e3, 3),
    }


def test_emit_serving_bench():
    async def main():
        cases = [await _run_case("ask_storm", N_CLIENTS,
                                 ops_per_client=3, assert_every=0)]
        cases.append(await _run_case("mixed_writes", min(200, N_CLIENTS),
                                     ops_per_client=5, assert_every=5))
        return cases, await _measure_tracing_overhead()

    cases, overhead = asyncio.run(main())

    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["serving_cases"] = {
        "target": ">= 1000 concurrent clients, zero shed, bounded p99",
        "cases": cases,
    }
    payload["serving_trace_overhead"] = {
        "target": "request tracing costs < 5% at p95",
        **overhead,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    storm = cases[0]
    assert storm["clients"] >= min(N_CLIENTS, 1000)
    assert storm["p99_ms"] > 0
    mixed = cases[1]
    assert mixed["asserts"] > 0
    # Writes are serialized: every assert produced exactly one version.
    assert mixed["versions_committed"] == mixed["asserts"]
    assert overhead["overhead_pct"] < 5.0, overhead
