"""Section 3.2: the extended-SQL "without any doubt" query."""

import pytest

from repro.msql import WITHOUT_DOUBT_QUERY, Catalog, SqlSession, parse_sql
from repro.workloads import mission_relation


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    relation, _ = mission_relation()
    cat.register(relation)
    return cat


def test_sec32_parse(benchmark):
    statement = benchmark(parse_sql, WITHOUT_DOUBT_QUERY)
    assert statement.table == "mission"


@pytest.mark.parametrize("level, expected", [
    ("u", []), ("c", []), ("s", [("voyager",)]),
])
def test_sec32_execute(benchmark, catalog, level, expected):
    session = SqlSession(catalog, level)
    result = benchmark(session.execute, WITHOUT_DOUBT_QUERY)
    assert result.rows == expected


def test_sec32_mode_views(benchmark, catalog):
    """The three believed subqueries on their own."""
    session = SqlSession(catalog, "s")

    def run_all():
        return [
            session.execute(
                f"select starship from mission where destination = mars "
                f"and objective = spying believed {mode}")
            for mode in ("cautiously", "firmly", "optimistically")
        ]

    results = benchmark(run_all)
    assert all(r.rows == [("voyager",)] for r in results)
