"""Figures 2-3: the Jajodia-Sandhu views at U and C (with subsumption)."""

import pytest

from repro.mls import surprise_stories_at, view_at
from repro.reporting.figures import figure_02, figure_03
from repro.workloads import mission_relation


@pytest.fixture(scope="module")
def relation():
    rel, _ = mission_relation()
    return rel


def test_fig02_artifact_verified():
    assert figure_02().verified


def test_fig03_artifact_verified():
    assert figure_03().verified


def test_fig02_u_view(benchmark, relation):
    view = benchmark(view_at, relation, "u")
    assert len(view) == 5


def test_fig03_c_view(benchmark, relation):
    view = benchmark(view_at, relation, "c")
    assert len(view) == 6
    assert len(view.with_key("phantom")) == 2  # the surprise stories


def test_fig03_surprise_detection(benchmark, relation):
    stories = benchmark(surprise_stories_at, relation, "c")
    assert len(stories) == 2
