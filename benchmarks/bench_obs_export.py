"""Export-overhead datapoint: what does streaming telemetry cost?

PR 5 adds latency histograms and a streaming span sink to the traced
path.  The design target (docs/OBSERVABILITY.md) is that the *exporting*
path -- tracing enabled, every span observed into a
:class:`~repro.obs.histogram.HistogramSet` and every root streamed to a
:class:`~repro.obs.export.JsonlSpanSink`, sampling 1.0 -- stays within
5% of the plain traced path on a join-heavy workload.

This module measures it against the traced-but-not-exporting baseline
and read-merge-writes an ``export_overhead`` object into the repo-root
``BENCH_engine.json`` (alongside ``tracing_overhead``), so the cost
trajectory is tracked PR over PR.  As with the tracing bench, the
in-test assertion is deliberately looser than the target (shared CI
runners are noisy); the measured numbers land in the JSON for review.
"""

import json
import platform
import time
from pathlib import Path

from repro.datalog import evaluate, parse_program
from repro.obs import HistogramSet, JsonlSpanSink, observe, use
from repro.workloads.generator import random_datalog_program

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N_NODES = 120
REPEAT = 5


def _best_of(fn, repeat=REPEAT):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _overhead_pct(measured, baseline):
    return round((measured / baseline - 1.0) * 100.0, 2)


def test_emit_export_overhead(tmp_path):
    program_text = random_datalog_program(N_NODES, "chain", seed=0)
    histograms = HistogramSet()
    sink = JsonlSpanSink(tmp_path / "spans.jsonl")

    def run_traced():
        with use(observe()):
            return evaluate(parse_program(program_text), "compiled")

    def run_exporting():
        with use(observe(histograms=histograms, sink=sink)):
            return evaluate(parse_program(program_text), "compiled")

    # Warm caches so the comparison measures steady-state evaluation.
    run_traced()
    run_exporting()

    traced_s = _best_of(run_traced)
    exporting_s = _best_of(run_exporting)
    sink.close()

    entry = {
        "workload": "chain_closure",
        "n_nodes": N_NODES,
        "sampling": 1.0,
        "traced_s": round(traced_s, 6),
        "exporting_s": round(exporting_s, 6),
        "export_overhead_pct": _overhead_pct(exporting_s, traced_s),
        "spans_streamed": sink.spans_written,
        "histogram_families": len(histograms.families()),
        "target": "exporting < 5% over plain tracing",
    }

    # Read-merge-write: bench_scaling_engine owns the other top-level keys.
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["export_overhead"] = entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Loose CI-safe bound; the <5% design target is recorded in the JSON.
    assert entry["export_overhead_pct"] < 50.0, entry
    # The sink really streamed spans and the histograms really observed.
    assert sink.spans_written > 0
    assert histograms.get("evaluate[compiled]") is not None
