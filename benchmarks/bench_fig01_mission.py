"""Figure 1: building the Mission relation, directly and via its history.

The correctness assertion regenerates the exact 10-tuple instance; the
benchmark measures both construction paths (direct rows vs replaying the
polyinstantiating update history).
"""

from repro.mls import is_consistent
from repro.reporting.figures import figure_01
from repro.workloads import mission_relation, mission_via_updates


def test_fig01_artifact_verified():
    assert figure_01().verified


def test_fig01_direct_build(benchmark):
    relation, tids = benchmark(mission_relation)
    assert len(relation) == 10
    assert len(tids) == 10
    assert is_consistent(relation)


def test_fig01_update_replay(benchmark):
    relation = benchmark(mission_via_updates)
    expected, _ = mission_relation()
    assert set(relation) == set(expected)
