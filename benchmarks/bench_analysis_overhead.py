"""Analysis-overhead datapoint: what do the static checks cost?

Two numbers (docs/ANALYSIS.md):

* the full program analyzer (``analyze_program``) as absolute wall time
  -- it runs once per program, off the hot path;
* the plan verifier's cost on the **compile path**, where it sits in
  front of every codegen'd ``exec``.  The design target is < 5%
  overhead on the verify-enabled path: verified sources are memoized by
  exact text, so steady state pays one set lookup per compiled rule.
  The cold (memo-cleared) time is also recorded so the per-plan price
  of a real verification stays visible.

Read-merge-writes an ``analysis_overhead`` object into the repo-root
``BENCH_engine.json`` so the trajectory is tracked PR over PR.  The
in-test assertion is deliberately looser than the target (shared CI
runners are noisy); the measured numbers land in the JSON for review.
"""

import json
import platform
import time
from pathlib import Path

from repro.analysis import analyze_program
from repro.datalog import evaluate, parse_program
from repro.datalog import plan as plan_module
from repro.datalog.plan import set_plan_verification
from repro.workloads.generator import random_datalog_program

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N_NODES = 120
REPEAT = 5


def _best_of(fn, repeat=REPEAT):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _overhead_pct(measured, baseline):
    return round((measured / baseline - 1.0) * 100.0, 2)


def test_emit_analysis_overhead():
    program_text = random_datalog_program(N_NODES, "chain", seed=0)

    def run_analyzer():
        return analyze_program(parse_program(program_text))

    def run_compiled(verify):
        previous = set_plan_verification(verify)
        try:
            return evaluate(parse_program(program_text), "compiled")
        finally:
            set_plan_verification(previous)

    def run_cold_verified():
        plan_module._VERIFIED_SOURCES.clear()
        return run_compiled(True)

    # Warm parser/engine caches so the comparison is steady-state.
    assert run_analyzer().ok
    run_compiled(True)
    run_compiled(False)

    analyze_s = _best_of(run_analyzer)
    verified_s = _best_of(lambda: run_compiled(True))
    plain_s = _best_of(lambda: run_compiled(False))
    plain_again_s = _best_of(lambda: run_compiled(False))  # noise floor
    cold_verified_s = _best_of(run_cold_verified)

    baseline_s = min(plain_s, plain_again_s)
    entry = {
        "workload": "chain_closure",
        "n_nodes": N_NODES,
        "analyze_s": round(analyze_s, 6),
        "baseline_s": round(baseline_s, 6),
        "verified_s": round(verified_s, 6),
        "cold_verified_s": round(cold_verified_s, 6),
        "verify_overhead_pct": _overhead_pct(verified_s, baseline_s),
        "cold_verify_overhead_pct": _overhead_pct(cold_verified_s, baseline_s),
        "target": "memoized verify-enabled compile path < 5%",
    }

    # Read-merge-write: bench_scaling_engine owns the other top-level keys.
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["analysis_overhead"] = entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Loose CI-safe bound; the <5% design target is recorded in the JSON.
    assert entry["verify_overhead_pct"] < 50.0, entry
    # Verification must not change the model.
    assert run_compiled(True).rows("path") == run_compiled(False).rows("path")
