"""Figure 13: FILTER / FILTER-NULL rules and user-defined belief modes."""

from repro.multilog import (
    MultiLogSession,
    OperationalEngine,
    filtered_cells,
    surprise_cells,
)
from repro.reporting.figures import figure_13
from repro.workloads import mission_multilog
from repro.workloads.d1 import mission_multilog_source


def test_fig13_artifact_verified():
    assert figure_13().verified


def test_fig13_filtered_view(benchmark):
    engine = OperationalEngine(mission_multilog(), "s")
    cells = benchmark(filtered_cells, engine, "c")
    # Eight visible molecules x three attributes, with the three identical
    # atlantis assertions collapsing to two level-variants: 24 cells before
    # subsumption (matches view_at(..., apply_subsumption=False)).
    assert len(cells) == 24


def test_fig13_surprise_cells(benchmark):
    engine = OperationalEngine(mission_multilog(), "s")
    cells = benchmark(surprise_cells, engine, "c")
    assert {(c[1], c[2]) for c in cells} == {
        ("phantom", "objective"), ("phantom", "destination")}


def test_fig13_user_defined_mode(benchmark):
    source = mission_multilog_source() + """
        bel(P, K, A, V, C, H, corroborated) :-
            bel(P, K, A, V, C, H, fir), bel(P, K, A, V, C, L, opt), order(L, H).
    """
    session = MultiLogSession(source, clearance="s")

    def ask():
        return session.ask("c[mission(K : objective -C-> V)] << corroborated")

    answers = benchmark(ask)
    # The C re-assertion of atlantis is firm at C and visible below.
    assert answers == [{"C": "u", "K": "atlantis", "V": "diplomacy"}]
