"""Ablation: compiled join plans vs the interpreted engine.

``seminaive`` is the seed interpreter (generator recursion, substitution
dicts, first-bound single-column probes); ``compiled`` is the join-plan
path (:mod:`repro.datalog.plan`): codegen'd nested loops, slot
environments, composite-index probes and delta-specialized refiring.
``naive`` rides along to keep the textbook baseline in the trajectory.
"""

import pytest

from repro.datalog import evaluate, parse_program
from repro.workloads.generator import random_datalog_program

SIZES = [20, 60, 120]
STRATEGIES = ["naive", "seminaive", "compiled"]


@pytest.mark.parametrize("n_nodes", SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_chain_closure(benchmark, strategy, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "chain"))
    db = benchmark(evaluate, program, strategy)
    assert len(db.rows("path")) == n_nodes * (n_nodes - 1) // 2


@pytest.mark.parametrize("n_nodes", SIZES)
@pytest.mark.parametrize("strategy", ["seminaive", "compiled"])
def test_random_graph_closure(benchmark, strategy, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "random", seed=3))
    db = benchmark(evaluate, program, strategy)
    assert db.rows("path")


@pytest.mark.parametrize("strategy", ["seminaive", "compiled"])
def test_negation_workload(benchmark, strategy):
    """Stratified negation keeps the delta machinery honest under both paths."""
    n = 80
    text = random_datalog_program(n, "random", seed=9) + (
        "\nnode(X) :- edge(X, Y)."
        "\nnode(Y) :- edge(X, Y)."
        "\nunreachable(X, Y) :- node(X), node(Y), not path(X, Y)."
    )
    program = parse_program(text)
    db = benchmark(evaluate, program, strategy)
    assert db.rows("unreachable")
