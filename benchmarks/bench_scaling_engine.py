"""Scaling study: the Datalog back-end (the CORAL stand-in) on transitive
closure, and the MultiLog pipeline end to end.

Besides the pytest-benchmark timings, this module emits
``BENCH_engine.json`` at the repository root: compiled-vs-interpreted
wall-clock numbers for every transitive-closure case, so the perf
trajectory is tracked from PR 1 onward (see docs/PERFORMANCE.md).
"""

import json
import platform
import time
from pathlib import Path

import pytest

from repro.datalog import evaluate, parse_program
from repro.multilog import OperationalEngine, translate
from repro.workloads.generator import random_datalog_program, random_multilog_database

CHAIN_SIZES = [20, 60, 120]
DB_SIZES = [25, 100, 250]

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _best_of(fn, repeat=3):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_emit_bench_engine_json():
    """Record the compiled-vs-interpreted trajectory for every TC case.

    ``interpreted_s`` is the seed engine (semi-naive interpreter);
    ``compiled_s`` is the join-plan path that is now the default.
    """
    cases = []
    for shape, seed in (("chain", 0), ("random", 3)):
        for n_nodes in CHAIN_SIZES:
            text = random_datalog_program(n_nodes, shape, seed=seed)
            interpreted = _best_of(lambda: evaluate(parse_program(text), "seminaive"))
            compiled = _best_of(lambda: evaluate(parse_program(text), "compiled"))
            cases.append({
                "workload": f"{shape}_closure",
                "n_nodes": n_nodes,
                "interpreted_s": round(interpreted, 6),
                "compiled_s": round(compiled, 6),
                "speedup": round(interpreted / compiled, 2),
            })
    # Read-merge-write: other bench modules (bench_tracing_overhead) add
    # their own top-level keys to the same file; don't clobber them.
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update({
        "bench": "bench_scaling_engine",
        "python": platform.python_version(),
        "cases": cases,
    })
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    assert BENCH_JSON.exists()
    largest = [c for c in cases if c["n_nodes"] == max(CHAIN_SIZES)]
    assert all(c["speedup"] > 1.0 for c in largest), largest


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_chain_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "chain"))
    db = benchmark(evaluate, program)
    expected = n_nodes * (n_nodes - 1) // 2
    assert len(db.rows("path")) == expected


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_random_graph_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "random", seed=3))
    db = benchmark(evaluate, program)
    assert db.rows("path")


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_operational_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return OperationalEngine(db, "t").compute().believed_cells("cau", "t")

    rows = benchmark(run)
    assert rows


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_reduction_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return translate(db, "t").bel_rows("cau", "t")

    rows = benchmark(run)
    assert rows
