"""Scaling study: the Datalog back-end (the CORAL stand-in) on transitive
closure, and the MultiLog pipeline end to end."""

import pytest

from repro.datalog import evaluate, parse_program
from repro.multilog import OperationalEngine, translate
from repro.workloads.generator import random_datalog_program, random_multilog_database

CHAIN_SIZES = [20, 60, 120]
DB_SIZES = [25, 100, 250]


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_chain_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "chain"))
    db = benchmark(evaluate, program)
    expected = n_nodes * (n_nodes - 1) // 2
    assert len(db.rows("path")) == expected


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_random_graph_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "random", seed=3))
    db = benchmark(evaluate, program)
    assert db.rows("path")


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_operational_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return OperationalEngine(db, "t").compute().believed_cells("cau", "t")

    rows = benchmark(run)
    assert rows


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_reduction_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return translate(db, "t").bel_rows("cau", "t")

    rows = benchmark(run)
    assert rows
