"""Scaling study: the Datalog back-end (the CORAL stand-in) on transitive
closure, and the MultiLog pipeline end to end.

Besides the pytest-benchmark timings, this module emits
``BENCH_engine.json`` at the repository root: compiled-vs-interpreted
wall-clock numbers for every transitive-closure case, so the perf
trajectory is tracked from PR 1 onward (see docs/PERFORMANCE.md).
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.datalog import evaluate, parse_program
from repro.multilog import OperationalEngine, translate
from repro.workloads.generator import random_datalog_program, random_multilog_database

CHAIN_SIZES = [20, 60, 120]
DB_SIZES = [25, 100, 250]

#: Chain sizes for the storage-backend ablation.  A chain of ``n`` nodes
#: closes to ``n * (n - 1) / 2`` path facts, so these reach ~5 * 10^4,
#: ~2 * 10^5 and ~10^6 derived facts -- the regime where batch hash joins
#: pay off.  Gated behind ``SCALING_FULL=1`` (minutes, not CI-smoke).
SCALE_SIZES = [320, 640, 1440]
SCALING_FULL = os.environ.get("SCALING_FULL") == "1"

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _best_of(fn, repeat=3):
    """Best wall-clock of ``repeat`` runs (seconds)."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _write_payload(**updates):
    """Read-merge-write ``BENCH_engine.json``: other bench modules (and
    the other emitters in this one) add their own top-level keys to the
    same file; don't clobber them."""
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update({
        "bench": "bench_scaling_engine",
        "python": platform.python_version(),
        **updates,
    })
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _full_model(db):
    return {p: db.rows(p) for p in db.predicates()}


def test_emit_bench_engine_json():
    """Record the compiled-vs-interpreted trajectory for every TC case.

    ``interpreted_s`` is the seed engine (semi-naive interpreter);
    ``compiled_s`` is the join-plan path that is now the default.
    """
    cases = []
    for shape, seed in (("chain", 0), ("random", 3)):
        for n_nodes in CHAIN_SIZES:
            text = random_datalog_program(n_nodes, shape, seed=seed)
            interpreted = _best_of(lambda: evaluate(parse_program(text), "seminaive"))
            compiled = _best_of(lambda: evaluate(parse_program(text), "compiled"))
            cases.append({
                "workload": f"{shape}_closure",
                "n_nodes": n_nodes,
                "interpreted_s": round(interpreted, 6),
                "compiled_s": round(compiled, 6),
                "speedup": round(interpreted / compiled, 2),
            })
    _write_payload(cases=cases)
    assert BENCH_JSON.exists()
    largest = [c for c in cases if c["n_nodes"] == max(CHAIN_SIZES)]
    assert all(c["speedup"] > 1.0 for c in largest), largest


def test_emit_scale_smoke():
    """Small-n backend ablation for CI: identical answers, timings logged.

    The timing numbers at this size are noise-dominated and carry no
    assertion; the point of the smoke leg is the byte-identical-answers
    check plus a fresh ``scale_smoke`` stanza in the artifact.
    """
    text = random_datalog_program(80, "chain", seed=0)
    program = parse_program(text)
    row_db = evaluate(program, "compiled")
    col_db = evaluate(program, "vectorized")
    assert _full_model(col_db) == _full_model(row_db)
    _write_payload(scale_smoke={
        "workload": "chain_closure",
        "n_nodes": 80,
        "n_facts": len(row_db),
        "compiled_s": round(_best_of(lambda: evaluate(program, "compiled")), 6),
        "vectorized_s": round(_best_of(lambda: evaluate(program, "vectorized")), 6),
    })


@pytest.mark.skipif(not SCALING_FULL,
                    reason="set SCALING_FULL=1 for the 10^5-10^6-fact ablation")
def test_emit_scale_ablation():
    """The headline ablation: interpreted / compiled / vectorized at
    10^5-10^6 derived facts, answers cross-checked between backends.

    The interpreted engine only runs at the smallest size (it is already
    ~100x off the pace there; larger sizes would take hours for no new
    information).  The acceptance bar: vectorized at least 3x faster
    than compiled at the largest size.
    """
    cases = []
    for n_nodes in SCALE_SIZES:
        program = parse_program(random_datalog_program(n_nodes, "chain", seed=0))
        row_db = evaluate(program, "compiled")
        col_db = evaluate(program, "vectorized")
        assert _full_model(col_db) == _full_model(row_db), n_nodes
        case = {
            "workload": "chain_closure",
            "n_nodes": n_nodes,
            "n_facts": len(row_db),
        }
        if n_nodes == SCALE_SIZES[0]:
            case["interpreted_s"] = round(
                _best_of(lambda: evaluate(program, "seminaive"), repeat=1), 6)
        case["compiled_s"] = round(
            _best_of(lambda: evaluate(program, "compiled"), repeat=2), 6)
        case["vectorized_s"] = round(
            _best_of(lambda: evaluate(program, "vectorized"), repeat=2), 6)
        case["speedup_vs_compiled"] = round(
            case["compiled_s"] / case["vectorized_s"], 2)
        cases.append(case)
    _write_payload(scale_cases=cases)
    largest = cases[-1]
    assert largest["vectorized_s"] * 3 <= largest["compiled_s"], largest


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_chain_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "chain"))
    db = benchmark(evaluate, program)
    expected = n_nodes * (n_nodes - 1) // 2
    assert len(db.rows("path")) == expected


@pytest.mark.parametrize("n_nodes", CHAIN_SIZES)
def test_engine_random_graph_closure(benchmark, n_nodes):
    program = parse_program(random_datalog_program(n_nodes, "random", seed=3))
    db = benchmark(evaluate, program)
    assert db.rows("path")


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_operational_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return OperationalEngine(db, "t").compute().believed_cells("cau", "t")

    rows = benchmark(run)
    assert rows


@pytest.mark.parametrize("n_tuples", DB_SIZES)
def test_multilog_reduction_scaling(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, seed=23, polyinstantiation_rate=0.3)

    def run():
        return translate(db, "t").bel_rows("cau", "t")

    rows = benchmark(run)
    assert rows
