"""Proposition 6.1: Datalog as the degenerate case -- correctness and the
abstraction overhead of going through MultiLog."""

import pytest

from repro.datalog import answer_rows, evaluate, parse_atom, parse_program
from repro.multilog import run_both
from repro.workloads.generator import random_datalog_program


@pytest.fixture(scope="module")
def chain_program():
    return random_datalog_program(30, "chain")


def test_prop61_answers_agree(chain_program):
    multilog, native = run_both(chain_program, "path(n0, X)")
    assert multilog == native
    assert len(native) == 29


def test_prop61_native_engine(benchmark, chain_program):
    program = parse_program(chain_program)
    goal = parse_atom("path(n0, X)")

    def run():
        return answer_rows(evaluate(program), goal)

    rows = benchmark(run)
    assert len(rows) == 29


def test_prop61_through_multilog(benchmark, chain_program):
    def run():
        return run_both(chain_program, "path(n0, X)")[0]

    rows = benchmark(run)
    assert len(rows) == 29
