"""Figures 6-8: the three beta views at level C, plus the printed
(filter-composed) variants of Figures 7 and 8."""

import pytest

from repro.belief import cautious, firm, optimistic
from repro.mls.views import view_at
from repro.reporting.figures import figure_06, figure_07, figure_08
from repro.workloads import mission_relation


@pytest.fixture(scope="module")
def relation():
    rel, _ = mission_relation()
    return rel


def test_fig06_08_artifacts_verified():
    assert figure_06().verified
    assert all(f.verified for f in figure_07())
    assert all(f.verified for f in figure_08())


def test_fig06_firm(benchmark, relation):
    view = benchmark(firm, relation, "c")
    assert [t.value("starship") for t in view] == ["atlantis"]


def test_fig07_optimistic(benchmark, relation):
    view = benchmark(optimistic, relation, "c")
    assert len(view) == 4  # beta omits t4/t5
    assert view.tuple_classes() == {"c"}


def test_fig07_literal_composition(benchmark, relation):
    """The printed figure = beta after the J-S filter sigma."""
    def composed():
        return optimistic(view_at(relation, "c"), "c")
    view = benchmark(composed)
    assert len(view) == 6  # includes the filter-generated t4/t5


def test_fig08_cautious(benchmark, relation):
    view = benchmark(cautious, relation, "c")
    ships = sorted(t.value("starship") for t in view)
    assert ships == ["atlantis", "eagle", "falcon", "voyager"]


def test_fig08_literal_composition(benchmark, relation):
    def composed():
        return cautious(view_at(relation, "c"), "c")
    view = benchmark(composed)
    phantom = view.with_key("phantom").tuples
    assert len(phantom) == 1
    assert phantom[0].key_classification() == "c"  # t5 overrides t4
