"""Recovery-time datapoint: journal replay cost vs checkpoint cadence.

Two questions drive the checkpoint defaults (docs/RESILIENCE.md):

1. **How does recovery time grow with journal length?**  Replay is
   linear in the records after the last snapshot, so a server that
   never checkpoints pays its whole write history on every restart.
   This module times ``SessionJournal.replay()`` at several journal
   lengths, with and without a final checkpoint, and records the ratio.
2. **What does checkpointing cost the write path?**  The design target
   is that periodic compaction (every ``checkpoint_records`` appends)
   adds under 5% to sustained assert throughput -- a compaction is one
   snapshot write amortized over the whole window.

The measurements land in a ``recovery_cases`` stanza of the repo-root
``BENCH_engine.json`` (read-merge-write; other benchmarks own the other
keys).  The in-test assertions are deliberately looser than the design
targets -- shared CI runners are noisy -- the measured numbers are the
artifact.
"""

import json
import platform
import time
from pathlib import Path

from repro.multilog.session import MultiLogSession
from repro.resilience.journal import SessionJournal, database_source

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

SOURCE = """\
level(u). level(s). order(u, s).
u[acct(seed : balance -u-> 0)].
"""

#: journal lengths (clause records) to replay.
LENGTHS = (200, 1000, 3000)
#: checkpoint cadence used for the overhead comparison.
CHECKPOINT_EVERY = 250
REPEAT = 3


def _best_of(fn, repeat=REPEAT):
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _write_journal(path: Path, n: int, checkpoint_every: int | None = None):
    """A session that asserted ``n`` clauses, optionally compacting."""
    session = MultiLogSession(SOURCE, clearance="s", journal=path)
    for i in range(n):
        session.assert_clause(f"u[acct(k{i} : balance -u-> {i})].")
        if checkpoint_every and (i + 1) % checkpoint_every == 0:
            session.journal.compact(session.database)
    session.journal.close()
    return session


def test_emit_recovery_cases(tmp_path):
    cases = []
    for n in LENGTHS:
        raw = tmp_path / f"raw-{n}.jsonl"
        session = _write_journal(raw, n)
        replay_s = _best_of(lambda: SessionJournal(raw).replay())

        compacted = tmp_path / f"compacted-{n}.jsonl"
        _write_journal(compacted, n, checkpoint_every=CHECKPOINT_EVERY)
        SessionJournal(compacted).compact(session.database)
        compacted_replay_s = _best_of(
            lambda: SessionJournal(compacted).replay())

        # Replay must reconstruct the same database either way.
        assert (database_source(SessionJournal(raw).replay())
                == database_source(SessionJournal(compacted).replay())
                == database_source(session.database))
        cases.append({
            "journal_records": n,
            "replay_s": round(replay_s, 6),
            "replay_after_checkpoint_s": round(compacted_replay_s, 6),
            "speedup_x": round(replay_s / max(compacted_replay_s, 1e-9), 2),
        })

    # Checkpoint overhead on the write path: sustained asserts with and
    # without periodic compaction every CHECKPOINT_EVERY records.
    n = LENGTHS[0]
    plain_s = _best_of(
        lambda: _write_journal(tmp_path / "plain.jsonl", n), repeat=2)
    periodic_s = _best_of(
        lambda: _write_journal(tmp_path / "periodic.jsonl", n,
                               checkpoint_every=CHECKPOINT_EVERY), repeat=2)
    overhead_pct = round((periodic_s / plain_s - 1.0) * 100.0, 2)

    entry = {
        "cases": cases,
        "checkpoint_every": CHECKPOINT_EVERY,
        "assert_plain_s": round(plain_s, 6),
        "assert_with_checkpoints_s": round(periodic_s, 6),
        "checkpoint_overhead_pct": overhead_pct,
        "target": "checkpointing < 5% on sustained asserts; "
                  "replay linear in records since last snapshot",
    }

    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.setdefault("bench", "bench_scaling_engine")
    payload.setdefault("python", platform.python_version())
    payload["recovery_cases"] = entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Loose CI-safe bounds; the design targets are recorded in the JSON.
    assert overhead_pct < 50.0, entry
    # A checkpointed journal must never replay slower than the raw log
    # by more than noise (it has strictly fewer records to apply).
    assert cases[-1]["speedup_x"] > 0.5, cases
