"""Figures 9-11: the proof system, database D1, and Example 5.2's tree."""

from repro.multilog import OperationalEngine, Prover
from repro.multilog.parser import parse_query
from repro.reporting.figures import figure_09, figure_10, figure_11
from repro.workloads import d1_database, d1_query, mission_multilog


def test_fig09_11_artifacts_verified():
    assert figure_09().verified
    assert figure_10().verified
    assert figure_11().verified


def test_fig10_parse_d1(benchmark):
    db = benchmark(d1_database)
    assert len(db.secured_clauses) == 3


def test_fig10_materialize_d1(benchmark):
    def materialize():
        return OperationalEngine(d1_database(), "c").compute().cells()
    cells = benchmark(materialize)
    assert len(cells) == 2


def test_fig11_proof_tree(benchmark):
    engine = OperationalEngine(d1_database(), "c")
    prover = Prover(engine)
    query = d1_query()
    tree = benchmark(prover.prove, query)
    assert tree.rule == "BELIEF"
    assert "DESCEND-O" in tree.rules_used()


def test_fig09_proof_search_over_mission(benchmark):
    engine = OperationalEngine(mission_multilog(), "s")
    prover = Prover(engine)
    query = parse_query("s[mission(K : objective -C-> V)] << cau")

    def prove_all():
        return prover.prove_query(query)

    results = benchmark(prove_all)
    assert len(results) == 7  # one tree per cautiously believed objective
