"""Scaling study (no counterpart in the paper): belief-view cost vs
database size, mode, and lattice shape."""

import pytest

from repro.belief import belief
from repro.workloads.generator import make_lattice, random_mls_relation

SIZES = [50, 200, 800]


@pytest.mark.parametrize("n_tuples", SIZES)
@pytest.mark.parametrize("mode", ["fir", "opt", "cau"])
def test_beta_scaling_chain(benchmark, n_tuples, mode):
    lattice = make_lattice("chain", 4)
    relation = random_mls_relation(
        n_tuples, lattice, polyinstantiation_rate=0.4, seed=11)
    top = sorted(lattice.tops())[0]
    view = benchmark(belief, relation, top, mode)
    if mode != "fir":
        assert len(view) > 0


@pytest.mark.parametrize("shape", ["chain", "diamond"])
def test_beta_cautious_lattice_shape(benchmark, shape):
    """Cautious belief under incomparable sources (multiple models) vs a
    total order, at equal size."""
    lattice = make_lattice(shape, 4)
    relation = random_mls_relation(
        400, lattice, polyinstantiation_rate=0.5, seed=13)
    top = sorted(lattice.tops())[0]
    view = benchmark(belief, relation, top, "cau")
    assert len(view) > 0


@pytest.mark.parametrize("poly", [0.0, 0.5, 0.9])
def test_beta_cautious_vs_polyinstantiation(benchmark, poly):
    """More polyinstantiation -> more overriding work per key."""
    relation = random_mls_relation(
        400, polyinstantiation_rate=poly, n_keys=60, seed=17)
    view = benchmark(belief, relation, "t", "cau")
    assert len(view) > 0
