"""Figure 12: the tau reduction and the MultiLog inference engine."""

import pytest

from repro.datalog import Program
from repro.errors import UnsafeRuleError
from repro.multilog import engine_axioms, figure12_axioms, translate
from repro.multilog.parser import parse_query
from repro.reporting.figures import figure_12
from repro.workloads import d1_database, mission_multilog


def test_fig12_artifact_verified():
    assert figure_12().verified


def test_fig12_literal_axioms_rejected():
    with pytest.raises(UnsafeRuleError):
        Program(figure12_axioms()).check_safety()


def test_fig12_translate_mission(benchmark):
    db = mission_multilog()
    reduced = benchmark(translate, db, "s")
    assert not reduced.specialized
    assert len(reduced.program.rules) == len(engine_axioms())


def test_fig12_evaluate_mission(benchmark):
    reduced = translate(mission_multilog(), "s")

    def evaluate_model():
        reduced._model = None
        return reduced.model()

    model = benchmark(evaluate_model)
    assert len(model.rows("rel")) == 30
    assert model.rows("bel")


def test_fig12_specialized_d1(benchmark):
    def translate_and_eval():
        reduced = translate(d1_database(), "c")
        return reduced, reduced.model()

    reduced, model = benchmark(translate_and_eval)
    assert reduced.specialized
    assert reduced.bel_rows("cau", "c") == {("p", "k", "a", "t", "c")}


def test_fig12_query_through_reduction(benchmark):
    reduced = translate(mission_multilog(), "s")
    reduced.model()  # warm the base model; the query adds answer rules
    query = parse_query("s[mission(K : objective -C-> spying)] << cau")
    answers = benchmark(reduced.query, query)
    assert {a["K"] for a in answers} == {"voyager", "phantom"}
