"""Theorem 6.1: operational <=> reduction, checked and timed.

The equivalence itself is the reproduced result; the benchmark also
contrasts the *cost* of the two semantics on the same database -- the
trade-off the paper's implementation section discusses (a direct
interpreter vs compiling onto CORAL).
"""

import pytest

from repro.multilog import OperationalEngine, check_equivalence, translate
from repro.workloads import d1_database, d1_query, mission_multilog
from repro.workloads.generator import make_lattice, random_multilog_database


def test_thm61_d1(benchmark):
    report = benchmark(check_equivalence, d1_database(), "c", [d1_query()])
    assert report.equivalent


def test_thm61_mission(benchmark):
    report = benchmark(check_equivalence, mission_multilog(), "s")
    assert report.equivalent


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_thm61_random_diamond(benchmark, seed):
    db = random_multilog_database(
        30, make_lattice("diamond"), belief_rules=3,
        polyinstantiation_rate=0.4, seed=seed)
    report = benchmark(check_equivalence, db, "hi")
    assert report.equivalent, report.all_messages()


@pytest.mark.parametrize("n_tuples", [20, 80])
def test_cost_operational(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, belief_rules=2, seed=7)

    def run():
        return OperationalEngine(db, "t").compute().cells()

    cells = benchmark(run)
    assert cells


@pytest.mark.parametrize("n_tuples", [20, 80])
def test_cost_reduction(benchmark, n_tuples):
    db = random_multilog_database(n_tuples, belief_rules=2, seed=7)

    def run():
        reduced = translate(db, "t")
        return reduced.model()

    model = benchmark(run)
    assert len(model)
