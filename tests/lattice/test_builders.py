"""Unit tests for the lattice constructors."""

import pytest

from repro.lattice import (
    access_class_lattice,
    antichain_with_bounds,
    category_lattice,
    chain,
    diamond,
    military_chain,
    product,
    random_lattice,
)


class TestChain:
    def test_order_follows_sequence(self):
        lattice = chain(["a", "b", "c"])
        assert lattice.leq("a", "c")
        assert not lattice.leq("c", "a")

    def test_single_level(self):
        lattice = chain(["only"])
        assert lattice.levels == {"only"}
        assert lattice.is_chain()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chain([])

    def test_military_chain(self):
        lattice = military_chain()
        assert lattice.leq("u", "t")
        assert lattice.is_chain()
        assert len(lattice) == 4


class TestDiamond:
    def test_shape(self):
        lattice = diamond()
        assert lattice.incomparable_pairs() == {("a", "b")}
        assert lattice.lub("a", "b") == "hi"

    def test_custom_names(self):
        lattice = diamond("bot", "left", "right", "top")
        assert lattice.leq("bot", "top")
        assert not lattice.comparable("left", "right")


class TestAntichain:
    def test_middles_incomparable(self):
        lattice = antichain_with_bounds(["x", "y", "z"])
        assert len(lattice.incomparable_pairs()) == 3

    def test_empty_middles_rejected(self):
        with pytest.raises(ValueError):
            antichain_with_bounds([])


class TestProduct:
    def test_size(self):
        left = chain(["u", "s"])
        right = chain(["1", "2", "3"])
        assert len(product(left, right)) == 6

    def test_componentwise_order(self):
        prod = product(chain(["u", "s"]), chain(["1", "2"]))
        assert prod.leq("u*1", "s*2")
        assert not prod.leq("s*1", "u*2")
        assert not prod.comparable("s*1", "u*2")

    def test_is_lattice(self):
        prod = product(chain(["u", "s"]), chain(["1", "2"]))
        assert prod.is_lattice()


class TestCategories:
    def test_powerset_size(self):
        lattice = category_lattice(["army", "navy"])
        assert len(lattice) == 4

    def test_inclusion_order(self):
        lattice = category_lattice(["army", "navy"])
        assert lattice.leq("none", "army")
        assert lattice.leq("army", "army+navy")
        assert not lattice.comparable("army", "navy")

    def test_lub_is_union(self):
        lattice = category_lattice(["army", "navy", "nato"])
        assert lattice.lub("army", "navy") == "army+navy"

    def test_access_classes(self):
        lattice = access_class_lattice(["u", "s"], ["army"])
        # (u, {}) <= (s, {army}) -- the Section 2 dominance definition.
        assert lattice.leq("u/none", "s/army")
        assert not lattice.leq("u/army", "s/none")


class TestRandomLattice:
    def test_deterministic_given_seed(self):
        assert random_lattice(8, seed=42) == random_lattice(8, seed=42)

    def test_different_seeds_differ(self):
        assert random_lattice(10, seed=1) != random_lattice(10, seed=2)

    def test_l0_is_bottom(self):
        lattice = random_lattice(10, seed=7)
        assert all(lattice.leq("l0", level) for level in lattice.levels)

    def test_always_acyclic(self):
        for seed in range(20):
            lattice = random_lattice(12, edge_probability=0.5, seed=seed)
            assert lattice.topological()  # construction would raise on cycles

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            random_lattice(0)
