"""Unit tests for the security-lattice core."""

import pytest

from repro.errors import CycleError, NotALatticeError, UnknownLevelError
from repro.lattice import SecurityLattice, antichain_with_bounds, chain


class TestConstruction:
    def test_levels_from_orders_are_implicit(self):
        lattice = SecurityLattice(orders=[("u", "c")])
        assert lattice.levels == {"u", "c"}

    def test_explicit_levels_without_orders(self):
        lattice = SecurityLattice(["x", "y"])
        assert lattice.levels == {"x", "y"}
        assert not lattice.comparable("x", "y")

    def test_self_order_rejected(self):
        with pytest.raises(CycleError):
            SecurityLattice(orders=[("u", "u")])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            SecurityLattice(orders=[("u", "c"), ("c", "u")])

    def test_long_cycle_rejected(self):
        with pytest.raises(CycleError):
            SecurityLattice(orders=[("a", "b"), ("b", "c"), ("c", "a")])

    def test_equality_and_hash(self):
        assert chain(["u", "c"]) == chain(["u", "c"])
        assert hash(chain(["u", "c"])) == hash(chain(["u", "c"]))
        assert chain(["u", "c"]) != chain(["c", "u"])

    def test_repr_mentions_orders(self):
        assert "u<c" in repr(chain(["u", "c"]))

    def test_contains_and_len(self):
        lattice = chain(["u", "c", "s"])
        assert "u" in lattice
        assert "x" not in lattice
        assert len(lattice) == 3

    def test_iteration_is_sorted(self):
        assert list(chain(["u", "c", "a"])) == ["a", "c", "u"]


class TestOrderQueries:
    def test_leq_reflexive(self, ucst):
        assert ucst.leq("c", "c")

    def test_leq_transitive(self, ucst):
        assert ucst.leq("u", "t")

    def test_leq_antisymmetric(self, ucst):
        assert not ucst.leq("t", "u")

    def test_lt_strict(self, ucst):
        assert ucst.lt("u", "c")
        assert not ucst.lt("c", "c")

    def test_dominates_is_flipped_leq(self, ucst):
        assert ucst.dominates("s", "u")
        assert not ucst.dominates("u", "s")

    def test_unknown_level_raises(self, ucst):
        with pytest.raises(UnknownLevelError):
            ucst.leq("u", "zz")

    def test_comparable_in_diamond(self, diamond_lattice):
        assert diamond_lattice.comparable("lo", "a")
        assert not diamond_lattice.comparable("a", "b")

    def test_up_set(self, ucst):
        assert ucst.up_set("c") == {"c", "s", "t"}

    def test_down_set(self, ucst):
        assert ucst.down_set("c") == {"u", "c"}

    def test_strict_down_set_excludes_self(self, ucst):
        assert ucst.strict_down_set("c") == {"u"}

    def test_diamond_down_set_of_top(self, diamond_lattice):
        assert diamond_lattice.down_set("hi") == {"lo", "a", "b", "hi"}


class TestBounds:
    def test_lub_of_chain_pair(self, ucst):
        assert ucst.lub("u", "s") == "s"

    def test_lub_of_incomparable(self, diamond_lattice):
        assert diamond_lattice.lub("a", "b") == "hi"

    def test_glb_of_incomparable(self, diamond_lattice):
        assert diamond_lattice.glb("a", "b") == "lo"

    def test_lub_of_single(self, ucst):
        assert ucst.lub("c") == "c"

    def test_lub_of_empty_is_bottom(self, ucst):
        assert ucst.lub() == "u"

    def test_lub_missing_raises(self):
        lattice = SecurityLattice(["x", "y"])
        with pytest.raises(NotALatticeError):
            lattice.lub("x", "y")

    def test_lub_non_unique_raises(self):
        # lo below two incomparable maximal elements: two minimal upper bounds.
        lattice = SecurityLattice(
            ["lo", "m1", "m2", "t1", "t2"],
            [("lo", "m1"), ("lo", "m2"), ("m1", "t1"), ("m2", "t1"),
             ("m1", "t2"), ("m2", "t2")],
        )
        with pytest.raises(NotALatticeError):
            lattice.lub("m1", "m2")

    def test_minimal_upper_bounds_multiple(self):
        lattice = SecurityLattice(
            ["m1", "m2", "t1", "t2"],
            [("m1", "t1"), ("m2", "t1"), ("m1", "t2"), ("m2", "t2")],
        )
        assert lattice.minimal_upper_bounds(["m1", "m2"]) == {"t1", "t2"}

    def test_maximal_lower_bounds(self, diamond_lattice):
        assert diamond_lattice.maximal_lower_bounds(["a", "b"]) == {"lo"}

    def test_maximal_and_minimal_of_subset(self, ucst):
        assert ucst.maximal(["u", "c", "s"]) == {"s"}
        assert ucst.minimal(["u", "c", "s"]) == {"u"}

    def test_maximal_of_antichain(self, diamond_lattice):
        assert diamond_lattice.maximal(["a", "b"]) == {"a", "b"}

    def test_tops_and_bottoms(self, diamond_lattice):
        assert diamond_lattice.tops() == {"hi"}
        assert diamond_lattice.bottoms() == {"lo"}


class TestStructure:
    def test_chain_is_chain(self, ucst):
        assert ucst.is_chain()

    def test_diamond_is_not_chain(self, diamond_lattice):
        assert not diamond_lattice.is_chain()

    def test_diamond_is_lattice(self, diamond_lattice):
        assert diamond_lattice.is_lattice()

    def test_antichain_with_bounds_is_lattice_for_two(self):
        assert antichain_with_bounds(["a", "b"]).is_lattice()

    def test_bare_antichain_is_not_lattice(self):
        assert not SecurityLattice(["x", "y"]).is_lattice()

    def test_incomparable_pairs(self, diamond_lattice):
        assert diamond_lattice.incomparable_pairs() == {("a", "b")}

    def test_chain_has_no_incomparable_pairs(self, ucst):
        assert ucst.incomparable_pairs() == frozenset()

    def test_topological_respects_order(self, diamond_lattice):
        order = diamond_lattice.topological()
        assert order.index("lo") < order.index("a") < order.index("hi")
        assert order.index("lo") < order.index("b") < order.index("hi")

    def test_topological_deterministic(self, diamond_lattice):
        assert diamond_lattice.topological() == diamond_lattice.topological()

    def test_interval(self, ucst):
        assert ucst.interval("u", "s") == {"u", "c", "s"}

    def test_empty_interval_raises(self, ucst):
        with pytest.raises(NotALatticeError):
            ucst.interval("s", "u")
