"""Property-based tests: partial-order and lattice laws on random orders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import random_lattice

lattices = st.builds(
    random_lattice,
    n_levels=st.integers(min_value=1, max_value=10),
    edge_probability=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=10_000),
)


@given(lattices)
def test_leq_reflexive(lattice):
    assert all(lattice.leq(level, level) for level in lattice.levels)


@given(lattices, st.data())
def test_leq_antisymmetric(lattice, data):
    a = data.draw(st.sampled_from(sorted(lattice.levels)))
    b = data.draw(st.sampled_from(sorted(lattice.levels)))
    if lattice.leq(a, b) and lattice.leq(b, a):
        assert a == b


@given(lattices, st.data())
@settings(max_examples=60)
def test_leq_transitive(lattice, data):
    levels = sorted(lattice.levels)
    a = data.draw(st.sampled_from(levels))
    b = data.draw(st.sampled_from(levels))
    c = data.draw(st.sampled_from(levels))
    if lattice.leq(a, b) and lattice.leq(b, c):
        assert lattice.leq(a, c)


@given(lattices, st.data())
def test_minimal_upper_bounds_are_upper_bounds(lattice, data):
    levels = sorted(lattice.levels)
    a = data.draw(st.sampled_from(levels))
    b = data.draw(st.sampled_from(levels))
    for bound in lattice.minimal_upper_bounds((a, b)):
        assert lattice.leq(a, bound)
        assert lattice.leq(b, bound)


@given(lattices, st.data())
def test_minimal_upper_bounds_are_minimal(lattice, data):
    levels = sorted(lattice.levels)
    a = data.draw(st.sampled_from(levels))
    b = data.draw(st.sampled_from(levels))
    bounds = lattice.minimal_upper_bounds((a, b))
    for x in bounds:
        for y in bounds:
            if x != y:
                assert not lattice.lt(x, y)


@given(lattices, st.data())
def test_up_set_down_set_duality(lattice, data):
    levels = sorted(lattice.levels)
    a = data.draw(st.sampled_from(levels))
    b = data.draw(st.sampled_from(levels))
    assert (b in lattice.up_set(a)) == (a in lattice.down_set(b))


@given(lattices)
def test_topological_is_linear_extension(lattice):
    order = lattice.topological()
    assert sorted(order) == sorted(lattice.levels)
    position = {level: i for i, level in enumerate(order)}
    for low, high in lattice.cover_pairs:
        assert position[low] < position[high]


@given(lattices, st.data())
def test_down_set_is_visibility_closed(lattice, data):
    """Everything below a visible level is itself visible (no read-up)."""
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    for visible in lattice.down_set(level):
        assert lattice.down_set(visible) <= lattice.down_set(level)
