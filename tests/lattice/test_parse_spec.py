"""Unit tests for lattice spec parsing/formatting."""

import pytest

from repro.errors import LatticeError
from repro.lattice import (
    format_facts,
    military_chain,
    parse_chain_spec,
    parse_fact_spec,
    parse_lattice,
)


class TestChainSpec:
    def test_single_chain(self):
        lattice = parse_chain_spec("u < c < s < t")
        assert lattice == military_chain()

    def test_multiple_chains_form_diamond(self):
        lattice = parse_chain_spec("lo < a < hi; lo < b < hi")
        assert lattice.incomparable_pairs() == {("a", "b")}

    def test_whitespace_tolerant(self):
        assert parse_chain_spec("  u<c ;") .levels == {"u", "c"}

    def test_empty_rejected(self):
        with pytest.raises(LatticeError):
            parse_chain_spec("   ;  ")

    def test_bad_name_rejected(self):
        with pytest.raises(LatticeError):
            parse_chain_spec("u < c$ < s")


class TestFactSpec:
    def test_paper_syntax(self):
        lattice = parse_fact_spec("level(u). level(c). order(u, c).")
        assert lattice.leq("u", "c")

    def test_orders_only_still_declares_levels(self):
        lattice = parse_fact_spec("order(u, c). order(c, s). level(u). level(c). level(s).")
        assert lattice.leq("u", "s")

    def test_no_facts_rejected(self):
        with pytest.raises(LatticeError):
            parse_fact_spec("nothing here")


class TestAutoDetect:
    def test_detects_fact_syntax(self):
        assert parse_lattice("level(u). order(u, c). level(c).").leq("u", "c")

    def test_detects_chain_syntax(self):
        assert parse_lattice("u < c").leq("u", "c")


class TestRoundTrip:
    def test_format_then_parse_is_identity(self):
        original = military_chain()
        assert parse_fact_spec(format_facts(original)) == original

    def test_diamond_round_trip(self):
        original = parse_chain_spec("lo < a < hi; lo < b < hi")
        assert parse_fact_spec(format_facts(original)) == original
