"""Unit tests for canonical and synthetic workloads."""

import pytest

from repro.mls import is_consistent
from repro.multilog import OperationalEngine, is_admissible
from repro.workloads import (
    MISSION_ROWS,
    d1_database,
    make_lattice,
    mission_multilog,
    mission_relation,
    mission_via_updates,
    random_datalog_program,
    random_mls_relation,
    random_multilog_database,
)


class TestMission:
    def test_figure1_has_ten_rows(self):
        relation, tids = mission_relation()
        assert len(relation) == 10
        assert set(tids) == set(MISSION_ROWS)

    def test_figure1_consistent(self):
        relation, _ = mission_relation()
        assert is_consistent(relation)

    def test_update_replay_matches(self):
        relation, _ = mission_relation()
        assert set(mission_via_updates()) == set(relation)

    def test_multilog_encoding_admissible(self):
        assert is_admissible(mission_multilog())

    def test_d1_components(self):
        db = d1_database()
        assert (len(db.lattice_clauses), len(db.secured_clauses),
                len(db.plain_clauses), len(db.queries)) == (5, 3, 1, 1)


class TestLatticeFactory:
    def test_shapes(self):
        assert make_lattice("chain", 5).is_chain()
        assert not make_lattice("diamond").is_chain()
        assert len(make_lattice("random", 6, seed=1)) == 6

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            make_lattice("moebius")


class TestRandomRelation:
    def test_deterministic(self):
        a = random_mls_relation(20, seed=5)
        b = random_mls_relation(20, seed=5)
        assert set(a) == set(b)

    def test_size_bound(self):
        relation = random_mls_relation(30, seed=1)
        assert 0 < len(relation) <= 30  # duplicates may collapse

    @pytest.mark.parametrize("shape", ["chain", "diamond", "random"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_always_consistent(self, shape, seed):
        lattice = make_lattice(shape, 4, seed=seed)
        relation = random_mls_relation(
            25, lattice, polyinstantiation_rate=0.5, seed=seed)
        assert is_consistent(relation)

    def test_polyinstantiation_rate_creates_duplicates(self):
        relation = random_mls_relation(
            40, polyinstantiation_rate=0.9, seed=3, n_keys=5)
        keys = [t.key_values() for t in relation]
        assert len(set(keys)) < len(keys)


class TestRandomMultilog:
    def test_admissible(self):
        db = random_multilog_database(15, belief_rules=3, seed=2)
        assert is_admissible(db)

    def test_belief_rules_fire(self):
        db = random_multilog_database(15, belief_rules=5, seed=4)
        engine = OperationalEngine(db, "t")  # default lattice is u<c<s<t
        derived = [row for row in engine.cells() if str(row[3]).startswith("derived")]
        assert derived  # at least one belief rule produced a cell

    def test_plain_facts_added(self):
        db = random_multilog_database(5, plain_facts=4, seed=0)
        assert len(db.plain_clauses) == 4


class TestRandomDatalog:
    def test_chain_shape(self):
        text = random_datalog_program(5, "chain")
        assert text.count("edge(n") == 4  # facts; rule bodies use variables

    def test_tree_shape(self):
        text = random_datalog_program(7, "tree")
        assert "path(X, Y)" in text

    def test_random_is_deterministic(self):
        assert random_datalog_program(10, "random", seed=9) == \
            random_datalog_program(10, "random", seed=9)

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            random_datalog_program(5, "hypercube")
