"""Dependency graphs: SCCs, reachability, negation-cycle witnesses."""

from repro.analysis import DependencyGraph, render_cycle
from repro.datalog import parse_program


def graph_of(source: str) -> DependencyGraph:
    return DependencyGraph.from_program(parse_program(source))


class TestSccs:
    def test_acyclic(self):
        g = DependencyGraph.from_edges([("a", "b", False), ("b", "c", False)])
        assert all(len(c) == 1 for c in g.sccs())

    def test_simple_cycle(self):
        g = DependencyGraph.from_edges([("a", "b", False), ("b", "a", False)])
        assert {frozenset(c) for c in g.sccs()} == {frozenset({"a", "b"})}

    def test_two_components(self):
        g = DependencyGraph.from_edges([
            ("a", "b", False), ("b", "a", False),
            ("c", "d", False), ("d", "c", False),
            ("b", "c", False),  # bridge, one direction only
        ])
        comps = {frozenset(c) for c in g.sccs()}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c", "d"}) in comps

    def test_deep_chain_does_not_recurse(self):
        # 5000-node chain: the iterative Tarjan must not hit Python's
        # recursion limit.
        edges = [(f"n{i}", f"n{i + 1}", False) for i in range(5000)]
        g = DependencyGraph.from_edges(edges)
        assert len(g.sccs()) == 5001

    def test_lowlink_propagates_through_chain_into_cycle(self):
        # a -> b -> c -> a : the whole chain is one SCC even though the
        # closing edge is discovered deepest-first.
        g = DependencyGraph.from_edges([
            ("a", "b", False), ("b", "c", False), ("c", "a", False)])
        assert {frozenset(c) for c in g.sccs()} == {frozenset({"a", "b", "c"})}


class TestReachability:
    def test_reaches_transitively(self):
        g = graph_of("p(X) :- q(X). q(X) :- r(X). r(1). s(2).")
        assert g.reachable(["p"]) == {"p", "q", "r"}

    def test_unknown_root_is_ignored(self):
        g = graph_of("p(1).")
        assert g.reachable(["nope"]) == set()


class TestNegationCycles:
    def test_self_negation(self):
        g = graph_of("win(X) :- move(X, Y), not win(Y). move(1, 2).")
        [cycle] = g.negation_cycles()
        assert render_cycle(cycle) == "win -not-> win"

    def test_two_step_cycle(self):
        g = graph_of("p(X) :- q(X), not r(X). r(X) :- p(X). q(1).")
        [cycle] = g.negation_cycles()
        assert render_cycle(cycle) == "p -not-> r -> p"

    def test_stratified_negation_has_no_cycle(self):
        g = graph_of("p(X) :- q(X), not r(X). q(1). r(2).")
        assert g.negation_cycles() == []

    def test_positive_cycle_is_fine(self):
        g = graph_of("p(X) :- q(X). q(X) :- p(X). q(1).")
        assert g.negation_cycles() == []
