"""The diagnostic registry and report machinery."""

import json

from repro.analysis import (
    CODES,
    AnalysisReport,
    Severity,
    code_title,
    default_severity,
)


class TestRegistry:
    def test_codes_are_stable(self):
        # Append-only contract: these exact codes exist with these severities.
        expected = {
            "ML000": Severity.ERROR,
            "ML001": Severity.ERROR,
            "ML002": Severity.ERROR,
            "ML003": Severity.ERROR,
            "ML004": Severity.ERROR,
            "ML005": Severity.ERROR,
            "ML006": Severity.ERROR,
            "ML007": Severity.ERROR,
            "ML008": Severity.WARNING,
            "ML009": Severity.WARNING,
            "ML010": Severity.WARNING,
            "ML011": Severity.INFO,
            "ML012": Severity.INFO,
            "ML013": Severity.ERROR,
            "ML014": Severity.ERROR,
            "ML015": Severity.ERROR,
            "ML016": Severity.WARNING,
            "ML017": Severity.WARNING,
            "ML018": Severity.INFO,
            "ML019": Severity.WARNING,
            "ML020": Severity.ERROR,
            "ML021": Severity.ERROR,
        }
        for code, severity in expected.items():
            assert CODES[code][0] is severity
            assert code_title(code)

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.WARNING.label == "warning"

    def test_unknown_code_defaults_to_error(self):
        assert default_severity("ML999") is Severity.ERROR


class TestReport:
    def test_add_defaults_severity_from_registry(self):
        report = AnalysisReport()
        d = report.add("ML008", "flows down")
        assert d.severity is Severity.WARNING
        assert report.warnings == [d]

    def test_severity_override(self):
        report = AnalysisReport()
        d = report.add("ML009", "data-only story", severity=Severity.INFO)
        assert d.severity is Severity.INFO
        assert report.ok

    def test_clean_and_exit_codes(self):
        report = AnalysisReport()
        assert report.clean() and report.clean(strict=True)
        assert report.exit_code() == 0
        report.add("ML010", "dead")
        assert report.ok and report.clean() and not report.clean(strict=True)
        assert report.exit_code() == 0 and report.exit_code(strict=True) == 1
        report.add("ML001", "cycle")
        assert not report.ok and report.exit_code() == 1

    def test_render_text_orders_most_severe_first(self):
        report = AnalysisReport()
        report.add("ML011", "unused level")
        report.add("ML001", "cycle")
        report.add("ML008", "down flow")
        lines = report.render_text().splitlines()
        assert lines[0].startswith("error ML001")
        assert "1 error(s), 1 warning(s), 1 info(s)" in lines[-1]

    def test_empty_render(self):
        assert "clean" in AnalysisReport().render_text()

    def test_json_round_trip(self):
        report = AnalysisReport()
        report.add("ML004", "clash", location="rule r", hint="fix it")
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        [d] = payload["diagnostics"]
        assert d == {"code": "ML004", "severity": "error", "message": "clash",
                     "location": "rule r", "hint": "fix it"}
        assert payload["summary"] == {"errors": 1, "warnings": 0, "infos": 0}

    def test_by_code_and_codes(self):
        report = AnalysisReport()
        report.add("ML002", "a")
        report.add("ML002", "b")
        report.add("ML010", "c")
        assert report.codes() == ["ML002", "ML010"]
        assert len(report.by_code("ML002")) == 2

    def test_json_is_deduplicated_and_stably_sorted(self):
        # Two reports fed the same findings in different orders (and one
        # with an exact duplicate) must serialize byte-identically.
        forward, backward = AnalysisReport(), AnalysisReport()
        findings = [
            ("ML010", "dead", "predicate b"),
            ("ML002", "unsafe", "rule r2"),
            ("ML002", "unsafe", "rule r1"),
        ]
        for code, message, location in findings:
            forward.add(code, message, location=location)
        for code, message, location in reversed(findings):
            backward.add(code, message, location=location)
        backward.add("ML010", "dead", location="predicate b")  # duplicate
        assert forward.to_json() == backward.to_json()
        ordered = [(d["code"], d["location"])
                   for d in forward.to_dicts()["diagnostics"]]
        assert ordered == [("ML002", "rule r1"), ("ML002", "rule r2"),
                           ("ML010", "predicate b")]
        # the duplicate also collapses out of the summary counts
        assert backward.to_dicts()["summary"]["warnings"] == 1

    def test_envelope_carries_version_and_hash(self):
        from repro.analysis import ANALYZER_VERSION, fingerprint

        report = AnalysisReport()
        report.program_hash = fingerprint("p(1).")
        payload = json.loads(report.to_json())
        assert payload["analyzer"] == ANALYZER_VERSION
        assert payload["program_hash"] == fingerprint("p(1).")
        assert len(payload["program_hash"]) == 16
        # hash is content-addressed: same text, same hash
        assert fingerprint("p(1).") == fingerprint("p(1).")
        assert fingerprint("p(1).") != fingerprint("p(2).")
