"""Differential guarantee: analyzer-clean programs evaluate cleanly.

If the analyzer reports no errors, every Datalog strategy must accept
and agree on the program; if it reports ML001/ML002/ML003, the engine's
own fail-fast guards must reject it too (the analyzer is neither more
lenient nor spuriously strict).
"""

import pytest

from repro.analysis import analyze_database, analyze_program
from repro.datalog import evaluate, parse_program
from repro.errors import DatalogError, ReproError
from repro.multilog.session import MultiLogSession
from repro.workloads import random_datalog_program, random_multilog_database

STRATEGIES = ("naive", "seminaive", "compiled")

CLEAN_PROGRAMS = [
    "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z). "
    "edge(1, 2). edge(2, 3).",
    "p(X) :- q(X), not r(X). q(1). q(2). r(2).",
    "big(X) :- n(X), X > 1. n(1). n(2). n(3).",
]

BROKEN_PROGRAMS = [
    "win(X) :- move(X, Y), not win(Y). win(X) :- move(X, X), not win(X). "
    "move(1, 2).",
    "p(X, Y) :- q(X). q(1).",
    "p(X) :- q(X), not r(Y). q(1). r(2).",
]


@pytest.mark.parametrize("source", CLEAN_PROGRAMS)
def test_accepted_programs_run_under_every_strategy(source):
    program = parse_program(source)
    assert analyze_program(program).ok
    models = [
        {(p, row) for p in evaluate(program, strategy=s).predicates()
         for row in evaluate(program, strategy=s).rows(p)}
        for s in STRATEGIES
    ]
    assert models[0] == models[1] == models[2]


@pytest.mark.parametrize("source", BROKEN_PROGRAMS)
def test_rejected_programs_fail_in_the_engine_too(source):
    program = parse_program(source)
    report = analyze_program(program)
    assert not report.ok
    for strategy in STRATEGIES:
        with pytest.raises(DatalogError):
            evaluate(program, strategy=strategy)


def test_analyze_kwarg_reports_every_finding():
    program = parse_program("p(X, Y) :- q(X). r(A, B) :- q(A). q(1).")
    with pytest.raises(DatalogError) as exc:
        evaluate(program, analyze=True)
    text = str(exc.value)
    # Both unsafe rules appear, unlike the fail-fast default path.
    assert text.count("ML002") == 2


@pytest.mark.parametrize("seed", range(5))
def test_random_programs_agree_with_their_diagnosis(seed):
    program = parse_program(random_datalog_program(12, shape="random", seed=seed))
    report = analyze_program(program)
    if report.ok:
        for strategy in STRATEGIES:
            evaluate(program, strategy=strategy)
    else:
        with pytest.raises(ReproError):
            evaluate(program)


@pytest.mark.parametrize("seed", range(4))
def test_random_databases_analyze_clean_and_answer(seed):
    db = random_multilog_database(10, belief_rules=2, plain_facts=3, seed=seed)
    report = analyze_database(db)
    assert report.ok, report.render_text()
    # The analyzer accepted it: a session must evaluate it without error.
    session = MultiLogSession(db)
    session.cells()


def test_random_database_lint_gate_constructs(seed=0):
    db = random_multilog_database(8, seed=seed)
    MultiLogSession(db, lint=True)  # must not raise
