"""Golden corpus: bad programs and the diagnostic codes they must emit.

Each case is (name, source, expected codes).  The corpus is the
compatibility contract of the analyzer: code assignments here may grow
but must never silently change.
"""

import pytest

from repro.analysis import analyze_database, analyze_program
from repro.datalog import parse_program
from repro.multilog.parser import parse_database

# --- plain Datalog -------------------------------------------------------

DATALOG_CASES = [
    ("unstratifiable_self", "win(X) :- move(X, Y), not win(Y). "
     "win(X) :- move(X, X), not win(X). move(1, 2).", {"ML001"}),
    ("unstratifiable_two_step",
     "p(X) :- q(X), not r(X). r(X) :- p(X). q(1).", {"ML001"}),
    ("unsafe_head", "p(X, Y) :- q(X). q(1).", {"ML002"}),
    ("unsafe_negated", "p(X) :- q(X), not r(Y). q(1). r(2).", {"ML003"}),
    ("unsafe_builtin", "p(X) :- q(X), Y < 3. q(1).", {"ML003"}),
    ("arity_clash", "edge(a, b). path(X) :- edge(X).", {"ML004"}),
    ("arity_clash_heads", "p(a). p(a, b).", {"ML004"}),
    ("many_problems",
     "p(X, Y) :- q(X). r(X) :- q(X), not s(Y). s(X) :- r(X). q(1).",
     {"ML001", "ML002", "ML003"}),
]


@pytest.mark.parametrize("name,source,codes",
                         DATALOG_CASES, ids=[c[0] for c in DATALOG_CASES])
def test_datalog_corpus(name, source, codes):
    report = analyze_program(parse_program(source))
    assert set(report.codes()) >= codes, report.render_text()
    assert not report.ok


# --- MultiLog ------------------------------------------------------------

MULTILOG_BAD = [
    ("undeclared_label",
     "level(u). s[p(k : a -s-> v)].", {"ML005"}),
    ("order_undeclared_level",
     "level(u). order(u, s). u[p(k : a -u-> v)].", {"ML005"}),
    ("order_cycle",
     "level(a). level(b). order(a, b). order(b, a). a[p(k : x -a-> v)].",
     {"ML007"}),
    ("unknown_mode_query",
     "level(u). u[p(k : a -u-> v)]. ?- u[p(K : a -u-> V)] << zap.",
     {"ML013"}),
    ("unknown_mode_body",
     "level(u). u[p(k : a -u-> v)]. "
     "u[q(k : a -u-> w)] :- u[p(k : a -u-> v)] << wishful.",
     {"ML013"}),
    ("unsafe_multilog_head",
     "level(u). u[p(k : a -u-> V)] :- u[q(k : a -u-> w)].", {"ML002"}),
    ("reserved_arity_misuse",
     "level(u). u[p(k : a -u-> v)]. ord(X) :- order(X).", {"ML004"}),
    ("belief_feedback_unstratifiable",
     # Rebuilding secret data at U via optimistic belief over S feeds
     # rel@u back into bel@s: the specialized reduction cannot stratify.
     "level(u). level(s). order(u, s). "
     "s[mission(phantom : starship -u-> phantom; objective -s-> spying)]. "
     "u[guess(K : objective -u-> V)] :- s[mission(K : objective -s-> V)] << opt.",
     {"ML001"}),
]


@pytest.mark.parametrize("name,source,codes",
                         MULTILOG_BAD, ids=[c[0] for c in MULTILOG_BAD])
def test_multilog_error_corpus(name, source, codes):
    report = analyze_database(parse_database(source))
    assert set(report.codes()) >= codes, report.render_text()
    assert not report.ok


MULTILOG_WARN = [
    ("downward_flow",
     "level(u). level(s). order(u, s). s[emp(1 : sal -s-> 50)]. "
     "u[leak(K : sal -u-> V)] :- s[emp(K : sal -s-> V)].",
     {"ML008"}),
    ("downward_classification",
     "level(u). level(s). order(u, s). "
     "u[view(K : a -s-> V)] :- u[raw(K : a -s-> V)]. "
     "u[raw(1 : a -s-> x)].",
     {"ML008"}),
    ("surprise_reconstruction",
     # The latent story (secret objective of a low-visible key) PLUS a
     # rule whose optimistic belief over an incomparable branch rebuilds
     # it at the observing level: warning severity.
     "level(b). level(u1). level(u2). level(s). "
     "order(b, u1). order(b, u2). order(u1, s). order(u2, s). "
     "s[mission(phantom : starship -b-> phantom; objective -s-> spying)]. "
     "u1[guess(K : objective -u1-> V)] :- u2[mission(K : objective -C-> V)] << opt.",
     {"ML008", "ML009"}),
    ("dead_predicate",
     "level(u). u[used(1 : a -u-> x)]. u[unused(1 : a -u-> y)]. "
     "?- u[used(K : a -u-> V)].",
     {"ML010"}),
]


@pytest.mark.parametrize("name,source,codes",
                         MULTILOG_WARN, ids=[c[0] for c in MULTILOG_WARN])
def test_multilog_warning_corpus(name, source, codes):
    report = analyze_database(parse_database(source))
    assert set(report.codes()) >= codes, report.render_text()
    assert report.ok, report.render_text()          # warnings, not errors
    assert not report.clean(strict=True)


MULTILOG_INFO = [
    ("unused_level",
     "level(u). level(mid). level(s). order(u, mid). order(mid, s). "
     "u[p(1 : a -u-> v)]. ?- u[p(K : a -u-> V)].",
     {"ML011"}),
    ("belief_feedback",
     "level(u). level(s). order(u, s). u[p(k : a -u-> v)]. "
     "s[q(k : a -s-> w)] :- u[p(k : a -u-> v)] << cau.",
     {"ML012"}),
    ("surprise_story_data_only",
     # The story exists in the data but no rule rebuilds it: info only.
     "level(u). level(s). order(u, s). "
     "s[mission(phantom : starship -u-> phantom; objective -s-> spying)].",
     {"ML009"}),
]


@pytest.mark.parametrize("name,source,codes",
                         MULTILOG_INFO, ids=[c[0] for c in MULTILOG_INFO])
def test_multilog_info_corpus(name, source, codes):
    report = analyze_database(parse_database(source))
    assert set(report.codes()) >= codes, report.render_text()
    assert report.clean(strict=True), report.render_text()  # infos never fail


def test_every_finding_reported_not_just_first():
    # Two unsafe rules and an arity clash: the analyzer reports all of
    # them in one pass, unlike the engine's fail-fast check_safety.
    source = "p(X, Y) :- q(X). r(A, B) :- q(A). q(1). q(1, 2)."
    report = analyze_program(parse_program(source))
    assert len(report.by_code("ML002")) == 2
    assert len(report.by_code("ML004")) == 1


def test_cycle_witness_names_the_predicates():
    report = analyze_program(parse_program(
        "p(X) :- q(X), not r(X). r(X) :- p(X). q(1)."))
    [d] = report.by_code("ML001")
    assert "p -not-> r -> p" in d.message
