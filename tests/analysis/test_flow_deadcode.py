"""Unit coverage for the security-flow and dead-code passes."""

from repro.analysis import (
    analyze_database,
    belief_feedback,
    dead_database_predicates,
    declared_modes,
    downward_flows,
    surprise_risks,
    unknown_modes,
    unused_levels,
)
from repro.multilog.admissibility import check_admissibility
from repro.multilog.parser import parse_database
from repro.workloads import d1_database, mission_multilog

CHAIN = "level(u). level(c). level(s). order(u, c). order(c, s). "


def ctx_of(db):
    return check_admissibility(db)


class TestDownwardFlows:
    def test_upward_flow_is_fine(self):
        db = parse_database(
            CHAIN + "u[p(1 : a -u-> v)]. "
            "s[q(K : a -s-> V)] :- u[p(K : a -u-> V)].")
        assert downward_flows(db, ctx_of(db)) == []

    def test_downward_level_flow(self):
        db = parse_database(
            CHAIN + "s[p(1 : a -s-> v)]. "
            "u[q(K : a -u-> V)] :- s[p(K : a -s-> V)].")
        findings = downward_flows(db, ctx_of(db))
        assert len(findings) == 1
        assert findings[0].head_level == "u" and findings[0].source_level == "s"

    def test_same_label_reported_once(self):
        # Body level and classification are both 's': one finding, not two.
        db = parse_database(
            CHAIN + "s[p(1 : a -s-> v)]. "
            "u[q(K : a -u-> V)] :- s[p(K : a -s-> V)].")
        assert len(downward_flows(db, ctx_of(db))) == 1

    def test_variable_levels_are_skipped(self):
        db = parse_database(
            CHAIN + "s[p(1 : a -s-> v)]. "
            "s[q(K : a -s-> V)] :- L[p(K : a -C-> V)].")
        assert downward_flows(db, ctx_of(db)) == []


class TestSurprise:
    def test_covered_null_is_no_story(self):
        # A believable u-tuple papers over the missing secret value.
        db = parse_database(
            CHAIN + "s[m(k : starship -u-> k; obj -s-> secret)]. "
            "u[m(k : starship -u-> k; obj -u-> cover)].")
        assert surprise_risks(db, ctx_of(db)) == []

    def test_uncovered_null_is_a_story(self):
        db = parse_database(
            CHAIN + "s[m(k : starship -u-> k; obj -s-> secret)].")
        risks = surprise_risks(db, ctx_of(db))
        assert {r.level for r in risks} == {"u", "c"}
        assert all(r.pred == "m" and "obj" in r.attributes for r in risks)

    def test_mission_workload_story_detected(self):
        db = mission_multilog()
        risks = surprise_risks(db, ctx_of(db))
        assert any(r.key == "phantom" for r in risks)
        # The workload ships no reconstruction rules: info-grade only.
        assert all(not r.reconstructing_rules for r in risks)


class TestModes:
    def test_builtin_and_user_modes(self):
        db = parse_database(
            CHAIN + "u[p(1 : a -u-> v)]. "
            "bel(P, K, A, V, C, L, trusting) :- bel(P, K, A, V, C, L, cau). "
            "?- u[p(K : a -u-> V)] << trusting.")
        assert "trusting" in declared_modes(db)
        assert unknown_modes(db) == []

    def test_unknown_mode_found_everywhere(self):
        db = parse_database(
            CHAIN + "u[p(1 : a -u-> v)]. "
            "u[q(K : a -u-> V)] :- u[p(K : a -u-> V)] << bogus. "
            "?- u[p(K : a -u-> V)] << phony.")
        assert {m for m, _ in unknown_modes(db)} == {"bogus", "phony"}


class TestBeliefFeedback:
    def test_d1_r8_flagged(self):
        assert len(belief_feedback(d1_database())) == 1

    def test_plain_rules_not_flagged(self):
        db = parse_database(CHAIN + "u[p(1 : a -u-> v)]. q(X) :- r(X). r(1).")
        assert belief_feedback(db) == []


class TestDeadCode:
    def test_no_queries_no_findings(self):
        db = parse_database(CHAIN + "u[p(1 : a -u-> v)].")
        assert dead_database_predicates(db) == []

    def test_unreachable_predicate(self):
        db = parse_database(
            CHAIN + "u[used(1 : a -u-> x)]. u[unused(1 : a -u-> y)]. "
            "?- u[used(K : a -u-> V)].")
        assert ("secured", "unused") in dead_database_predicates(db)

    def test_rule_chain_keeps_predicates_alive(self):
        db = parse_database(
            CHAIN + "u[base(1 : a -u-> x)]. "
            "u[derived(K : a -u-> V)] :- u[base(K : a -u-> V)]. "
            "?- u[derived(K : a -u-> V)].")
        assert dead_database_predicates(db) == []

    def test_unused_level_excludes_tops(self):
        db = parse_database(CHAIN + "u[p(1 : a -u-> v)].")
        # 'c' classifies nothing; 's' is the top and exempt.
        assert unused_levels(db, ctx_of(db)) == ["c"]

    def test_workloads_have_no_dead_code_errors(self):
        for db in (d1_database(), mission_multilog()):
            report = analyze_database(db)
            assert report.clean(strict=True), report.render_text()
