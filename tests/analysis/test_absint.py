"""Binding-mode abstract interpretation (ML017/ML018/ML019)."""

from repro.analysis import analyze_program
from repro.analysis.absint import (
    MAX_WIDTH,
    analyze_bindings,
    delta_safety,
    lint_bindings,
)
from repro.analysis.diagnostics import AnalysisReport
from repro.datalog import evaluate, parse_program


def _lint(text):
    report = AnalysisReport()
    analysis = lint_bindings(parse_program(text), report)
    return report, analysis


class TestDomains:
    def test_fact_domains_seed_the_fixpoint(self):
        analysis = analyze_bindings(parse_program("p(1). p(2). q(a)."))
        assert analysis.domains[("p", 1)][0] == frozenset({1, 2})
        assert ("p", 1) in analysis.nonempty

    def test_domains_flow_through_rules(self):
        analysis = analyze_bindings(parse_program(
            "n(1). n(2). copy(X) :- n(X). tagged(lab, X) :- copy(X)."))
        assert analysis.domains[("copy", 1)][0] == frozenset({1, 2})
        tagged = analysis.domains[("tagged", 2)]
        assert tagged[0] == frozenset({"lab"})
        assert tagged[1] == frozenset({1, 2})

    def test_widening_past_the_cap(self):
        facts = " ".join(f"p({i})." for i in range(MAX_WIDTH + 1))
        analysis = analyze_bindings(parse_program(facts))
        assert analysis.domains[("p", 1)][0] is None  # TOP

    def test_binding_pattern(self):
        analysis = analyze_bindings(parse_program(
            "n(1). n(2). tagged(lab, X) :- n(X)."))
        assert analysis.binding_pattern("tagged", 2) == "bf"
        assert analysis.binding_pattern("n", 1) == "f"
        assert analysis.binding_pattern("unknown", 3) == "fff"

    def test_recursion_reaches_a_fixpoint(self):
        analysis = analyze_bindings(parse_program(
            "edge(1, 2). edge(2, 3). path(X, Y) :- edge(X, Y). "
            "path(X, Z) :- edge(X, Y), path(Y, Z)."))
        assert ("path", 2) in analysis.nonempty
        assert analysis.domains[("path", 2)][0] == frozenset({1, 2})


class TestStaticallyEmpty:
    def test_rule_over_empty_relation_is_ml017(self):
        report, analysis = _lint(
            "q(1). r(X) :- phantom(X). root(X) :- r(X), q(X).")
        assert "ML017" in report.codes()
        assert analysis.is_statically_empty("r", 1)
        # warning, not error: evaluation still succeeds (empty answer)
        assert report.ok

    def test_disjoint_join_is_ml017(self):
        report, _ = _lint("a(1). b(2). both(X) :- a(X), b(X).")
        assert "ML017" in report.codes()

    def test_populated_relations_are_not_flagged(self):
        report, _ = _lint("a(1). b(1). both(X) :- a(X), b(X).")
        assert "ML017" not in report.codes()

    def test_stronger_than_reachability(self):
        # ML010 needs roots; ML017 judges satisfiability with none.
        report = analyze_program(parse_program(
            "q(1). r(X) :- phantom(X)."), roots=("r",))
        assert "ML017" in report.codes()
        assert "ML010" not in [d.code for d in report.by_code("ML017")]


class TestUnsatGuards:
    def test_disjoint_constant_domains_are_ml019(self):
        report, analysis = _lint("n(1). n(2). big(X) :- n(X), X > 5.")
        assert "ML019" in report.codes()
        assert analysis.unsat_guards

    def test_self_comparison_is_ml019(self):
        report, _ = _lint("p(a). weird(X) :- p(X), X != X.")
        assert "ML019" in report.codes()

    def test_satisfiable_guard_is_clean(self):
        report, _ = _lint("n(1). n(9). big(X) :- n(X), X > 5.")
        assert "ML019" not in report.codes()

    def test_top_domains_never_flag(self):
        facts = " ".join(f"n({i})." for i in range(MAX_WIDTH + 1))
        report, _ = _lint(facts + " big(X) :- n(X), X > 99999.")
        # widened to TOP: the analysis cannot prove unsatisfiability
        assert "ML019" not in report.codes()

    def test_verdict_is_sound(self):
        # the flagged rule really derives nothing
        text = "n(1). n(2). big(X) :- n(X), X > 5."
        report, _ = _lint(text)
        assert "ML019" in report.codes()
        db = evaluate(parse_program(text))
        assert list(db.rows("big")) == []


class TestDeltaSafety:
    def test_positive_program_is_monotone(self):
        safety = delta_safety(parse_program(
            "e(1, 2). p(X, Y) :- e(X, Y). p(X, Z) :- e(X, Y), p(Y, Z)."))
        assert safety == {"p": "monotone"}

    def test_negation_needs_overdeletion(self):
        safety = delta_safety(parse_program(
            "b(1). m(1). u(X) :- b(X), not m(X)."))
        assert safety["u"] == "overdelete"

    def test_taint_is_transitive(self):
        safety = delta_safety(parse_program(
            "b(1). m(1). u(X) :- b(X), not m(X). v(X) :- u(X). w(X) :- b(X)."))
        assert safety["v"] == "overdelete"  # consumes negation-derived u
        assert safety["w"] == "monotone"

    def test_ml018_reported_per_overdelete_rule(self):
        report, _ = _lint("b(1). m(1). u(X) :- b(X), not m(X). v(X) :- u(X).")
        messages = [d.message for d in report.by_code("ML018")]
        assert len(messages) == 2
        assert any("uses negation" in m for m in messages)
        assert any("depends on" in m for m in messages)
        # info severity: never fails strict lint
        assert report.clean(strict=True)


class TestAnalyzerWiring:
    def test_analyze_program_surfaces_absint(self):
        report = analyze_program(parse_program(
            "a(1). b(2). both(X) :- a(X), b(X), X > 9."))
        codes = report.codes()
        assert "ML017" in codes or "ML019" in codes

    def test_database_reduction_gets_ml018_summary(self):
        from repro.analysis import analyze_database
        from repro.workloads import d1_database

        report = analyze_database(d1_database())
        summaries = report.by_code("ML018")
        assert summaries  # the tau reduction is negation-heavy
        assert any("DRed" in d.message for d in summaries)
        assert report.ok
