"""The analyzer's user-facing surfaces: session, shell, CLI."""

import json

import pytest

from repro.cli import Shell, lint_main, main
from repro.errors import AnalysisError
from repro.multilog.session import MultiLogSession

CLEAN = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
?- u[acct(K : balance -u-> B)].
"""

LEAKY = """
level(u). level(s). order(u, s).
s[emp(1 : sal -s-> 50)].
u[leak(K : sal -u-> V)] :- s[emp(K : sal -s-> V)].
?- u[leak(K : sal -u-> V)].
"""

BROKEN = """
level(u).
u[p(1 : a -u-> v)].
?- u[p(K : a -u-> V)] << zap.
"""


class TestSessionAnalyze:
    def test_clean_database(self):
        report = MultiLogSession(CLEAN).analyze()
        assert report.clean(strict=True), report.render_text()

    def test_warnings_surface(self):
        report = MultiLogSession(LEAKY).analyze()
        assert report.ok and not report.clean(strict=True)
        assert "ML008" in report.codes()

    def test_analyze_records_a_trace_span(self):
        session = MultiLogSession(CLEAN)
        session.analyze()
        recorder = session.last_trace()
        assert recorder is not None and recorder.find("analyze") is not None

    def test_lint_gate_raises_with_report(self):
        with pytest.raises(AnalysisError) as exc:
            MultiLogSession(BROKEN, lint=True)
        assert "ML013" in str(exc.value)
        assert exc.value.report is not None
        assert not exc.value.report.ok

    def test_lint_gate_passes_clean_database(self):
        MultiLogSession(CLEAN, lint=True)

    def test_analyze_uses_session_clearance(self):
        # Analysis at clearance 'u' stratifies only the u-reduction.
        report = MultiLogSession(CLEAN, clearance="u").analyze()
        assert report.ok


class TestShellLint:
    def test_lint_command(self):
        shell = Shell(LEAKY, clearance="s")
        out = shell.execute_line(":lint")
        assert "ML008" in out and "warning" in out

    def test_lint_in_help(self):
        assert ":lint" in Shell(CLEAN).execute_line(":help")


class TestLintCli:
    def test_lint_file_text(self, tmp_path, capsys):
        path = tmp_path / "leaky.mlog"
        path.write_text(LEAKY)
        assert main(["lint", str(path)]) == 0       # warnings pass by default
        assert "ML008" in capsys.readouterr().out

    def test_lint_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "leaky.mlog"
        path.write_text(LEAKY)
        assert main(["lint", "--strict", str(path)]) == 1

    def test_lint_error_exit(self, tmp_path, capsys):
        path = tmp_path / "broken.mlog"
        path.write_text(BROKEN)
        assert main(["lint", str(path)]) == 1
        assert "ML013" in capsys.readouterr().out

    def test_lint_json(self, tmp_path, capsys):
        path = tmp_path / "broken.mlog"
        path.write_text(BROKEN)
        assert lint_main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        [(name, entry)] = payload["inputs"].items()
        assert name.endswith("broken.mlog")
        assert any(d["code"] == "ML013" for d in entry["diagnostics"])

    def test_lint_parse_error_is_ml000(self, tmp_path, capsys):
        path = tmp_path / "bad.mlog"
        path.write_text("level(u.")
        assert lint_main([str(path)]) == 1
        assert "ML000" in capsys.readouterr().out

    def test_lint_missing_file_is_ml000(self, capsys):
        assert lint_main(["/nonexistent/nowhere.mlog"]) == 1
        assert "ML000" in capsys.readouterr().out

    def test_lint_datalog_file(self, tmp_path, capsys):
        path = tmp_path / "prog.dl"
        path.write_text("win(X) :- move(X, Y), not win(Y). "
                        "win(X) :- move(X, X), not win(X). move(1, 2).")
        assert lint_main([str(path)]) == 1
        assert "ML001" in capsys.readouterr().out

    def test_lint_workloads_strict_clean(self, capsys):
        assert lint_main(["--strict", "--workload", "d1",
                          "--workload", "mission"]) == 0

    def test_lint_nothing_to_do_errors(self, capsys):
        with pytest.raises(SystemExit):
            lint_main([])

    def test_lint_only_flag(self, tmp_path, capsys):
        good = tmp_path / "good.mlog"
        good.write_text(CLEAN)
        assert main([str(good), "--lint-only"]) == 0
        bad = tmp_path / "bad.mlog"
        bad.write_text(BROKEN)
        assert main([str(bad), "--lint-only"]) == 1
        # Warnings alone do not fail --lint-only (errors-only gate).
        leaky = tmp_path / "leaky.mlog"
        leaky.write_text(LEAKY)
        assert main([str(leaky), "--lint-only"]) == 0
