"""The plan verifier: every codegen'd plan is checked before its exec.

Three layers of guarantee:

* the golden differential corpus compiles with zero ML014/ML015 under
  both row and batch codegen (plus random workload programs);
* seeded mutations -- corrupted access paths, tampered generated source,
  reordered guards, un-deduped batch merges -- each trip the right code;
* the wiring raises :class:`PlanVerificationError` from ``compile``
  *before* ``exec``, so an unsound plan can never fire.
"""

import pytest

from repro.analysis.planverify import verify_plan, verify_plan_source
from repro.datalog import evaluate, parse_program
from repro.datalog.engine import greedy_join_order, reorder_body
from repro.datalog.plan import (
    _BatchEmitter,
    _Emitter,
    compile_batch_rule,
    compile_rule,
    plan_verification_enabled,
    set_plan_verification,
)
from repro.errors import PlanVerificationError
from repro.workloads import random_datalog_program

from ..datalog.test_compiled_differential import CORNER_CASES


def _prepared_rules(text):
    """Rules of ``text`` with bodies in execution order, as the engine
    prepares them before compilation."""
    program = parse_program(text)
    out = []
    for rule in program.rules:
        body = reorder_body(greedy_join_order(rule.body), rule)
        out.append(type(rule)(rule.head, body))
    return out


CORPUS = list(CORNER_CASES) + [
    random_datalog_program(6 + seed, "random", seed=seed) for seed in range(4)
]


class TestGoldenCorpus:
    @pytest.mark.parametrize("text", CORPUS)
    def test_row_plans_verify_clean(self, text):
        for rule in _prepared_rules(text):
            plan = compile_rule(rule, {rule.head.predicate})
            report = verify_plan(plan, "row")
            assert report.ok, report.render_text()

    @pytest.mark.parametrize("text", CORPUS)
    def test_batch_plans_verify_clean(self, text):
        for rule in _prepared_rules(text):
            plan = compile_batch_rule(rule, {rule.head.predicate})
            report = verify_plan(plan, "batch")
            assert report.ok, report.render_text()

    @pytest.mark.parametrize("text", CORPUS)
    def test_verification_enabled_end_to_end(self, text):
        # The default-on wiring: both codegen strategies evaluate the
        # corpus with the verifier live on every compiled variant.
        assert plan_verification_enabled()
        program = parse_program(text)
        evaluate(program, "compiled")
        evaluate(program, "vectorized", backend="columnar")


class TestStructuralChecks:
    def _rule(self, text):
        [rule] = _prepared_rules(text)
        return rule

    def test_probe_on_unbound_position_is_ml014(self):
        rule = self._rule("e(a, b). p(X, Y) :- e(X, Y), e(Y, Z).")
        plan = compile_rule(rule)
        paths = [dict(p) for p in plan.access_paths]
        # corrupt: claim the second probe also keys on its unbound column
        paths[1]["positions"] = (0, 1)
        report = verify_plan_source(rule, plan.source, paths, "row")
        assert "ML014" in report.codes()

    def test_guard_before_binding_is_ml015(self):
        rule = self._rule("n(1). small(X) :- n(X), X < 3.")
        plan = compile_rule(rule)
        # corrupt: swap the body so the guard precedes its binder, as a
        # broken optimizer reordering would
        swapped = type(rule)(rule.head, (rule.body[1], rule.body[0]))
        paths = [plan.access_paths[1], plan.access_paths[0]]
        report = verify_plan_source(swapped, plan.source, paths, "row")
        assert "ML015" in report.codes()

    def test_wrong_access_kind_is_ml014(self):
        rule = self._rule("p(a). q(X) :- p(X).")
        plan = compile_rule(rule)
        paths = [{"literal": repr(rule.body[0]), "access": "guard"}]
        report = verify_plan_source(rule, plan.source, paths, "row")
        assert "ML014" in report.codes()

    def test_pipeline_body_mismatch_is_ml014(self):
        rule = self._rule("p(a). q(X) :- p(X).")
        plan = compile_rule(rule)
        report = verify_plan_source(rule, plan.source, (), "row")
        assert "ML014" in report.codes()

    def test_duplicate_literal_is_ml016_dead_op(self):
        rule = self._rule("p(a). q(X) :- p(X), p(X).")
        plan = compile_rule(rule)
        report = verify_plan(plan, "row")
        assert report.ok  # sound, just wasteful
        assert "ML016" in report.codes()

    def test_tautological_guard_is_ml016(self):
        rule = self._rule("p(a). q(X) :- p(X), X = X.")
        plan = compile_rule(rule)
        report = verify_plan(plan, "row")
        assert report.ok
        assert "ML016" in report.codes()


class TestSourceChecks:
    def _plan(self, text, batch=False):
        [rule] = _prepared_rules(text)
        return (compile_batch_rule(rule) if batch else compile_rule(rule)), rule

    def test_unbound_local_in_source_is_ml014(self):
        plan, rule = self._plan("e(a, b). p(X, Y) :- e(X, Y).")
        tampered = plan.source.replace("_append((v0, v1,))",
                                       "_append((v0, v9,))")
        assert tampered != plan.source
        report = verify_plan_source(rule, tampered, plan.access_paths, "row")
        assert "ML014" in report.codes()

    def test_wrong_head_arity_is_ml014(self):
        plan, rule = self._plan("e(a, b). p(X, Y) :- e(X, Y).")
        tampered = plan.source.replace("_append((v0, v1,))", "_append((v0,))")
        report = verify_plan_source(rule, tampered, plan.access_paths, "row")
        assert "ML014" in report.codes()

    def test_batch_merge_without_dedup_is_ml014(self):
        plan, rule = self._plan("e(a, b). e(b, c). p(Y) :- e(X, Y).", batch=True)
        assert "return {" in plan.source
        tampered = plan.source.replace("return {", "return [", 1)
        tampered = tampered[::-1].replace("}", "]", 1)[::-1]
        report = verify_plan_source(rule, tampered, plan.access_paths, "batch")
        assert "ML014" in report.codes()

    def test_unparseable_source_is_ml014(self):
        plan, rule = self._plan("p(a). q(X) :- p(X).")
        report = verify_plan_source(rule, "def _fire(db:", plan.access_paths,
                                    "row")
        assert "ML014" in report.codes()


class TestWiring:
    """ML014 must fire *before* exec: the mutated plan never runs."""

    @pytest.fixture(autouse=True)
    def _verification_on(self):
        previous = set_plan_verification(True)
        yield
        set_plan_verification(previous)

    def _mutate_emitter(self, monkeypatch, emitter_class, needle, poison):
        original = emitter_class.emit

        def corrupted(self, delta_position):
            source = original(self, delta_position)
            assert needle in source, source
            return source.replace(needle, poison)

        monkeypatch.setattr(emitter_class, "emit", corrupted)

    def test_row_mutation_raises_before_exec(self, monkeypatch):
        [rule] = _prepared_rules("e(a, b). p(X, Y) :- e(X, Y).")
        self._mutate_emitter(monkeypatch, _Emitter,
                             "_append((v0, v1,))", "_append((v0, v9,))")
        with pytest.raises(PlanVerificationError) as exc:
            compile_rule(rule)
        assert "ML014" in str(exc.value)
        assert exc.value.report is not None
        assert "ML014" in exc.value.report.codes()

    def test_batch_mutation_raises_before_exec(self, monkeypatch):
        [rule] = _prepared_rules("e(a, b). p(Y) :- e(X, Y).")
        # poison the head projection's comprehension variable: the
        # projection now reads a name the pipeline never bound
        self._mutate_emitter(monkeypatch, _BatchEmitter,
                             "for t in batch", "for q in batch")
        with pytest.raises(PlanVerificationError):
            compile_batch_rule(rule)

    def test_mutation_never_execs(self, monkeypatch):
        # If verification fired before exec, the poisoned source was
        # never compiled into a module: a syntactically-broken plan
        # raises PlanVerificationError, not SyntaxError.
        [rule] = _prepared_rules("p(a). q(X) :- p(X).")
        self._mutate_emitter(monkeypatch, _Emitter, "return _out",
                             "return _out +")
        with pytest.raises(PlanVerificationError):
            compile_rule(rule)

    def test_disabled_verification_skips_the_check(self, monkeypatch):
        [rule] = _prepared_rules("p(a). q(X) :- p(X).")
        set_plan_verification(False)
        # same corruption as above: without the verifier the plan execs
        # (and happily misbehaves) -- proving the gate is what saved us
        self._mutate_emitter(monkeypatch, _Emitter,
                             "_append((v0,))", "_append((v0, v0,))")
        plan = compile_rule(rule)
        assert plan.fire is not None

    def test_memoization_skips_repeat_verification(self, monkeypatch):
        import repro.analysis.planverify as planverify

        [rule] = _prepared_rules("p(a). q(X) :- p(X).")
        compile_rule(rule)  # populates the source memo

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("re-verified a memoized plan")

        monkeypatch.setattr(planverify, "verify_plan_source", explode)
        compile_rule(rule)  # identical source: memo hit, no re-verify
