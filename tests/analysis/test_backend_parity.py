"""Analyzer parity across storage backends.

Diagnostics judge the *program*, not the storage engine: running the
golden bad-program corpus with ``MULTILOG_BACKEND=dict`` and
``=columnar`` must produce identical diagnostic sets -- including the
reduction passes, which resolve the ambient backend when they stratify
and classify the tau translation per clearance.
"""

import pytest

from repro.analysis import analyze_database, analyze_program
from repro.datalog import parse_program
from repro.datalog.storage import BACKEND_ENV
from repro.multilog.parser import parse_database

from .test_corpus import (
    DATALOG_CASES,
    MULTILOG_BAD,
    MULTILOG_INFO,
    MULTILOG_WARN,
)

BACKENDS = ("dict", "columnar")

MULTILOG_CORPUS = MULTILOG_BAD + MULTILOG_WARN + MULTILOG_INFO


def _signature(report):
    """Backend-comparable projection of a report."""
    return sorted(
        (d.code, d.severity, d.location, d.message)
        for d in report.normalized()
    )


@pytest.mark.parametrize("name,source,codes",
                         DATALOG_CASES, ids=[c[0] for c in DATALOG_CASES])
def test_datalog_corpus_parity(name, source, codes, monkeypatch):
    signatures = {}
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV, backend)
        report = analyze_program(parse_program(source))
        assert set(report.codes()) >= codes
        signatures[backend] = _signature(report)
    assert signatures["dict"] == signatures["columnar"]


@pytest.mark.parametrize("name,source,codes",
                         MULTILOG_CORPUS, ids=[c[0] for c in MULTILOG_CORPUS])
def test_multilog_corpus_parity(name, source, codes, monkeypatch):
    signatures = {}
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV, backend)
        report = analyze_database(parse_database(source))
        assert set(report.codes()) >= codes
        signatures[backend] = _signature(report)
    assert signatures["dict"] == signatures["columnar"]


def test_reports_are_byte_stable_across_backends(monkeypatch):
    """The full JSON envelope -- not just the codes -- must match."""
    source = MULTILOG_WARN[0][1]
    payloads = set()
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV, backend)
        payloads.add(analyze_database(parse_database(source)).to_json())
    assert len(payloads) == 1
