"""Async-safety lint (ML020/ML021) -- and the serving layer stays clean."""

import textwrap

from repro.analysis import analyze_async_safety, serving_sources
from repro.analysis.asyncsafe import lint_async_source
from repro.analysis.diagnostics import AnalysisReport


def _lint(source):
    report = AnalysisReport()
    lint_async_source(textwrap.dedent(source), "case.py", report)
    return report


class TestBlockingCalls:
    def test_injected_time_sleep_is_ml020(self):
        report = _lint("""
            import time
            async def handler():
                time.sleep(0.5)
        """)
        [d] = report.by_code("ML020")
        assert "time.sleep" in d.message
        assert d.location == "case.py:4"

    def test_injected_session_ask_is_ml020(self):
        report = _lint("""
            async def serve(session, query):
                return session.ask(query)
        """)
        assert report.by_code("ML020")

    def test_sync_lock_acquire_is_ml020(self):
        report = _lint("""
            async def critical(lock):
                lock.acquire()
        """)
        assert report.by_code("ML020")

    def test_bare_open_is_ml020(self):
        report = _lint("""
            async def loader(path):
                with open(path) as fh:
                    return fh.read()
        """)
        assert report.by_code("ML020")

    def test_awaited_flavour_is_clean(self):
        # await client.ask(...) / await lock.acquire() are the async APIs
        report = _lint("""
            async def relay(client, lock, query):
                async with lock:
                    pass
                await lock.acquire()
                return await client.ask(query)
        """)
        assert not report.by_code("ML020")

    def test_executor_offload_is_clean(self):
        report = _lint("""
            import asyncio, functools
            async def serve(session, query, threads):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    threads, functools.partial(session.ask, query))
        """)
        assert not report.diagnostics

    def test_nonblocking_acquire_is_clean(self):
        report = _lint("""
            async def try_lock(lock):
                return lock.acquire(blocking=False)
        """)
        assert not report.by_code("ML020")

    def test_sync_functions_are_out_of_scope(self):
        report = _lint("""
            import time
            def worker():
                time.sleep(1)  # runs on a thread: fine
            async def outer():
                def nested():
                    time.sleep(1)  # judged where it is called
                return nested
        """)
        assert not report.diagnostics

    def test_nested_async_def_is_scanned(self):
        report = _lint("""
            import time
            def factory():
                async def handler():
                    time.sleep(1)
                return handler
        """)
        assert report.by_code("ML020")


class TestAwaitUnderWriteLock:
    def test_injected_await_under_write_lock_is_ml021(self):
        report = _lint("""
            async def publish(self, payload):
                async with self._rw.write():
                    await self.notify_all(payload)
        """)
        [d] = report.by_code("ML021")
        assert d.location == "case.py:4"

    def test_executor_offload_under_write_lock_is_sanctioned(self):
        report = _lint("""
            import functools
            async def store(self, clause, loop):
                async with self._rw.write():
                    await loop.run_in_executor(
                        self._threads,
                        functools.partial(self.session.assert_clause, clause))
        """)
        assert not report.diagnostics

    def test_await_after_the_lock_is_released_is_clean(self):
        report = _lint("""
            async def store(self, clause):
                async with self._rw.write():
                    pass
                await self.notify_all(clause)
        """)
        assert not report.by_code("ML021")

    def test_read_side_is_not_the_write_side(self):
        report = _lint("""
            async def fetch(self, query):
                async with self._rw.read():
                    return await self.lookup(query)
        """)
        assert not report.by_code("ML021")

    def test_unrelated_write_method_is_not_a_lock(self):
        # stream.write() is a plain method; only rw/lock receivers count
        report = _lint("""
            async def flush(self, writer, data):
                async with writer.write():
                    await self.step()
        """)
        assert not report.by_code("ML021")


class TestServingLayerIsClean:
    def test_scope_covers_the_serving_package(self):
        names = {path.name for path in serving_sources()}
        assert {"server.py", "pool.py", "http.py", "client.py",
                "protocol.py"} <= names

    def test_serving_layer_lints_clean_strict(self):
        report = analyze_async_safety()
        assert report.clean(strict=True), report.render_text()

    def test_explicit_paths_accepted(self):
        [server] = [p for p in serving_sources() if p.name == "server.py"]
        report = analyze_async_safety([server])
        assert report.clean(strict=True)

    def test_unreadable_path_reports_ml000(self):
        report = analyze_async_safety(["/nonexistent/zzz.py"])
        assert report.by_code("ML000")
