"""CLI telemetry surface: ``multilog metrics`` / ``multilog audit``,
``:metrics`` / ``:audit`` / ``:explain QUERY`` / ``--trace-out``."""

import json

import pytest

from repro.cli import Shell, audit_main, main, metrics_main
from repro.resilience import FaultPlan

SOURCE = """\
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
?- s[acct(alice : balance -C-> B)] << cau.
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "bank.mlog"
    path.write_text(SOURCE)
    return path


class TestMetricsSubcommand:
    def test_emits_prometheus_text(self, program, capsys):
        assert main(["metrics", str(program), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE multilog_asks_total counter" in out
        assert "multilog_asks_total 1" in out
        assert 'multilog_span_latency_seconds_bucket{family="query"' in out
        for line in out.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])    # scrapable sample lines

    def test_builtin_workload(self, capsys):
        assert metrics_main(["--workload", "d1"]) == 0
        assert "multilog_asks_total" in capsys.readouterr().out

    def test_trace_out_writes_valid_chrome_json(self, program, tmp_path, capsys):
        out_file = tmp_path / "trace.chrome"
        assert main(["metrics", str(program), "--clearance", "s",
                     "--trace-out", str(out_file)]) == 0
        capsys.readouterr()
        document = json.loads(out_file.read_text())
        assert document["traceEvents"]
        assert all(event["ph"] == "X" for event in document["traceEvents"])

    def test_nothing_to_run_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            metrics_main([])
        assert err.value.code == 2

    def test_missing_file_fails(self, tmp_path, capsys):
        assert metrics_main([str(tmp_path / "nope.mlog")]) == 2
        assert "error:" in capsys.readouterr().err


class TestAuditSubcommand:
    def test_text_trail_names_cross_level_reads(self, program, capsys):
        assert main(["audit", str(program), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "cross_level_read" in out
        assert "subject=s" in out and "object=u" in out

    def test_jsonl_is_machine_readable(self, program, capsys):
        assert audit_main([str(program), "--clearance", "s",
                           "--format", "jsonl"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("cross_level_read", "override")
            assert record["count"] >= 1

    def test_workload_d1(self, capsys):
        assert audit_main(["--workload", "d1"]) == 0
        assert "cross_level_read" in capsys.readouterr().out


class TestShellObsCommands:
    def test_metrics_command_emits_prometheus(self):
        shell = Shell(SOURCE, clearance="s")
        shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        out = shell.execute_line(":metrics")
        assert "multilog_asks_total 1" in out
        # Telemetry was enabled lazily; the *next* query lands in histograms.
        shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert 'family="query"' in shell.execute_line(":metrics")

    def test_audit_command_and_clear(self):
        shell = Shell(SOURCE, clearance="s")
        first = shell.execute_line(":audit")        # enables the trail
        assert "audit" in first                     # "(audit trail empty)" note
        shell.execute_line("s[acct(alice : balance -C-> B)] << opt")
        out = shell.execute_line(":audit")
        assert "cross_level_read" in out
        jsonl = shell.execute_line(":audit jsonl")
        assert all(json.loads(line) for line in jsonl.splitlines())
        shell.execute_line(":audit clear")
        assert "cross_level_read" not in shell.execute_line(":audit")

    def test_audit_usage_error(self):
        shell = Shell(SOURCE, clearance="s")
        assert shell.execute_line(":audit bogus").startswith("error:")

    def test_explain_query_renders_provenance(self):
        shell = Shell(SOURCE, clearance="s")
        out = shell.execute_line(":explain s[acct(alice : balance -C-> B)] << cau")
        assert "rules: BELIEF" in out
        assert "proof sketch:" in out

    def test_trace_out_dumps_each_query(self, tmp_path):
        out_file = tmp_path / "q.jsonl"
        shell = Shell(SOURCE, clearance="s", trace_out=str(out_file))
        shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        lines = out_file.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "query"

    def test_trace_renders_aborted_tree_on_error(self):
        shell = Shell(SOURCE, clearance="s", trace=True)
        plan = FaultPlan()
        plan.arm("query", error="permanent")
        shell.session.arm_faults(plan)
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert out.startswith("error:")
        assert "query" in out.splitlines()[-1]      # the aborted span tree
