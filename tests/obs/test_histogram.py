"""Latency histograms and span-family folding (PR 5 tentpole)."""

import pytest

from repro.multilog import MultiLogSession
from repro.obs import DEFAULT_BUCKETS, HistogramSet, LatencyHistogram, span_family

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""


class TestLatencyHistogram:
    def test_observe_lands_in_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.0005)
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.0005)
        # Exactly one bucket counter moved.
        assert sum(hist.counts) == 1

    def test_quantiles_interpolate(self):
        hist = LatencyHistogram(bounds=(0.1, 0.2, 0.4))
        for _ in range(100):
            hist.observe(0.15)
        # All mass in the (0.1, 0.2] bucket: quantiles interpolate inside it.
        assert 0.1 <= hist.p50 <= 0.2
        assert 0.1 <= hist.quantile(0.99) <= 0.2

    def test_empty_histogram_quantiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.p50 == 0.0
        assert hist.p95 == 0.0
        assert hist.p99 == 0.0

    def test_overflow_clamps_to_last_bound(self):
        hist = LatencyHistogram(bounds=(0.1, 0.2))
        hist.observe(100.0)  # beyond every bound -> +Inf bucket
        assert hist.count == 1
        assert hist.quantile(0.99) == 0.2  # clamped, not infinite

    def test_min_max_track_extremes(self):
        hist = LatencyHistogram()
        hist.observe(0.001)
        hist.observe(0.5)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.5)

    def test_to_dict_shape(self):
        hist = LatencyHistogram()
        hist.observe(0.01)
        d = hist.to_dict()
        assert d["count"] == 1
        assert d["p50_s"] > 0.0
        assert d["sum_s"] == pytest.approx(0.01)
        assert len(hist.counts) == len(DEFAULT_BUCKETS) + 1  # +Inf slot


class TestSpanFamily:
    @pytest.mark.parametrize("name,attrs,family", [
        ("query", {}, "query"),
        ("beta", {"level": "s"}, "beta"),
        ("stratum[3]", {}, "stratum[*]"),
        ("round[17]", {"scope": "x"}, "round[*]"),
        ("evaluate", {"strategy": "compiled"}, "evaluate[compiled]"),
        ("evaluate", {"strategy": "naive"}, "evaluate[naive]"),
        ("evaluate", {}, "evaluate"),
        ("tau-translate", {}, "tau-translate"),
    ])
    def test_folding(self, name, attrs, family):
        assert span_family(name, attrs) == family


class TestHistogramSet:
    def test_observe_span_folds_families(self):
        hs = HistogramSet()
        hs.observe_span("stratum[0]", {}, 0.001)
        hs.observe_span("stratum[5]", {}, 0.002)
        assert hs.get("stratum[*]").count == 2
        assert hs.get("stratum[0]") is None

    def test_summary_mentions_families(self):
        hs = HistogramSet()
        hs.observe("query", 0.01)
        assert "query" in hs.summary()


class TestSessionTelemetry:
    def test_enable_telemetry_populates_families(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry()
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        families = session.histograms.families()
        assert "query" in families
        assert "parse" in families
        assert session.histograms.get("query").count == 1

    def test_reduction_engine_families(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry()
        session.ask("s[acct(alice : balance -C-> B)] << opt", engine="reduction")
        families = session.histograms.families()
        assert "tau-translate" in families
        assert any(f.startswith("evaluate[") for f in families)

    def test_sampling_skips_spans_but_counts_query_latency(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry(sample_rate=0.0, seed=7)
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        # Unsampled: no span tree, but the headline family still observed.
        assert session.last_trace().to_dicts() == []
        assert session.histograms.get("query").count == 1
        assert session.histograms.get("parse") is None

    def test_sampling_rate_one_records_everything(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry(sample_rate=1.0)
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        assert session.last_trace().roots

    def test_sampling_is_seed_reproducible(self):
        def counts(seed):
            session = MultiLogSession(SOURCE, clearance="s")
            session.enable_telemetry(sample_rate=0.5, seed=seed)
            sampled = []
            for _ in range(12):
                session.ask("s[acct(alice : balance -C-> B)] << cau")
                sampled.append(bool(session.last_trace().to_dicts()))
            return sampled

        assert counts(3) == counts(3)

    def test_invalid_sample_rate_rejected(self):
        from repro.errors import MultiLogError

        session = MultiLogSession(SOURCE, clearance="s")
        with pytest.raises(MultiLogError):
            session.enable_telemetry(sample_rate=1.5)

    def test_stats_survive_unsampled_ask(self):
        # The metrics side is never sampled away.
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry(sample_rate=0.0, seed=1)
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        stats = session.last_stats()
        assert stats is not None and stats.asks == 1
        assert stats.total_firings > 0
