"""Answer provenance (PR 5 tentpole): Figure 9-11 proof sketches.

The golden assertions pin provenance for the paper's D1 example
database to the rules and levels its own proof trees use (Figures
9-11): optimistic descent uses DESCEND-O over the believed u-fact,
cautious survival of the local c-cell is DESCEND-C4, and the belief-fed
s-rule stacks DEDUCTION-G' on a nested BELIEF.
"""

import pytest

from repro.errors import MultiLogError
from repro.multilog import MultiLogSession
from repro.obs import AnswerProvenance, provenance
from repro.workloads.d1 import d1_database


@pytest.fixture()
def session():
    return MultiLogSession(d1_database(), clearance="s")


class TestD1Golden:
    def test_optimistic_descent_answer(self, session):
        text = session.explain(query="c[p(k : a -C-> V)] << opt", answer={"C": "u"})
        assert "answer {C=u, V=v}" in text
        assert "rules: BELIEF, TRANSITIVITY, ORDER, DESCEND-O, DEDUCTION-G'" in text
        assert "levels: c, u" in text
        assert "u[p(k : a -u-> v)]" in text          # believed base cell
        assert "(DESCEND-O) opt u[p(k : a -u-> v)] believed at c" in text

    def test_local_optimistic_answer_fires_the_rule(self, session):
        text = session.explain(query="c[p(k : a -C-> V)] << opt", answer={"C": "c"})
        assert "answer {C=c, V=t}" in text
        assert "DEDUCTION-G" in text
        assert "via clauses:" in text
        assert "c[p(k : a -c-> t)] :- q(j)." in text
        assert "(REFLEXIVITY) c <= c" in text

    def test_belief_fed_rule_stacks_descend_c4(self, session):
        text = session.explain(query="s[p(k : a -u-> v)] << fir", answer={})
        assert "answer (ground)" in text
        assert "DESCEND-C4" in text
        assert "(BELIEF) c[p(k : a -c-> t)] << cau" in text
        assert "s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau." in text
        assert text.count("via clause:") == 2        # both rule firings noted
        assert "levels: c, s, u" in text

    def test_provenance_objects_match_render(self, session):
        provs = provenance(session, "c[p(k : a -C-> V)] << opt")
        assert len(provs) == 2
        by_c = {p.answer["C"] for p in provs}
        assert by_c == {"u", "c"}
        for p in provs:
            assert p.rules[0] == "BELIEF"            # Figure 9 root rule
            assert p.render().startswith("answer {")


class TestSessionExplainAnswer:
    def test_defaults_to_last_query(self, session):
        session.ask("c[p(k : a -C-> V)] << opt")
        text = session.explain(answer={"C": "u"})
        assert "DESCEND-O" in text

    def test_no_query_anywhere_is_an_error(self, session):
        with pytest.raises(MultiLogError):
            session.explain(answer={})

    def test_non_answer_lists_the_real_answers(self, session):
        with pytest.raises(MultiLogError) as err:
            session.explain(query="c[p(k : a -C-> V)] << opt",
                            answer={"C": "zz"})
        assert "C" in str(err.value)                 # names the answers seen

    def test_empty_pattern_explains_every_answer(self, session):
        text = session.explain(query="c[p(k : a -C-> V)] << opt", answer={})
        assert text.count("answer {") == 2


class TestAnswerProvenanceUnit:
    def test_matches_string_coercion(self):
        p = AnswerProvenance(answer={"B": 900}, query="", rules=(),
                             levels=(), base_cells=(), clauses=(), tree=None)
        assert p.matches({"B": "900"})
        assert p.matches({})
        assert not p.matches({"B": "901"})
        assert not p.matches({"C": "900"})

    def test_from_proof_collects_in_preorder_without_dups(self, session):
        [(answer, tree)] = [
            (a, t) for a, t in session.proofs("c[p(k : a -C-> V)] << opt")
            if a["C"] == "u"]
        p = AnswerProvenance.from_proof(answer, tree, "q")
        assert p.rules == ("BELIEF", "TRANSITIVITY", "ORDER",
                           "DESCEND-O", "DEDUCTION-G'")
        assert p.levels == ("c", "u")
        assert p.base_cells == ("u[p(k : a -u-> v)]",)
        assert p.query == "q"
