"""Evaluation budgets interrupt runaway evaluations with partial metrics.

The canonical adversarial input is a transitive closure over a long
chain: every strategy derives O(n^2) path facts over O(n) rounds, so a
small row or round cap trips mid-fixpoint.
"""

import pytest

from repro.datalog import evaluate, parse_program
from repro.errors import BudgetExceededError
from repro.multilog import MultiLogSession
from repro.obs import EvaluationBudget, observe, use

STRATEGIES = ("naive", "seminaive", "compiled")


def chain_tc(n: int) -> str:
    facts = " ".join(f"edge({i}, {i + 1})." for i in range(n))
    return facts + " path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z)."


class TestDatalogBudgets:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_row_cap_interrupts(self, strategy):
        program = parse_program(chain_tc(30))
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, strategy, budget=EvaluationBudget(max_derived_rows=50))
        exc = info.value
        assert exc.reason == "rows"
        assert exc.spent["rows"] > 50

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_round_cap_interrupts(self, strategy):
        program = parse_program(chain_tc(30))
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, strategy, budget=EvaluationBudget(max_rounds=3))
        exc = info.value
        assert exc.reason == "rounds"
        assert exc.spent["rounds"] == 4  # failed entering round cap+1

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_timeout_interrupts(self, strategy):
        program = parse_program(chain_tc(60))
        with pytest.raises(BudgetExceededError) as info:
            evaluate(program, strategy, budget=EvaluationBudget(timeout_s=0.0))
        assert info.value.reason == "timeout"
        assert info.value.spent["elapsed_s"] > 0.0

    def test_generous_budget_does_not_interfere(self):
        program = parse_program(chain_tc(10))
        budget = EvaluationBudget(max_derived_rows=10_000, max_rounds=1_000,
                                  timeout_s=60.0)
        db = evaluate(program, budget=budget)
        assert len(db.rows("path")) == 10 * 11 // 2

    def test_partial_metrics_attached_when_collecting(self):
        program = parse_program(chain_tc(30))
        ctx = observe()
        with use(ctx):
            with pytest.raises(BudgetExceededError) as info:
                evaluate(program, budget=EvaluationBudget(max_rounds=2))
        metrics = info.value.metrics
        assert metrics is not None
        assert metrics.total_firings > 0
        assert metrics.spans  # the partial span tree is included

    def test_no_metrics_attached_without_collector(self):
        from repro.obs.context import DISABLED

        program = parse_program(chain_tc(30))
        with use(DISABLED):  # pin: ambient obs (e.g. CI tracing) must not leak in
            with pytest.raises(BudgetExceededError) as info:
                evaluate(program, budget=EvaluationBudget(max_rounds=2))
        assert info.value.metrics is None


SESSION_TC = """
level(u).
edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6).
edge(6, 7). edge(7, 8). edge(8, 9). edge(9, 10). edge(10, 1).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


class TestSessionBudgets:
    @pytest.mark.parametrize("engine", ("operational", "reduction"))
    def test_row_cap_interrupts_both_engines(self, engine):
        session = MultiLogSession(SESSION_TC,
                                  budget=EvaluationBudget(max_derived_rows=10))
        with pytest.raises(BudgetExceededError) as info:
            session.ask("path(1, X)", engine=engine)
        exc = info.value
        assert exc.reason == "rows"
        # The session attaches its cumulative snapshot, marked as exceeded.
        assert exc.metrics is not None
        assert exc.metrics.budget_exceeded == "rows"
        assert session.last_stats() is exc.metrics

    def test_timeout_interrupts_operational(self):
        session = MultiLogSession(SESSION_TC,
                                  budget=EvaluationBudget(timeout_s=0.0))
        with pytest.raises(BudgetExceededError) as info:
            session.ask("path(1, X)")
        assert info.value.reason == "timeout"

    def test_unbudgeted_session_answers(self):
        session = MultiLogSession(SESSION_TC)
        answers = session.ask("path(1, X)")
        assert len(answers) == 10  # full cycle closure

    def test_budget_is_per_ask(self):
        session = MultiLogSession(SESSION_TC,
                                  budget=EvaluationBudget(max_derived_rows=500))
        first = session.ask("path(1, X)")
        # A fresh meter per ask: repeated queries don't accumulate spend.
        for _ in range(3):
            assert session.ask("path(1, X)") == first


class TestCautiousBudget:
    def test_ambient_timeout_reaches_cautious(self):
        from repro.belief.beta import cautious
        from repro.workloads.mission import mission_relation

        relation, _tids = mission_relation()
        with use(observe(budget=EvaluationBudget(timeout_s=0.0))):
            with pytest.raises(BudgetExceededError) as info:
                cautious(relation, "t")
        assert info.value.reason == "timeout"

    def test_ambient_row_cap_reaches_cautious(self):
        from repro.belief.beta import cautious
        from repro.workloads.mission import mission_relation

        relation, _tids = mission_relation()
        with use(observe(budget=EvaluationBudget(max_derived_rows=1))):
            with pytest.raises(BudgetExceededError) as info:
                cautious(relation, "t")
        assert info.value.reason == "rows"
