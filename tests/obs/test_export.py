"""Telemetry exporters: Prometheus text, Chrome trace, JSONL, sinks."""

import json
from pathlib import Path

from repro.multilog import MultiLogSession
from repro.obs import (
    HistogramSet,
    JsonlSpanSink,
    ListSink,
    TraceRecorder,
    chrome_trace_events,
    render_chrome_trace,
    render_jsonl,
    render_prometheus,
    write_trace,
)
from repro.obs.metrics import CacheSnapshot, EngineMetrics

GOLDEN = Path(__file__).with_name("golden_prometheus.txt")

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""


def golden_inputs():
    """Deterministic metrics + histograms (no wall clock, no cache state)."""
    metrics = EngineMetrics(
        asks=3,
        rule_firings={"path(X,Z) :- path(X,Y), edge(Y,Z).": 7,
                      "path(X,Y) :- edge(X,Y).": 2},
        rows_derived={"path(X,Z) :- path(X,Y), edge(Y,Z).": 40,
                      "path(X,Y) :- edge(X,Y).": 5},
        rounds={"stratum[0]": 4, "operational-inner": 9},
        join_probes=55,
        candidate_calls=2,
        batch_probes=6,
        batch_builds=4,
        batch_dedup_rows=12,
        cache={"beta-views": CacheSnapshot(hits=8, misses=2, invalidations=1)},
        budget_exceeded=None,
        degraded="seminaive:fallback",
        retries=2, fallbacks=1, degraded_asks=1, attempt=5, rung="seminaive",
    )
    histograms = HistogramSet(bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.002, 0.05, 5.0):
        histograms.observe("query", value)
    histograms.observe('we"ird\nfam\\ily', 0.003)  # exercises label escaping
    return metrics, histograms


def recorded_forest():
    recorder = TraceRecorder()
    with recorder.span("query", engine="operational") as root:
        with recorder.span("parse"):
            pass
        with recorder.span("stratum[0]", rules=2):
            pass
        root.set(answers=1)
    return recorder


class TestPrometheus:
    def test_golden_file(self):
        metrics, histograms = golden_inputs()
        assert render_prometheus(metrics, histograms) == GOLDEN.read_text()

    def test_every_series_has_help_and_type(self):
        metrics, histograms = golden_inputs()
        lines = render_prometheus(metrics, histograms).splitlines()
        names = set()
        for line in lines:
            if line.startswith("#"):
                _, _, name, *_ = line.split(" ", 3)
                names.add(name)
        for line in lines:
            if line.startswith("#") or not line:
                continue
            metric = line.split("{")[0].split(" ")[0]
            base = metric
            for suffix in ("_bucket", "_sum", "_count"):
                if metric.endswith(suffix):
                    base = metric[: -len(suffix)]
            assert base in names, f"sample {metric} lacks HELP/TYPE"

    def test_bucket_counts_are_cumulative_and_end_at_count(self):
        _, histograms = golden_inputs()
        text = render_prometheus(None, histograms)
        buckets = [int(line.rsplit(" ", 1)[1])
                   for line in text.splitlines()
                   if line.startswith("multilog_span_latency_seconds_bucket"
                                      '{family="query"')]
        assert buckets == sorted(buckets)          # cumulative
        assert buckets[-1] == 5                    # +Inf == _count

    def test_label_escaping(self):
        _, histograms = golden_inputs()
        text = render_prometheus(None, histograms)
        assert 'we\\"ird\\nfam\\\\ily' in text      # "->\" \n->\n \->\\
        # A raw newline inside a label would tear a sample across lines;
        # every non-comment line must still end in a numeric value.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_metrics_only_and_histograms_only(self):
        metrics, histograms = golden_inputs()
        assert "span_latency" not in render_prometheus(metrics, None)
        assert "asks_total" not in render_prometheus(None, histograms)

    def test_session_metrics_text_is_scrapable(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry()
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        text = session.metrics_text()
        assert "multilog_asks_total 1" in text
        assert 'multilog_span_latency_seconds_bucket{family="query"' in text


class TestChromeTrace:
    def test_structurally_valid_perfetto_json(self):
        recorder = recorded_forest()
        document = json.loads(render_chrome_trace(recorder))
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        names = [e["name"] for e in events]
        assert names == ["query", "parse", "stratum[0]"]
        # Children start at or after their parent.
        root = events[0]
        for child in events[1:]:
            assert child["ts"] >= root["ts"]

    def test_attrs_become_args(self):
        events = chrome_trace_events(recorded_forest())
        assert events[0]["args"] == {"engine": "operational", "answers": 1}

    def test_empty_forest(self):
        assert chrome_trace_events(TraceRecorder()) == []


class TestJsonlAndWriteTrace:
    def test_render_jsonl_one_tree_per_line(self):
        recorder = recorded_forest()
        lines = render_jsonl(recorder).splitlines()
        assert len(lines) == 1
        tree = json.loads(lines[0])
        assert tree["name"] == "query"
        assert [c["name"] for c in tree["children"]] == ["parse", "stratum[0]"]

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        recorder = recorded_forest()
        chrome = write_trace(recorder, tmp_path / "t.chrome")
        jsonl = write_trace(recorder, tmp_path / "t.jsonl")
        plain = write_trace(recorder, tmp_path / "t.json")
        assert "traceEvents" in json.loads(chrome.read_text())
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "query"
        assert json.loads(plain.read_text())[0]["name"] == "query"


class TestSinks:
    def test_recorder_streams_roots_only(self):
        sink = ListSink()
        recorder = TraceRecorder(sink=sink)
        with recorder.span("query"):
            with recorder.span("parse"):
                pass
        assert [s.name for s in sink.spans] == ["query"]

    def test_jsonl_sink_appends_and_counts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSpanSink(path) as sink:
            recorder = TraceRecorder(sink=sink)
            for _ in range(3):
                with recorder.span("query"):
                    pass
            assert sink.spans_written == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["name"] == "query" for line in lines)

    def test_rotation_bounds_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSpanSink(path, max_bytes=200, max_files=2)
        recorder = TraceRecorder(sink=sink)
        for index in range(50):
            with recorder.span(f"query-{index}"):
                pass
        sink.close()
        assert sink.rotations > 0
        rotated = sorted(p.name for p in tmp_path.iterdir())
        assert rotated == ["trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"]
        # The newest lines are in the live file, oldest beyond .2 dropped.
        assert path.read_text().strip()

    def test_session_sink_receives_ask_roots(self):
        sink = ListSink()
        session = MultiLogSession(SOURCE, clearance="s")
        session.enable_telemetry(sink=sink)
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        assert [s.name for s in sink.spans] == ["query"]
