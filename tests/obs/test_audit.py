"""The MLS security-audit trail (PR 5 tentpole).

The headline property is the lattice itself: every ``cross_level_read``
the trail records must have ``object <= subject <= clearance`` -- no
read-up, ever, on either engine, including under chaos (fault-injected
retry/fallback runs replaying the PR 4 workloads).
"""

import json
import os

import pytest

from repro.multilog import MultiLogSession
from repro.multilog.extensions import filtered_cells, surprise_cells
from repro.obs import AUDIT_KINDS, AuditEvent, AuditLog, NULL_AUDIT
from repro.resilience import FaultPlan, ResilientExecutor
from repro.workloads.generator import random_multilog_database

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

SOURCE = """
level(u). level(c). level(s). order(u, c). order(c, s).
u[acct(alice : balance -u-> 100)].
c[acct(alice : balance -c-> 500)].
s[acct(alice : balance -s-> 900)].
"""


class TestAuditLog:
    def test_identical_events_dedup_with_count(self):
        log = AuditLog()
        for _ in range(3):
            log.emit("cross_level_read", subject="s", object="u",
                     mode="opt", predicate="acct")
        assert len(log) == 1
        assert log.count(next(iter(log))) == 3
        assert "x3" in log.render()

    def test_order_is_first_occurrence(self):
        log = AuditLog()
        log.emit("cross_level_read", subject="s", object="u")
        log.emit("override", subject="s", object="u")
        log.emit("cross_level_read", subject="s", object="u")
        assert [e.kind for e in log] == ["cross_level_read", "override"]

    def test_unknown_kind_rejected(self):
        log = AuditLog()
        with pytest.raises(ValueError):
            log.emit("made_up_kind", subject="s")

    def test_jsonl_round_trips(self):
        log = AuditLog()
        log.emit("override", subject="s", object="u", mode="cau",
                 predicate="acct", attribute="balance", overriding_cls="s")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "override"
        assert record["attribute"] == "balance"
        assert record["count"] == 1

    def test_null_audit_is_disabled_and_inert(self):
        assert not NULL_AUDIT.enabled
        NULL_AUDIT.emit("cross_level_read", subject="s")  # no-op, no error
        assert len(NULL_AUDIT) == 0

    def test_event_is_hashable_and_frozen(self):
        event = AuditEvent(kind="assert", subject="s")
        assert {event: 1}[event] == 1
        with pytest.raises(AttributeError):
            event.kind = "recover"

    def test_kinds_are_closed(self):
        assert set(AUDIT_KINDS) == {
            "cross_level_read", "override", "filter_suppression",
            "surprise_story", "assert", "recover", "slow_capture"}


class TestSessionAudit:
    def make(self):
        session = MultiLogSession(SOURCE, clearance="s")
        return session, session.enable_audit()

    def test_disabled_by_default(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask("s[acct(alice : balance -C-> B)] << opt")
        assert session.audit_log() is None

    def test_enable_is_idempotent(self):
        session, log = self.make()
        assert session.enable_audit() is log

    def test_optimistic_read_down_is_recorded(self):
        session, log = self.make()
        session.ask("s[acct(alice : balance -C-> B)] << opt")
        reads = log.events("cross_level_read")
        assert {(e.subject, e.object) for e in reads} >= {("s", "u"), ("s", "c")}
        assert all(e.mode == "opt" for e in reads)

    def test_firm_belief_reads_nothing_across_levels(self):
        session, log = self.make()
        session.ask("s[acct(alice : balance -C-> B)] << fir")
        assert not [e for e in log.events("cross_level_read")
                    if e.mode == "fir"]

    def test_cautious_override_is_recorded(self):
        session, log = self.make()
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        overrides = log.events("override")
        assert overrides, "cau at s must override the u and c cells"
        for event in overrides:
            assert event.mode == "cau"
            assert event.detail_dict()["attribute"] == "balance"
            # The overridden cell is strictly below the subject.
            assert session.lattice.leq(event.object, event.subject)
            assert event.object != event.subject

    def test_reduction_engine_audits_via_model_walk(self):
        session, log = self.make()
        session.ask("s[acct(alice : balance -C-> B)] << opt", engine="reduction")
        assert log.events("cross_level_read")

    def test_filter_suppression_and_surprise(self):
        # The docs/OBSERVABILITY.md worked example: the u-observer sees
        # that enterprise exists but not where it goes.
        session = MultiLogSession("""
            level(u). level(s). order(u, s).
            s[mission(enterprise : ship -u-> enterprise;
                      destination -s-> talos)].
        """, clearance="s")
        log = session.enable_audit()
        from repro.obs import ObsContext, use

        with use(ObsContext(audit=log)):  # ambient-context path
            filtered_cells(session.engine, "u")
        suppressions = log.events("filter_suppression")
        assert [(e.subject, e.object, e.detail_dict()["attribute"])
                for e in suppressions] == [("u", "s", "destination")]

        surprise_cells(session.engine, "u", audit=log)  # explicit path
        surprises = log.events("surprise_story")
        assert [(e.subject, e.object, e.detail_dict()["attribute"],
                 e.detail_dict()["shown_level"])
                for e in surprises] == [("u", "s", "destination", "u")]

    def test_assert_is_audited(self):
        session, log = self.make()
        session.assert_clause("u[acct(bob : balance -u-> 7)].")
        events = log.events("assert")
        assert len(events) == 1
        assert events[0].subject == "u"
        assert events[0].predicate == "acct"
        assert "bob" in events[0].detail_dict()["clause"]

    def test_recover_seeds_the_trail(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        first = MultiLogSession("level(u). level(s). order(u, s).",
                                clearance="s", journal=journal)
        first.assert_clause("u[acct(a : name -u-> a)].")
        first.journal.close()
        recovered = MultiLogSession.recover(journal, clearance="s")
        log = recovered.enable_audit()
        events = log.events("recover")
        assert len(events) == 1
        assert events[0].detail_dict()["consistent"] in ("True", "False")

    def test_audit_survives_beta_cache_hits(self):
        # The second identical ask serves beta from the memo; the audit
        # trail must still witness the access (dedup'd, count bumped).
        session, log = self.make()
        session.ask("s[acct(alice : balance -C-> B)] << opt")
        first = {event: log.count(event) for event in log.events("cross_level_read")}
        session.ask("s[acct(alice : balance -C-> B)] << opt")
        for event, count in first.items():
            assert log.count(event) >= count


# ---------------------------------------------------------------------------
# The lattice property under chaos: replay the PR 4 chaos workloads with
# audit enabled and check no recorded read ever violates no-read-up.

CHAOS_WORKLOADS = [
    (n_tuples, belief_rules, CHAOS_SEED * 100 + seed)
    for n_tuples, belief_rules in ((4, 1), (6, 2), (8, 3))
    for seed in range(2)
]


@pytest.mark.parametrize("n_tuples,belief_rules,seed", CHAOS_WORKLOADS)
def test_chaos_audit_respects_the_lattice(n_tuples, belief_rules, seed):
    query = "t[p(K : a1 -C-> V)] << cau"
    for engine in ("operational", "reduction"):
        for point in ("query", "tau-translate", "fixpoint"):
            db = random_multilog_database(
                n_tuples, belief_rules=belief_rules, seed=seed)
            session = MultiLogSession(db, clearance="t")
            log = session.enable_audit()
            plan = FaultPlan(seed=CHAOS_SEED)
            plan.arm(point, error="transient")
            session.arm_faults(plan)
            ResilientExecutor().ask(session, query, engine=engine)
            lattice = session.lattice
            for event in log.events("cross_level_read"):
                assert lattice.leq(event.object, event.subject), (
                    f"{engine}/{point}: read-up recorded: {event.render()}")
                assert lattice.leq(event.subject, session.clearance), (
                    f"{engine}/{point}: subject above clearance: {event.render()}")
            for event in log.events("override"):
                assert lattice.leq(event.object, event.subject)
