"""Thread isolation of the ambient observation context (satellite).

The whole ambient design rests on :class:`contextvars.ContextVar`
semantics: installs are scoped to the calling context, fresh threads
start from the default (disabled) context, and two threads tracing
concurrently can never write into each other's recorders.
"""

import threading

from repro.multilog import MultiLogSession
from repro.obs import DISABLED, ObsContext, TraceRecorder, current, observe, use

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""


def run_threads(n, work):
    """Run ``work(index)`` in n threads through a start barrier; re-raise."""
    barrier = threading.Barrier(n)
    errors = []

    def body(index):
        try:
            barrier.wait(timeout=10)
            work(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if errors:
        raise errors[0]


class TestAmbientIsolation:
    def test_recorders_do_not_cross_threads(self):
        recorders = {}

        def work(index):
            ctx = observe()
            recorders[index] = ctx.recorder
            with use(ctx):
                for round_no in range(20):
                    with ctx.recorder.span(f"thread-{index}", round=round_no):
                        assert current() is ctx
                        with current().recorder.span("inner"):
                            pass

        run_threads(8, work)
        for index, recorder in recorders.items():
            names = {root.name for root in recorder.roots}
            assert names == {f"thread-{index}"}
            assert len(recorder.roots) == 20
            assert all(root.children[0].name == "inner"
                       for root in recorder.roots)

    def test_new_threads_start_disabled(self):
        seen = []

        with use(observe()):
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join(timeout=10)
        assert seen == [DISABLED]

    def test_use_restores_on_exit_even_nested(self):
        outer, inner = observe(), observe()
        with use(outer):
            with use(inner):
                assert current() is inner
            assert current() is outer
        assert current().recorder is not outer.recorder


class TestConcurrentSessions:
    def test_sessions_trace_independently(self):
        sessions = [MultiLogSession(SOURCE, clearance="s") for _ in range(6)]
        for index, session in enumerate(sessions):
            session.enable_telemetry()

        def work(index):
            for _ in range(3):
                answers = sessions[index].ask(
                    "s[acct(alice : balance -C-> B)] << cau")
                assert answers

        run_threads(len(sessions), work)
        for session in sessions:
            # Each session saw exactly its own three asks.
            assert session.histograms.get("query").count == 3
            roots = session.last_trace().roots
            assert [root.name for root in roots] == ["query"]

    def test_audit_trails_stay_per_session(self):
        sessions = [MultiLogSession(SOURCE, clearance="s") for _ in range(4)]
        logs = [session.enable_audit() for session in sessions]

        def work(index):
            sessions[index].ask("s[acct(alice : balance -C-> B)] << opt")

        run_threads(len(sessions), work)
        for log in logs:
            reads = log.events("cross_level_read")
            assert {(e.subject, e.object) for e in reads} == {("s", "u")}


class TestSamplingPerContext:
    def test_sample_draw_decides_at_construction(self):
        kept = ObsContext(TraceRecorder(), sample_rate=0.5, sample_draw=0.4)
        dropped = ObsContext(TraceRecorder(), sample_rate=0.5, sample_draw=0.6)
        assert kept.sampled and not dropped.sampled
        with dropped.recorder.span("query"):
            pass
        assert dropped.recorder.to_dicts() == []     # swapped for the null

    def test_threaded_sampled_sessions_do_not_share_rng_state(self):
        # Two sessions with the same seed must make identical decisions
        # even when their asks interleave on different threads.
        def decisions(session):
            out = []
            for _ in range(10):
                session.ask("s[acct(alice : balance -C-> B)] << cau")
                out.append(bool(session.last_trace().to_dicts()))
            return out

        sessions = [MultiLogSession(SOURCE, clearance="s") for _ in range(2)]
        for session in sessions:
            session.enable_telemetry(sample_rate=0.5, seed=42)
        results = {}

        def work(index):
            results[index] = decisions(sessions[index])

        run_threads(2, work)
        assert results[0] == results[1]
        assert True in results[0] and False in results[0]
