"""Metrics snapshots: ``last_stats()``, the ambient context and EXPLAIN."""

import json

from repro.datalog import evaluate, parse_program
from repro.multilog import MultiLogSession
from repro.obs import (
    NULL_METRICS,
    MetricsCollector,
    explain_program,
    observe,
    use,
)

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
u[acct(bob : balance -u-> 55)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"


class TestSessionStats:
    def test_no_stats_before_first_ask(self):
        session = MultiLogSession(SOURCE, clearance="s")
        assert session.last_stats() is None
        assert session.last_trace() is None

    def test_last_stats_populated_after_operational_ask(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY)
        stats = session.last_stats()
        assert stats.asks == 1
        assert stats.total_firings > 0
        assert stats.rounds.get("operational-inner", 0) >= 1
        assert stats.spans and stats.spans[0]["name"] == "query"
        assert "beta-views" in stats.cache or "tau-translations" in stats.cache

    def test_last_stats_populated_after_reduction_ask(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY, engine="reduction")
        stats = session.last_stats()
        assert stats.join_probes > 0
        assert any(scope.startswith("stratum[") for scope in stats.rounds)
        # The reduction's spans include the translation and the fixpoint.
        names = json.dumps(list(stats.spans))
        assert "tau-translate" in names and "evaluate" in names

    def test_counters_are_cumulative_across_asks(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY)
        first = session.last_stats()
        session.ask(QUERY)
        second = session.last_stats()
        assert second.asks == 2
        assert second.total_firings >= first.total_firings

    def test_cached_ask_still_snapshots(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY, engine="reduction")
        session.ask(QUERY, engine="reduction")  # cache-hit ask
        stats = session.last_stats()
        assert stats.asks == 2
        assert stats.spans  # fresh trace even when the model was cached

    def test_summary_and_json_render(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY)
        stats = session.last_stats()
        summary = stats.summary()
        assert "asks: 1" in summary and "rule firings" in summary
        assert json.loads(stats.to_json())["asks"] == 1

    def test_traces_are_per_ask(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY)
        first = session.last_trace()
        session.ask(QUERY)
        assert session.last_trace() is not first


class TestAmbientContext:
    def test_evaluate_reports_into_installed_context(self):
        program = parse_program(
            "edge(a, b). edge(b, c). path(X, Y) :- edge(X, Y). "
            "path(X, Z) :- path(X, Y), edge(Y, Z)."
        )
        ctx = observe()
        with use(ctx):
            evaluate(program)
        metrics = ctx.metrics.snapshot(ctx.recorder)
        assert metrics.total_firings > 0
        assert metrics.join_probes > 0
        assert ctx.recorder.find("evaluate") and ctx.recorder.find("stratify")
        assert ctx.recorder.find("stratum[0]")

    def test_default_context_is_disabled(self):
        import contextvars

        from repro.obs.context import current

        # Run in a fresh contextvars context: the *default* must be the
        # disabled null context even when the surrounding test process
        # (e.g. the CI trace-artifact plugin) observes ambiently.
        def probe():
            ctx = current()
            return ctx.enabled, ctx.metrics

        enabled, metrics = contextvars.Context().run(probe)
        assert not enabled
        assert metrics is NULL_METRICS

    def test_collector_reset(self):
        collector = MetricsCollector()
        collector.rule_fired("r", 3)
        collector.add_probes(5)
        collector.reset()
        assert collector.snapshot().total_firings == 0
        assert collector.snapshot().join_probes == 0


class TestExplain:
    def test_explain_program_lists_access_paths(self):
        program = parse_program(
            "edge(a, b). edge(b, c). path(X, Y) :- edge(X, Y). "
            "path(X, Z) :- path(X, Y), edge(Y, Z)."
        )
        text = explain_program(program)
        assert "stratum[0]" in text
        assert "index probe" in text
        assert "full scan" in text
        assert "delta-specialized variants: path" in text

    def test_explain_renders_guards_and_anti_joins(self):
        program = parse_program(
            "n(1). n(2). m(1). small(X) :- n(X), not m(X), X < 2."
        )
        text = explain_program(program)
        assert "anti-join" in text
        assert "guard" in text

    def test_session_explain_covers_the_reduction(self):
        session = MultiLogSession(SOURCE, clearance="s")
        text = session.explain()
        assert "plan for" in text
        assert "dominate" in text
