"""Span trees: nesting, attributes, JSON dumps and the null path."""

import json

from repro.obs import NULL_RECORDER, NULL_SPAN, TraceRecorder


class TestTraceRecorder:
    def test_spans_nest_into_a_tree(self):
        recorder = TraceRecorder()
        with recorder.span("evaluate") as outer:
            with recorder.span("stratify"):
                pass
            with recorder.span("stratum[0]") as stratum:
                with recorder.span("round[1]"):
                    pass
        assert [root.name for root in recorder.roots] == ["evaluate"]
        assert [c.name for c in outer.children] == ["stratify", "stratum[0]"]
        assert [c.name for c in stratum.children] == ["round[1]"]

    def test_sibling_roots_form_a_forest(self):
        recorder = TraceRecorder()
        with recorder.span("first"):
            pass
        with recorder.span("second"):
            pass
        assert [root.name for root in recorder.roots] == ["first", "second"]

    def test_attributes_via_kwargs_and_set(self):
        recorder = TraceRecorder()
        with recorder.span("stratum[0]", rules=3) as span:
            span.set(delta=17, facts=40)
        assert span.attrs == {"rules": 3, "delta": 17, "facts": 40}

    def test_elapsed_is_recorded(self):
        recorder = TraceRecorder()
        with recorder.span("work"):
            sum(range(1000))
        assert recorder.roots[0].elapsed_s > 0.0

    def test_find_searches_the_whole_forest(self):
        recorder = TraceRecorder()
        with recorder.span("a"):
            with recorder.span("round[1]"):
                pass
            with recorder.span("round[2]"):
                pass
        with recorder.span("round[1]"):
            pass
        assert len(recorder.find("round[1]")) == 2

    def test_to_json_round_trips(self):
        recorder = TraceRecorder()
        with recorder.span("evaluate", strategy="compiled"):
            with recorder.span("stratify") as inner:
                inner.set(strata=2)
        parsed = json.loads(recorder.to_json())
        assert parsed[0]["name"] == "evaluate"
        assert parsed[0]["attrs"] == {"strategy": "compiled"}
        assert parsed[0]["children"][0]["attrs"] == {"strata": 2}

    def test_pretty_renders_every_level(self):
        recorder = TraceRecorder()
        with recorder.span("query", engine="reduction"):
            with recorder.span("parse"):
                pass
        text = recorder.pretty()
        assert "query" in text and "parse" in text and "engine=reduction" in text

    def test_exception_unwinds_open_spans(self):
        recorder = TraceRecorder()
        try:
            with recorder.span("outer"):
                with recorder.span("inner"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert recorder._stack == []
        with recorder.span("after"):
            pass
        # A span opened after the unwind is a new root, not a child.
        assert [root.name for root in recorder.roots] == ["outer", "after"]


class TestNullRecorder:
    def test_span_returns_the_shared_singleton(self):
        assert NULL_RECORDER.span("anything") is NULL_SPAN
        assert NULL_RECORDER.span("other", rows=3) is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_RECORDER.span("x") as span:
            assert span.set(rows=1) is span
        assert NULL_RECORDER.to_dicts() == []
        assert NULL_RECORDER.to_json() == "[]"
        assert NULL_RECORDER.pretty() == ""
        assert not NULL_RECORDER.enabled
