"""Tracing must be observation-only: traced and untraced runs agree.

25 programs (random chains/trees/graphs plus negation and built-in
corner cases) evaluated twice per strategy -- once under a fully enabled
observation context, once untraced -- must produce byte-identical least
models, and the traced run must actually have recorded spans.
"""

import pytest

from repro.datalog import evaluate, parse_program
from repro.obs import observe, use
from repro.workloads.generator import random_datalog_program

STRATEGIES = ("naive", "seminaive", "compiled")


def full_model(db):
    return {p: db.rows(p) for p in db.predicates()}


CORNER_PROGRAMS = [
    "q(a, a). q(a, b). same(X) :- q(X, X).",
    "flag. p(a). gated(X) :- flag, p(X).",
    """
    node(a). node(b). node(c). edge(a, b).
    linked(X) :- edge(X, Y).
    linked(Y) :- edge(X, Y).
    isolated(X) :- node(X), not linked(X).
    """,
    "n(1). n(2). n(3). small(X) :- n(X), X < 3.",
    """
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), path(Z, Y).
    """,
    """
    base(1). succ(1, 2). succ(2, 3). succ(3, 4).
    even(1) :- base(1).
    odd(Y) :- even(X), succ(X, Y).
    even(Y) :- odd(X), succ(X, Y).
    """,
    """
    base(a). base(b). mark(a).
    unmarked(X) :- base(X), not mark(X).
    remarked(X) :- base(X), not unmarked(X).
    """,
]

# 18 random + 7 corner = 25 programs.
PROGRAMS = [
    random_datalog_program(6 + (seed % 9), shape, seed=seed)
    for shape in ("chain", "tree", "random")
    for seed in range(6)
] + CORNER_PROGRAMS

assert len(PROGRAMS) == 25


@pytest.mark.parametrize("index", range(len(PROGRAMS)))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_traced_model_is_identical(index, strategy):
    text = PROGRAMS[index]
    untraced = full_model(evaluate(parse_program(text), strategy))
    ctx = observe()
    with use(ctx):
        traced = full_model(evaluate(parse_program(text), strategy))
    assert traced == untraced
    assert ctx.recorder.find("evaluate")


def test_trace_records_rule_and_round_structure():
    text = (
        "edge(a, b). edge(b, c). edge(c, d). "
        "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z)."
    )
    ctx = observe()
    with use(ctx):
        evaluate(parse_program(text))
    (evaluate_span,) = ctx.recorder.find("evaluate")
    (stratum,) = ctx.recorder.find("stratum[0]")
    assert stratum in evaluate_span.children
    assert ctx.recorder.find("rule-fire")
    assert ctx.recorder.find("round[1]")
