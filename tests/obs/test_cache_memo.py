"""VersionedMemo eviction: stale entries go, current siblings stay.

Regression for the over-invalidation bug: a stale lookup used to clear
*every* entry for the owner, including siblings recomputed after the
mutation -- so one cold key repeatedly evicted warm ones.
"""

from repro.cache import VersionedMemo


class Owner:
    """A stand-in mutable store with a version counter."""


class TestVersionedMemo:
    def test_hit_and_miss_counting(self):
        memo = VersionedMemo("test-hits")
        owner = Owner()
        assert memo.get_or_compute(owner, 1, "a", lambda: "A1") == "A1"
        assert memo.get_or_compute(owner, 1, "a", lambda: "XX") == "A1"
        assert memo.stats.misses == 1
        assert memo.stats.hits == 1

    def test_stale_lookup_keeps_current_siblings(self):
        memo = VersionedMemo("test-eviction")
        owner = Owner()
        sentinel = object()
        memo.get_or_compute(owner, 1, "b", lambda: "B1")   # b stamped @1
        memo.get_or_compute(owner, 2, "a", lambda: sentinel)  # a stamped @2
        # Looking up the stale b at version 2 must evict only b.
        assert memo.get_or_compute(owner, 2, "b", lambda: "B2") == "B2"
        assert memo.stats.invalidations == 1
        # The sibling computed at the current version survived: a hit, not
        # a recompute.
        hits_before = memo.stats.hits
        assert memo.get_or_compute(owner, 2, "a", lambda: "LOST") is sentinel
        assert memo.stats.hits == hits_before + 1
        assert memo.entries_for(owner) == 2

    def test_stale_lookup_evicts_all_outdated_entries(self):
        memo = VersionedMemo("test-bulk-eviction")
        owner = Owner()
        memo.get_or_compute(owner, 1, "a", lambda: "A1")
        memo.get_or_compute(owner, 1, "b", lambda: "B1")
        memo.get_or_compute(owner, 1, "c", lambda: "C1")
        assert memo.get_or_compute(owner, 3, "a", lambda: "A3") == "A3"
        # All three version-1 entries were stale; only the fresh one lives.
        assert memo.stats.invalidations == 3
        assert memo.entries_for(owner) == 1

    def test_owners_are_independent(self):
        memo = VersionedMemo("test-owners")
        first, second = Owner(), Owner()
        memo.get_or_compute(first, 1, "k", lambda: "one")
        memo.get_or_compute(second, 9, "k", lambda: "two")
        assert memo.get_or_compute(first, 1, "k", lambda: "X") == "one"
        assert memo.get_or_compute(second, 9, "k", lambda: "X") == "two"

    def test_dropping_the_owner_drops_its_entries(self):
        memo = VersionedMemo("test-weak")
        owner = Owner()
        memo.get_or_compute(owner, 1, "k", lambda: "v")
        assert memo.entries_for(owner) == 1
        del owner
        import gc

        gc.collect()
        assert len(memo._store) == 0
