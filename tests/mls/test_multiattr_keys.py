"""Section 7: multi-attribute apparent keys at the relational layer.

The paper assumes single-attribute keys "for the sake of simplicity" and
notes the restriction "can be relaxed in an actual implementation without
much difficulty" -- the MLS substrate does relax it: schemes, integrity,
views, updates and beta all work with composite keys.
"""

import pytest

from repro.belief import cautious, firm, optimistic
from repro.mls import (
    MLSRelation,
    MLSchema,
    SessionCursor,
    check_entity_integrity,
    is_consistent,
    view_at,
)


@pytest.fixture()
def flights(ucst):
    schema = MLSchema(
        "flights", ["carrier", "number", "route"],
        key=["carrier", "number"], lattice=ucst,
    )
    relation = MLSRelation(schema)
    at_u = SessionCursor(relation, "u")
    at_s = SessionCursor(relation, "s")
    at_u.insert({"carrier": "ua", "number": 1, "route": "jfk-lax"})
    at_u.insert({"carrier": "ba", "number": 1, "route": "lhr-jfk"})
    at_s.update({"carrier": "ua", "number": 1}, {"route": "jfk-area51"})
    return relation


class TestCompositeKeys:
    def test_same_number_different_carrier_coexist(self, flights):
        assert len(flights.with_key("ua", 1)) == 2  # base + polyinstantiated
        assert len(flights.with_key("ba", 1)) == 1

    def test_consistency_holds(self, flights):
        assert is_consistent(flights)

    def test_key_uniformity_enforced_across_all_key_attributes(self, ucst):
        from repro.mls import Cell, MLSTuple
        schema = MLSchema("r", ["k1", "k2", "a"], key=["k1", "k2"], lattice=ucst)
        bad = MLSTuple(schema, {"k1": Cell("x", "u"), "k2": Cell("y", "c"),
                                "a": Cell("1", "c")})
        violations = check_entity_integrity(MLSRelation(schema, [bad]))
        assert violations

    def test_view_masks_by_composite_key_class(self, flights):
        view = view_at(flights, "u")
        ua = view.with_key("ua", 1)
        # the polyinstantiated S route filters to null; the base survives
        routes = {t.value("route") for t in ua}
        assert "jfk-lax" in routes

    def test_firm_and_optimistic(self, flights):
        assert len(firm(flights, "s")) == 1
        assert len(optimistic(flights, "s")) == 3

    def test_cautious_overrides_per_composite_key(self, flights):
        believed = cautious(flights, "s")
        ua = believed.with_key("ua", 1).tuples
        assert len(ua) == 1
        assert ua[0].value("route") == "jfk-area51"
        ba = believed.with_key("ba", 1).tuples
        assert ba[0].value("route") == "lhr-jfk"

    def test_update_targets_full_key(self, flights):
        at_s = SessionCursor(flights, "s")
        results = at_s.update({"carrier": "ba", "number": 1},
                              {"route": "lhr-gib"})
        assert len(results) == 1
        assert results[0].key_values() == ("ba", 1)

    def test_delete_by_full_key(self, flights):
        at_u = SessionCursor(flights, "u")
        at_u.delete({"carrier": "ba", "number": 1})
        assert len(flights.with_key("ba", 1)) == 0
        assert len(flights.with_key("ua", 1)) == 2
