"""Property tests: random update histories preserve MLS integrity.

The paper's t4/t5 surprise stories arise from legal insert/update/delete
sequences; these tests generate arbitrary such sequences and check that
(a) the three core integrity properties survive every step, and (b) the
Bell-LaPadula surfaces never leak.
"""

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLSError
from repro.lattice import chain, diamond
from repro.mls import MLSRelation, MLSchema, SessionCursor, check_relation, view_at
from repro.belief import belief


@st.composite
def histories(draw):
    """A random sequence of (level, op, key, payload) actions."""
    shape = draw(st.sampled_from(["chain", "diamond"]))
    lattice = chain(["u", "c", "s", "t"]) if shape == "chain" else diamond()
    levels = sorted(lattice.levels)
    n_actions = draw(st.integers(min_value=1, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random_module.Random(seed)
    actions = []
    for _ in range(n_actions):
        op = rng.choice(["insert", "insert", "update", "update", "delete"])
        actions.append((
            rng.choice(levels),
            op,
            f"k{rng.randrange(5)}",
            f"v{rng.randrange(8)}",
        ))
    return lattice, actions


def _apply(relation, lattice, actions):
    applied = 0
    for level, op, key, payload in actions:
        cursor = SessionCursor(relation, level)
        try:
            if op == "insert":
                cursor.insert({"k": key, "a": payload, "b": payload + "x"})
            elif op == "update":
                cursor.update({"k": key}, {"a": payload})
            else:
                cursor.delete({"k": key})
            applied += 1
        except MLSError:
            continue  # rejected operations are fine; silent corruption is not
    return applied


@given(histories())
@settings(max_examples=60, deadline=None)
def test_integrity_survives_any_history(bundle):
    lattice, actions = bundle
    schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=lattice)
    relation = MLSRelation(schema)
    _apply(relation, lattice, actions)
    assert check_relation(relation) == []


@given(histories())
@settings(max_examples=40, deadline=None)
def test_integrity_holds_after_every_single_step(bundle):
    lattice, actions = bundle
    schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=lattice)
    relation = MLSRelation(schema)
    for action in actions:
        _apply(relation, lattice, [action])
        assert check_relation(relation) == []


@given(histories(), st.data())
@settings(max_examples=40, deadline=None)
def test_views_never_leak_high_data(bundle, data):
    """No value classified above the observer ever appears in a view or a
    belief, whatever the history."""
    lattice, actions = bundle
    schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=lattice)
    relation = MLSRelation(schema)
    _apply(relation, lattice, actions)
    observer = data.draw(st.sampled_from(sorted(lattice.levels)))
    high_values = {
        cell.value for t in relation for cell in t.cells
        if not lattice.leq(cell.cls, observer)
    }
    low_values = {
        cell.value for t in relation for cell in t.cells
        if lattice.leq(cell.cls, observer)
    }
    secret = high_values - low_values  # values with no low occurrence
    for source in [view_at(relation, observer),
                   belief(relation, observer, "fir"),
                   belief(relation, observer, "opt"),
                   belief(relation, observer, "cau")]:
        for t in source:
            for cell in t.cells:
                assert cell.value not in secret


@given(histories())
@settings(max_examples=40, deadline=None)
def test_updates_only_grow_or_shrink_at_own_level(bundle):
    """A delete at level l removes only TC=l tuples; an update never
    destroys data below the updater (required polyinstantiation)."""
    lattice, actions = bundle
    schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=lattice)
    relation = MLSRelation(schema)
    for level, op, key, payload in actions:
        strictly_other = {t for t in relation if t.tc != level}
        cursor = SessionCursor(relation, level)
        try:
            if op == "insert":
                cursor.insert({"k": key, "a": payload, "b": payload + "x"})
            elif op == "update":
                cursor.update({"k": key}, {"a": payload})
            else:
                cursor.delete({"k": key})
        except MLSError:
            continue
        after = set(relation)
        # tuples stored at other levels are never removed
        assert strictly_other <= after
