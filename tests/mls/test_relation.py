"""Unit tests for MLS relation instances."""

import pytest

from repro.errors import SchemaError
from repro.mls import MLSRelation, MLSTuple, MLSchema


@pytest.fixture()
def small(ucst):
    schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
    relation = MLSRelation(schema)
    relation.row([("x", "u"), ("1", "u")], tc="u")
    relation.row([("x", "u"), ("2", "s")], tc="s")
    relation.row([("y", "c"), ("3", "c")], tc="c")
    return relation


class TestContainer:
    def test_len_and_iter(self, small):
        assert len(small) == 3
        assert len(list(small)) == 3

    def test_duplicates_collapse(self, small):
        t = small.tuples[0]
        small.add(t)
        assert len(small) == 3

    def test_contains(self, small):
        assert small.tuples[0] in small

    def test_remove(self, small):
        t = small.tuples[0]
        small.remove(t)
        assert t not in small
        with pytest.raises(ValueError):
            small.remove(t)

    def test_copy_is_independent(self, small):
        clone = small.copy()
        clone.remove(clone.tuples[0])
        assert len(small) == 3
        assert len(clone) == 2

    def test_equality_is_set_based(self, small):
        reordered = MLSRelation(small.schema, reversed(small.tuples))
        assert reordered == small

    def test_schema_mismatch_rejected(self, small, ucst):
        other_schema = MLSchema("other", ["k", "a"], key="k", lattice=ucst)
        alien = MLSTuple.make(other_schema, {"k": "x", "a": "1"}, "u")
        with pytest.raises(SchemaError):
            small.add(alien)


class TestQueries:
    def test_where(self, small):
        assert len(small.where(k="x")) == 2

    def test_where_unknown_attribute(self, small):
        with pytest.raises(SchemaError):
            small.where(bogus=1)

    def test_select_predicate(self, small):
        high = small.select(lambda t: t.tc == "s")
        assert len(high) == 1

    def test_project_values_dedup(self, small):
        assert small.project_values(["k"]) == [("x",), ("y",)]

    def test_project_preserves_order(self, small):
        assert small.project_values(["k", "a"])[0] == ("x", "1")

    def test_with_key(self, small):
        assert len(small.with_key("x")) == 2
        with pytest.raises(SchemaError):
            small.with_key("x", "extra")

    def test_keys(self, small):
        assert small.keys() == [("x",), ("y",)]

    def test_tuple_classes(self, small):
        assert small.tuple_classes() == {"u", "s", "c"}

    def test_has_nulls(self, small, ucst):
        assert not small.has_nulls()
        schema = small.schema
        small.add(MLSTuple.make(schema, {"k": "z"}, "u"))
        assert small.has_nulls()


class TestMissionFixture:
    def test_ten_tuples(self, mission_rel):
        assert len(mission_rel) == 10

    def test_phantom_polyinstantiated(self, mission_rel):
        phantoms = mission_rel.with_key("phantom")
        assert len(phantoms) == 2
        assert {t.key_classification() for t in phantoms} == {"u", "c"}

    def test_atlantis_tuple_class_polyinstantiation(self, mission_rel):
        atlantis = mission_rel.with_key("atlantis")
        assert {t.tc for t in atlantis} == {"u", "c", "s"}
        cells = {t.cells for t in atlantis}
        assert len(cells) == 1  # identical data, three assertions
