"""Property tests on the Jajodia-Sandhu view machinery (Definition 2.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mls import NULL, mask_tuple, subsumes, view_at
from repro.workloads.generator import make_lattice, random_mls_relation


@st.composite
def relations(draw):
    shape = draw(st.sampled_from(["chain", "diamond", "random"]))
    seed = draw(st.integers(min_value=0, max_value=4_000))
    lattice = make_lattice(shape, n_levels=draw(st.integers(2, 5)), seed=seed)
    return random_mls_relation(
        draw(st.integers(min_value=0, max_value=20)), lattice,
        polyinstantiation_rate=draw(st.floats(min_value=0.0, max_value=0.7)),
        seed=seed)


def visible_values(relation, level):
    """Non-null data values an observer at ``level`` can extract."""
    return {
        cell.value for t in view_at(relation, level, apply_subsumption=False)
        for cell in t.cells if cell.value is not NULL
    }


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_masking_never_reveals_high_cells(relation, data):
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    for t in view_at(relation, level, apply_subsumption=False):
        for attr in relation.schema.attributes:
            cell = t.cell(attr)
            if cell.value is not NULL:
                assert lattice.leq(cell.cls, level)


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_visible_information_monotone_in_level(relation, data):
    lattice = relation.schema.lattice
    low = data.draw(st.sampled_from(sorted(lattice.levels)))
    high = data.draw(st.sampled_from(sorted(lattice.up_set(low))))
    assert visible_values(relation, low) <= visible_values(relation, high)


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_masking_idempotent(relation, data):
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    for t in relation:
        once = mask_tuple(t, level)
        if once is None:
            continue
        twice = mask_tuple(once, level)
        assert twice == once


@given(relations(), st.data())
@settings(max_examples=40, deadline=None)
def test_subsumption_reflexive_and_transitive(relation, data):
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    masked = [mask_tuple(t, level) for t in relation]
    masked = [t for t in masked if t is not None]
    for t in masked:
        assert subsumes(t, t)
    for a in masked[:6]:
        for b in masked[:6]:
            for c in masked[:6]:
                if subsumes(a, b) and subsumes(b, c):
                    assert subsumes(a, c)


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_subsumption_minimization_loses_no_information(relation, data):
    """Every cell value visible before minimization survives in some
    subsuming tuple afterwards."""
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    raw = view_at(relation, level, apply_subsumption=False)
    minimal = view_at(relation, level, apply_subsumption=True)
    raw_cells = {
        (t.key_values(), attr, t.cell(attr))
        for t in raw for attr in relation.schema.attributes
        if t.cell(attr).value is not NULL
    }
    minimal_cells = {
        (t.key_values(), attr, t.cell(attr))
        for t in minimal for attr in relation.schema.attributes
        if t.cell(attr).value is not NULL
    }
    assert raw_cells == minimal_cells


@given(relations())
@settings(max_examples=40, deadline=None)
def test_unique_top_view_without_subsumption_is_everything(relation):
    """A unique top dominates every level, so nothing filters there.

    (With multiple incomparable tops, each top misses the others' data.)
    """
    lattice = relation.schema.lattice
    tops = lattice.tops()
    if len(tops) != 1:
        return
    view = view_at(relation, next(iter(tops)), apply_subsumption=False)
    assert set(view) == set(relation)
