"""Unit tests for MLS schemes and classified tuples."""

import pytest

from repro.errors import SchemaError
from repro.lattice import diamond
from repro.mls import NULL, Cell, MLSTuple, MLSchema, is_null


class TestSchema:
    def test_basic_construction(self, ucst):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        assert schema.key == ("k",)
        assert schema.non_key_attributes == ("a",)

    def test_multi_attribute_key(self, ucst):
        schema = MLSchema("r", ["k1", "k2", "a"], key=["k1", "k2"], lattice=ucst)
        assert schema.key == ("k1", "k2")
        assert schema.is_key("k2")

    def test_duplicate_attributes_rejected(self, ucst):
        with pytest.raises(SchemaError):
            MLSchema("r", ["a", "a"], key="a", lattice=ucst)

    def test_key_must_be_attribute(self, ucst):
        with pytest.raises(SchemaError):
            MLSchema("r", ["a"], key="zz", lattice=ucst)

    def test_empty_attributes_rejected(self, ucst):
        with pytest.raises(SchemaError):
            MLSchema("r", [], key="a", lattice=ucst)

    def test_position_lookup(self, schema):
        assert schema.position("objective") == 1
        with pytest.raises(SchemaError):
            schema.position("nope")

    def test_column_names_shape(self, schema):
        columns = schema.column_names()
        assert columns[0] == "starship"
        assert columns[1] == "C_starship"
        assert columns[-1] == "TC"
        assert len(columns) == 2 * 3 + 1

    def test_ranges_validated(self, ucst):
        with pytest.raises(SchemaError):
            MLSchema("r", ["k"], key="k", lattice=ucst, ranges={"k": ("s", "u")})
        schema = MLSchema("r", ["k"], key="k", lattice=ucst, ranges={"k": ("u", "s")})
        schema.check_classification("k", "c")
        with pytest.raises(SchemaError):
            schema.check_classification("k", "t")

    def test_range_for_unknown_attribute_rejected(self, ucst):
        with pytest.raises(SchemaError):
            MLSchema("r", ["k"], key="k", lattice=ucst, ranges={"zz": ("u", "s")})


class TestNull:
    def test_singleton(self):
        assert NULL is type(NULL)()

    def test_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null("null")

    def test_str(self):
        assert str(NULL) == "⊥"


class TestTuple:
    def test_make_uniform_classification(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "u")
        assert t.tc == "u"
        assert t.cls("objective") == "u"

    def test_tc_defaults_to_lub(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"},
                          {"starship": "u", "objective": "s", "destination": "u"})
        assert t.tc == "s"

    def test_explicit_tc_must_dominate(self, schema):
        with pytest.raises(SchemaError):
            MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "s", tc="u")

    def test_tc_above_lub_is_legal(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "u", tc="s")
        assert t.tc == "s"

    def test_missing_cells_rejected(self, schema):
        with pytest.raises(SchemaError):
            MLSTuple(schema, {"starship": Cell("x", "u")})

    def test_unknown_attribute_rejected(self, schema):
        cells = {a: Cell("x", "u") for a in schema.attributes}
        cells["bogus"] = Cell("y", "u")
        with pytest.raises(SchemaError):
            MLSTuple(schema, cells)

    def test_wrong_arity_list_rejected(self, schema):
        with pytest.raises(SchemaError):
            MLSTuple(schema, [Cell("x", "u")])

    def test_unknown_classification_rejected(self, schema):
        from repro.errors import UnknownLevelError
        with pytest.raises(UnknownLevelError):
            MLSTuple.make(schema, {"starship": "x"}, "zz")

    def test_key_accessors(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "c")
        assert t.key_values() == ("x",)
        assert t.key_classification() == "c"

    def test_as_row_layout(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "u")
        row = t.as_row()
        assert row == ("x", "u", "y", "u", "z", "u", "u")

    def test_replace_cells(self, schema):
        t = MLSTuple.make(schema, {"starship": "x", "objective": "y",
                                   "destination": "z"}, "u")
        t2 = t.replace(cells={"objective": Cell("w", "s")}, tc="s")
        assert t2.value("objective") == "w"
        assert t2.tc == "s"
        assert t.value("objective") == "y"  # original untouched

    def test_equality_includes_tc(self, schema):
        base = {"starship": "x", "objective": "y", "destination": "z"}
        t1 = MLSTuple.make(schema, base, "u", tc="u")
        t2 = MLSTuple.make(schema, base, "u", tc="s")
        assert t1 != t2
        assert hash(t1) != hash(t2)

    def test_missing_values_become_null(self, schema):
        t = MLSTuple.make(schema, {"starship": "x"}, "u")
        assert t.value("objective") is NULL

    def test_partial_order_tc_check(self):
        lattice = diamond()
        schema = MLSchema("r", ["k", "a"], key="k", lattice=lattice)
        # cells at incomparable a/b: tc must dominate both -> only "hi".
        with pytest.raises(SchemaError):
            MLSTuple.make(schema, {"k": "x", "a": "y"},
                          {"k": "a", "a": "b"}, tc="a")
        t = MLSTuple.make(schema, {"k": "x", "a": "y"},
                          {"k": "a", "a": "b"}, tc="hi")
        assert t.tc == "hi"

    def test_cell_iteration_and_repr(self):
        cell = Cell("v", "u")
        assert tuple(cell) == ("v", "u")
        assert "v" in repr(cell)
