"""Unit tests for per-level views, masking and subsumption (Figures 2-3)."""

import pytest

from repro.mls import (
    NULL,
    mask_tuple,
    minimize_by_subsumption,
    strictly_subsumes,
    subsumes,
    view_at,
)
from repro.mls.relation import MLSRelation


class TestMasking:
    def test_invisible_key_drops_tuple(self, mission_tids):
        assert mask_tuple(mission_tids["t1"], "u") is None

    def test_visible_tuple_passes_through(self, mission_tids):
        masked = mask_tuple(mission_tids["t8"], "u")
        assert masked == mission_tids["t8"]

    def test_hidden_cell_masked_to_null_at_key_class(self, mission_tids):
        masked = mask_tuple(mission_tids["t4"], "u")
        assert masked.value("objective") is NULL
        assert masked.cls("objective") == "u"  # key classification
        assert masked.value("destination") == "omega"

    def test_tc_capped_at_view_level(self, mission_tids):
        assert mask_tuple(mission_tids["t4"], "u").tc == "u"
        assert mask_tuple(mission_tids["t4"], "c").tc == "c"
        assert mask_tuple(mission_tids["t4"], "s").tc == "s"

    def test_visible_tc_preserved(self, mission_tids):
        assert mask_tuple(mission_tids["t8"], "c").tc == "u"


class TestSubsumption:
    def test_identical_subsume(self, mission_tids):
        assert subsumes(mission_tids["t8"], mission_tids["t8"])

    def test_non_null_over_null(self, mission_tids):
        filtered_t3 = mask_tuple(mission_tids["t3"], "u")
        assert subsumes(mission_tids["t8"], filtered_t3)
        assert not subsumes(filtered_t3, mission_tids["t8"])

    def test_t4_t5_do_not_subsume_each_other(self, mission_tids):
        """The paper calls this out explicitly (Section 3)."""
        t4c = mask_tuple(mission_tids["t4"], "c")
        t5c = mask_tuple(mission_tids["t5"], "c")
        assert not subsumes(t4c, t5c)
        assert not subsumes(t5c, t4c)

    def test_strict_subsumption_requires_difference(self, mission_tids):
        assert not strictly_subsumes(mission_tids["t8"], mission_tids["t8"])

    def test_different_keys_never_subsume(self, mission_tids):
        assert not subsumes(mission_tids["t8"], mission_tids["t9"])


class TestMinimize:
    def test_drops_strictly_subsumed(self, mission_rel, mission_tids):
        masked = [mask_tuple(t, "u") for t in mission_rel]
        raw = MLSRelation(mission_rel.schema, [t for t in masked if t])
        minimal = minimize_by_subsumption(raw)
        values = {t.value("objective") for t in minimal.with_key("voyager")}
        assert values == {"training"}

    def test_tc_duplicates_keep_highest(self, mission_rel):
        view = view_at(mission_rel, "c")
        atlantis = view.with_key("atlantis")
        assert len(atlantis) == 1
        assert atlantis.tuples[0].tc == "c"


class TestFigure2:
    def test_u_view_contents(self, mission_rel):
        view = view_at(mission_rel, "u")
        assert len(view) == 5
        ships = sorted(t.value("starship") for t in view)
        assert ships == ["atlantis", "eagle", "falcon", "phantom", "voyager"]

    def test_u_view_surprise_story(self, mission_rel):
        view = view_at(mission_rel, "u")
        phantom = view.with_key("phantom").tuples[0]
        assert phantom.value("objective") is NULL
        assert phantom.tc == "u"

    def test_u_view_all_tc_u(self, mission_rel):
        assert view_at(mission_rel, "u").tuple_classes() == {"u"}


class TestFigure3:
    def test_c_view_contents(self, mission_rel):
        view = view_at(mission_rel, "c")
        assert len(view) == 6
        assert len(view.with_key("phantom")) == 2

    def test_both_phantom_tuples_survive(self, mission_rel):
        """t4 and t5 do not subsume each other, so both remain at C."""
        phantoms = view_at(mission_rel, "c").with_key("phantom")
        key_classes = {t.key_classification() for t in phantoms}
        assert key_classes == {"u", "c"}

    def test_c_view_tc_values(self, mission_rel):
        view = view_at(mission_rel, "c")
        by_ship = {
            (t.value("starship"), t.key_classification()): t.tc for t in view
        }
        assert by_ship[("phantom", "u")] == "c"
        assert by_ship[("phantom", "c")] == "c"
        assert by_ship[("voyager", "u")] == "u"

    def test_s_view_is_whole_relation(self, mission_rel):
        view = view_at(mission_rel, "s", apply_subsumption=False)
        assert len(view) == 10

    def test_unknown_level_rejected(self, mission_rel):
        from repro.errors import UnknownLevelError
        with pytest.raises(UnknownLevelError):
            view_at(mission_rel, "zz")
