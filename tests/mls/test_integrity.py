"""Unit tests for the three core integrity properties (Definition 5.4)."""

import pytest

from repro.errors import IntegrityError
from repro.mls import (
    NULL,
    Cell,
    MLSRelation,
    MLSTuple,
    MLSchema,
    assert_consistent,
    check_entity_integrity,
    check_null_integrity,
    check_polyinstantiation_integrity,
    check_relation,
    is_consistent,
)


@pytest.fixture()
def schema2(ucst):
    return MLSchema("r", ["k", "a"], key="k", lattice=ucst)


def rel(schema, *tuples):
    return MLSRelation(schema, tuples)


class TestEntityIntegrity:
    def test_mission_passes(self, mission_rel):
        assert check_entity_integrity(mission_rel) == []

    def test_null_key_flagged(self, schema2):
        t = MLSTuple(schema2, {"k": Cell(NULL, "u"), "a": Cell("1", "u")})
        violations = check_entity_integrity(rel(schema2, t))
        assert len(violations) == 1
        assert "null" in violations[0].message

    def test_non_uniform_key_flagged(self, ucst):
        schema = MLSchema("r", ["k1", "k2", "a"], key=["k1", "k2"], lattice=ucst)
        t = MLSTuple(schema, {"k1": Cell("x", "u"), "k2": Cell("y", "s"),
                              "a": Cell("1", "s")})
        violations = check_entity_integrity(rel(schema, t))
        assert any("uniformly" in v.message for v in violations)

    def test_attribute_below_key_class_flagged(self, schema2):
        t = MLSTuple(schema2, {"k": Cell("x", "s"), "a": Cell("1", "u")})
        violations = check_entity_integrity(rel(schema2, t))
        assert any("dominate" in v.message for v in violations)

    def test_violation_str(self, schema2):
        t = MLSTuple(schema2, {"k": Cell(NULL, "u"), "a": Cell("1", "u")})
        violation = check_entity_integrity(rel(schema2, t))[0]
        assert str(violation).startswith("[entity]")


class TestNullIntegrity:
    def test_mission_passes(self, mission_rel):
        assert check_null_integrity(mission_rel) == []

    def test_null_not_at_key_level_flagged(self, ucst):
        schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=ucst)
        t = MLSTuple(schema, {"k": Cell("x", "u"), "a": Cell(NULL, "c"),
                              "b": Cell("1", "u")})
        violations = check_null_integrity(rel(schema, t))
        assert any("key level" in v.message for v in violations)

    def test_same_tc_subsumption_flagged(self, schema2):
        full = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "u")}, tc="u")
        holey = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell(NULL, "u")}, tc="u")
        violations = check_null_integrity(rel(schema2, full, holey))
        assert any("subsume" in v.message for v in violations)

    def test_cross_tc_duplicates_allowed(self, schema2):
        """Tuple-class polyinstantiation (t2/t6/t7 of Figure 1) is legal."""
        a = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "u")}, tc="u")
        b = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "u")}, tc="s")
        assert check_null_integrity(rel(schema2, a, b)) == []


class TestPolyinstantiationIntegrity:
    def test_mission_passes(self, mission_rel):
        assert check_polyinstantiation_integrity(mission_rel) == []

    def test_fd_violation_flagged(self, schema2):
        a = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "s")}, tc="s")
        b = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("2", "s")}, tc="s")
        violations = check_polyinstantiation_integrity(rel(schema2, a, b))
        assert len(violations) == 1
        assert "violated" in violations[0].message

    def test_different_key_class_no_violation(self, schema2):
        """Figure 1's two Phantom tuples: same Ci, different C_AK."""
        a = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "s")}, tc="s")
        b = MLSTuple(schema2, {"k": Cell("x", "c"), "a": Cell("2", "s")}, tc="s")
        assert check_polyinstantiation_integrity(rel(schema2, a, b)) == []

    def test_different_cell_class_no_violation(self, schema2):
        a = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "c")}, tc="c")
        b = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("2", "s")}, tc="s")
        assert check_polyinstantiation_integrity(rel(schema2, a, b)) == []


class TestAggregation:
    def test_mission_is_consistent(self, mission_rel):
        assert is_consistent(mission_rel)
        assert_consistent(mission_rel)  # must not raise

    def test_check_relation_aggregates(self, schema2):
        bad = MLSTuple(schema2, {"k": Cell(NULL, "u"), "a": Cell(NULL, "c")})
        violations = check_relation(rel(schema2, bad))
        properties = {v.property_name for v in violations}
        assert "entity" in properties

    def test_assert_consistent_raises_with_all_messages(self, schema2):
        a = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("1", "s")}, tc="s")
        b = MLSTuple(schema2, {"k": Cell("x", "u"), "a": Cell("2", "s")}, tc="s")
        with pytest.raises(IntegrityError, match="polyinstantiation"):
            assert_consistent(rel(schema2, a, b))
