"""Unit tests for the polyinstantiating update engine."""

import pytest

from repro.errors import AccessDeniedError, IntegrityError
from repro.mls import MLSRelation, MLSchema, SessionCursor, is_consistent
from repro.workloads.mission import mission_relation, mission_via_updates


@pytest.fixture()
def fresh(ucst):
    schema = MLSchema("r", ["k", "a", "b"], key="k", lattice=ucst)
    return MLSRelation(schema)


class TestInsert:
    def test_insert_classifies_at_clearance(self, fresh):
        t = SessionCursor(fresh, "c").insert({"k": "x", "a": "1", "b": "2"})
        assert t.tc == "c"
        assert {t.cls(attr) for attr in fresh.schema.attributes} == {"c"}

    def test_insert_requires_key(self, fresh):
        with pytest.raises(IntegrityError):
            SessionCursor(fresh, "c").insert({"a": "1"})

    def test_duplicate_key_same_level_rejected(self, fresh):
        cursor = SessionCursor(fresh, "c")
        cursor.insert({"k": "x", "a": "1", "b": "2"})
        with pytest.raises(IntegrityError):
            cursor.insert({"k": "x", "a": "9", "b": "9"})

    def test_same_key_different_level_allowed(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "c").insert({"k": "x", "a": "9", "b": "9"})
        assert len(fresh) == 2


class TestUpdate:
    def test_in_place_at_own_level(self, fresh):
        cursor = SessionCursor(fresh, "c")
        cursor.insert({"k": "x", "a": "1", "b": "2"})
        cursor.update({"k": "x"}, {"a": "99"})
        assert len(fresh) == 1
        assert fresh.tuples[0].value("a") == "99"

    def test_higher_level_polyinstantiates(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "s").update({"k": "x"}, {"a": "covert"})
        assert len(fresh) == 2
        poly = [t for t in fresh if t.tc == "s"][0]
        assert poly.value("a") == "covert"
        assert poly.cls("a") == "s"
        assert poly.key_classification() == "u"  # key cell kept verbatim
        assert poly.value("b") == "2"

    def test_lower_tuple_unchanged(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "s").update({"k": "x"}, {"a": "covert"})
        low = [t for t in fresh if t.tc == "u"][0]
        assert low.value("a") == "1"

    def test_update_key_rejected(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        with pytest.raises(IntegrityError):
            SessionCursor(fresh, "u").update({"k": "x"}, {"k": "y"})

    def test_invisible_target_rejected(self, fresh):
        SessionCursor(fresh, "s").insert({"k": "x", "a": "1", "b": "2"})
        with pytest.raises(IntegrityError):
            SessionCursor(fresh, "u").update({"k": "x"}, {"a": "9"})

    def test_key_classification_selector(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "c").insert({"k": "x", "a": "3", "b": "4"})
        results = SessionCursor(fresh, "s").update(
            {"k": "x"}, {"a": "only-c"}, key_classification="c")
        assert len(results) == 1
        assert results[0].key_classification() == "c"

    def test_reassertion_with_empty_changes(self, fresh):
        """Tuple-class polyinstantiation: same data, higher TC."""
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "c").update({"k": "x"}, {})
        tcs = {t.tc for t in fresh}
        assert tcs == {"u", "c"}
        cells = {t.cells for t in fresh}
        assert len(cells) == 1


class TestDelete:
    def test_delete_own_level_only(self, fresh):
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "s").update({"k": "x"}, {"a": "covert"})
        SessionCursor(fresh, "u").delete({"k": "x"})
        assert len(fresh) == 1
        assert fresh.tuples[0].tc == "s"

    def test_delete_above_level_refused(self, fresh):
        SessionCursor(fresh, "s").insert({"k": "x", "a": "1", "b": "2"})
        with pytest.raises(AccessDeniedError):
            SessionCursor(fresh, "u").delete({"k": "x"})

    def test_delete_missing_refused(self, fresh):
        with pytest.raises(AccessDeniedError):
            SessionCursor(fresh, "u").delete({"k": "ghost"})


class TestRead:
    def test_read_is_js_view(self, mission_rel):
        cursor = SessionCursor(mission_rel, "u")
        assert len(cursor.read()) == 5

    def test_read_without_subsumption(self, mission_rel):
        cursor = SessionCursor(mission_rel, "u")
        assert len(cursor.read(apply_subsumption=False)) >= 5

    def test_unknown_clearance_rejected(self, mission_rel):
        from repro.errors import UnknownLevelError
        with pytest.raises(UnknownLevelError):
            SessionCursor(mission_rel, "zz")


class TestHistoryReplay:
    def test_replay_reproduces_figure1(self):
        relation, _ = mission_relation()
        assert set(mission_via_updates()) == set(relation)

    def test_replay_result_is_consistent(self):
        assert is_consistent(mission_via_updates())

    def test_replay_stays_consistent_throughout(self, fresh):
        """Every individual operation preserves the integrity properties."""
        at_u = SessionCursor(fresh, "u")
        at_s = SessionCursor(fresh, "s")
        at_u.insert({"k": "x", "a": "1", "b": "2"})
        assert is_consistent(fresh)
        at_s.update({"k": "x"}, {"a": "covert"})
        assert is_consistent(fresh)
        at_u.delete({"k": "x"})
        assert is_consistent(fresh)


class TestElementSemantics:
    """Regressions for FD-preserving element semantics (found by the
    random-history property tests): stale low cells inside higher
    polyinstantiated tuples must never contradict fresh low data."""

    def test_reinsert_after_delete_with_high_remnant_refused(self, fresh):
        SessionCursor(fresh, "c").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "t").update({"k": "x"}, {"a": "covert"})
        SessionCursor(fresh, "c").delete({"k": "x"})
        # The t-level remnant still carries the c-classified key/b cells.
        with pytest.raises(IntegrityError, match="already exists"):
            SessionCursor(fresh, "c").insert({"k": "x", "a": "9", "b": "9"})
        from repro.mls import check_relation
        assert check_relation(fresh) == []

    def test_in_place_update_propagates_to_inherited_cells(self, fresh):
        SessionCursor(fresh, "c").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "t").update({"k": "x"}, {"a": "covert"})
        SessionCursor(fresh, "c").update({"k": "x"}, {"b": "99"})
        # Both the c tuple and the t remnant now agree on the c-cell b.
        values = {t.value("b") for t in fresh.with_key("x")}
        assert values == {"99"}
        from repro.mls import check_relation
        assert check_relation(fresh) == []

    def test_propagation_respects_lineage(self, fresh):
        """A different-C_AK tuple with the same key value is untouched."""
        SessionCursor(fresh, "u").insert({"k": "x", "a": "1", "b": "2"})
        SessionCursor(fresh, "c").insert({"k": "x", "a": "3", "b": "4"})
        SessionCursor(fresh, "u").update({"k": "x"}, {"b": "42"})
        by_cak = {t.key_classification(): t.value("b") for t in fresh.with_key("x")}
        assert by_cak == {"u": "42", "c": "4"}
