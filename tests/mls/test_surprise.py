"""Unit tests for surprise-story detection (the paper's new observation)."""

from repro.mls import (
    MLSRelation,
    MLSchema,
    SessionCursor,
    is_surprise_free,
    surprise_stories,
    surprise_stories_at,
)


class TestMissionSurprises:
    def test_t4_surprises_u(self, mission_rel):
        stories = surprise_stories_at(mission_rel, "u")
        assert len(stories) == 1
        story = stories[0]
        assert story.stored.key_values() == ("phantom",)
        assert story.leaked_attributes == ("objective",)

    def test_t4_and_t5_surprise_c(self, mission_rel):
        stories = surprise_stories_at(mission_rel, "c")
        assert len(stories) == 2
        leaked = {s.leaked_attributes for s in stories}
        assert ("objective",) in leaked
        assert ("objective", "destination") in leaked

    def test_no_surprises_at_s(self, mission_rel):
        assert surprise_stories_at(mission_rel, "s") == []

    def test_summary_map(self, mission_rel):
        by_level = surprise_stories(mission_rel)
        assert set(by_level) == {"u", "c"}

    def test_str_is_informative(self, mission_rel):
        story = surprise_stories_at(mission_rel, "u")[0]
        assert "phantom" in str(story)
        assert "objective" in str(story)


class TestLifecycle:
    def test_cover_story_alone_is_not_a_surprise(self, ucst):
        """While the low original lives, subsumption hides the gap."""
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        relation = MLSRelation(schema)
        SessionCursor(relation, "u").insert({"k": "x", "a": "benign"})
        SessionCursor(relation, "s").update({"k": "x"}, {"a": "covert"})
        assert is_surprise_free(relation)

    def test_deleting_original_creates_the_surprise(self, ucst):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        relation = MLSRelation(schema)
        SessionCursor(relation, "u").insert({"k": "x", "a": "benign"})
        SessionCursor(relation, "s").update({"k": "x"}, {"a": "covert"})
        SessionCursor(relation, "u").delete({"k": "x"})
        stories = surprise_stories_at(relation, "u")
        assert len(stories) == 1
        assert stories[0].leaked_attributes == ("a",)

    def test_uniformly_classified_relation_is_surprise_free(self, ucst):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        relation = MLSRelation(schema)
        for level in ("u", "c", "s"):
            SessionCursor(relation, level).insert({"k": f"k{level}", "a": "v"})
        assert is_surprise_free(relation)
