"""Unit tests for the multilevel relational algebra."""

import pytest

from repro.errors import SchemaError
from repro.mls import MLSRelation, MLSchema, view_at
from repro.mls.algebra import (
    declassified_level,
    difference,
    intersection,
    join,
    project,
    select_where,
    union,
)


@pytest.fixture()
def crews(ucst):
    schema = MLSchema("crews", ["starship", "captain"], key="starship", lattice=ucst)
    relation = MLSRelation(schema)
    relation.row([("voyager", "u"), ("janeway", "u")], tc="u")
    relation.row([("phantom", "u"), ("ghost", "s")], tc="s")
    relation.row([("avenger", "s"), ("fury", "s")], tc="s")
    return relation


class TestSelect:
    def test_predicate_filtering(self, mission_rel):
        spies = select_where(mission_rel, lambda t: t.value("objective") == "spying")
        assert len(spies) == 2

    def test_classifications_preserved(self, mission_rel):
        spies = select_where(mission_rel, lambda t: t.value("objective") == "spying")
        assert all(t.cls("objective") == "s" for t in spies)


class TestProject:
    def test_key_retained(self, mission_rel):
        projected = project(mission_rel, ["starship", "destination"])
        assert projected.schema.key == ("starship",)
        assert projected.schema.attributes == ("starship", "destination")

    def test_tc_recomputed_downward(self, mission_rel):
        """Projecting away the S objective declassifies t3 to U."""
        projected = project(mission_rel, ["starship", "destination"])
        voyager = projected.where(starship="voyager")
        assert {t.tc for t in voyager} == {"u"}

    def test_duplicates_collapse(self, mission_rel):
        projected = project(mission_rel, ["starship"])
        assert len(projected.where(starship="atlantis")) == 1

    def test_key_fallback_when_projected_away(self, mission_rel):
        projected = project(mission_rel, ["objective"])
        assert projected.schema.key == ("objective",)

    def test_empty_projection_rejected(self, mission_rel):
        with pytest.raises(SchemaError):
            project(mission_rel, ["nonexistent"])

    def test_projection_enables_lower_release(self, mission_rel):
        """Projecting away the classified column removes the blind spot:
        the U view of the projection is null-free while the original U
        view leaks a masked cell (the surprise story)."""
        projected = project(mission_rel, ["starship", "destination"])
        assert view_at(mission_rel, "u").has_nulls()
        assert not view_at(projected, "u").has_nulls()


class TestJoin:
    def test_natural_join(self, mission_rel, crews):
        joined = join(mission_rel, crews)
        voyager = joined.where(starship="voyager")
        assert {t.value("captain") for t in voyager} == {"janeway"}
        assert set(joined.schema.attributes) == {
            "starship", "objective", "destination", "captain"}

    def test_classified_cells_must_match(self, mission_rel, crews):
        """crews' phantom has a U key; mission's two phantom tuples have U
        and C keys -- only the U one joins."""
        joined = join(mission_rel, crews)
        phantom = joined.where(starship="phantom")
        assert {t.key_classification() for t in phantom} == {"u"}

    def test_tc_is_lub(self, mission_rel, crews):
        joined = join(mission_rel, crews)
        voyager_rows = joined.where(starship="voyager")
        # t3 (TC s) x crews voyager (TC u) -> s; t8 (TC u) x (u) -> u
        assert {t.tc for t in voyager_rows} == {"u", "s"}

    def test_join_across_lattices_rejected(self, mission_rel, diamond_lattice):
        other = MLSRelation(
            MLSchema("x", ["starship"], key="starship", lattice=diamond_lattice))
        with pytest.raises(SchemaError):
            join(mission_rel, other)

    def test_disjoint_attributes_is_cross_product(self, ucst):
        a = MLSRelation(MLSchema("a", ["x"], key="x", lattice=ucst))
        b = MLSRelation(MLSchema("b", ["y"], key="y", lattice=ucst))
        a.row([("1", "u")])
        a.row([("2", "u")])
        b.row([("p", "u")])
        assert len(join(a, b)) == 2


class TestSetOperations:
    def test_union(self, crews, ucst):
        more = MLSRelation(crews.schema)
        more.row([("eagle", "u"), ("hawk", "u")], tc="u")
        assert len(union(crews, more)) == 4

    def test_union_deduplicates(self, crews):
        assert len(union(crews, crews)) == len(crews)

    def test_difference(self, crews):
        only_low = select_where(crews, lambda t: t.tc == "u")
        rest = difference(crews, only_low)
        assert {t.tc for t in rest} == {"s"}

    def test_intersection(self, crews):
        low = select_where(crews, lambda t: t.tc == "u")
        assert set(intersection(crews, low)) == set(low)

    def test_incompatible_schemas_rejected(self, crews, mission_rel):
        with pytest.raises(SchemaError):
            union(crews, mission_rel)


class TestDeclassification:
    def test_level_of_mixed_relation(self, crews):
        assert declassified_level(crews) == "s"

    def test_level_of_low_relation(self, crews):
        low = select_where(crews, lambda t: t.tc == "u")
        assert declassified_level(low) == "u"

    def test_empty_relation(self, crews):
        empty = select_where(crews, lambda t: False)
        assert declassified_level(empty) is None
