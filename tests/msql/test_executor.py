"""Unit tests for the extended SQL executor."""

import pytest

from repro.errors import AccessDeniedError, SchemaError, UnknownModeError
from repro.msql import WITHOUT_DOUBT_QUERY, Catalog, SqlSession


@pytest.fixture()
def catalog(mission_rel):
    cat = Catalog()
    cat.register(mission_rel)
    return cat


def session(catalog, level):
    return SqlSession(catalog, level)


class TestPlainSelect:
    def test_star_uses_js_view(self, catalog):
        result = session(catalog, "u").execute("select * from mission")
        assert len(result) == 5
        assert result.columns == ("starship", "objective", "destination")

    def test_projection(self, catalog):
        result = session(catalog, "u").execute("select starship from mission")
        assert ("falcon",) in result.as_set()

    def test_dedup(self, catalog):
        result = session(catalog, "s").execute("select starship from mission")
        assert len(result.rows) == len(result.as_set())

    def test_where_filter(self, catalog):
        result = session(catalog, "s").execute(
            "select starship from mission where destination = mars")
        assert result.as_set() == {("voyager",)}

    def test_unknown_table(self, catalog):
        with pytest.raises(SchemaError):
            session(catalog, "u").execute("select * from nothing")

    def test_unknown_column(self, catalog):
        with pytest.raises(SchemaError):
            session(catalog, "u").execute("select warp from mission")


class TestBelieved:
    def test_firm(self, catalog):
        result = session(catalog, "c").execute(
            "select starship from mission believed firmly")
        assert result.as_set() == {("atlantis",)}

    def test_cautious(self, catalog):
        result = session(catalog, "s").execute(
            "select starship, objective from mission believed cautiously")
        assert ("voyager", "spying") in result.as_set()
        assert ("voyager", "training") not in result.as_set()

    def test_optimistic(self, catalog):
        result = session(catalog, "c").execute(
            "select starship from mission believed optimistically")
        assert ("eagle",) in result.as_set()

    def test_unknown_mode(self, catalog):
        with pytest.raises(UnknownModeError):
            session(catalog, "c").execute(
                "select * from mission believed wishfully")

    def test_custom_mode_through_registry(self, catalog, mission_rel):
        sql = session(catalog, "s")
        sql.registry.register("everything", lambda r, level: r)
        result = sql.execute("select starship from mission believed everything")
        assert len(result.as_set()) == 6  # six distinct starships stored


class TestAtLevel:
    def test_speculate_downward(self, catalog):
        result = session(catalog, "s").execute(
            "select starship, objective from mission believed cautiously at level u")
        assert ("voyager", "training") in result.as_set()

    def test_read_up_refused(self, catalog):
        with pytest.raises(AccessDeniedError):
            session(catalog, "u").execute(
                "select * from mission believed firmly at level s")


class TestSetOperations:
    def test_intersect(self, catalog):
        result = session(catalog, "s").execute("""
            (select starship from mission believed cautiously)
            intersect
            (select starship from mission believed firmly)
        """)
        assert ("avenger",) in result.as_set()

    def test_union(self, catalog):
        result = session(catalog, "c").execute("""
            (select starship from mission believed firmly)
            union
            (select starship from mission believed cautiously)
        """)
        assert len(result) == 4

    def test_except(self, catalog):
        result = session(catalog, "c").execute("""
            (select starship from mission believed cautiously)
            except
            (select starship from mission believed firmly)
        """)
        assert ("atlantis",) not in result.as_set()
        assert ("eagle",) in result.as_set()

    def test_column_count_mismatch(self, catalog):
        with pytest.raises(SchemaError):
            session(catalog, "s").execute("""
                (select starship from mission)
                intersect
                (select starship, objective from mission)
            """)


class TestSubqueries:
    def test_in(self, catalog):
        result = session(catalog, "s").execute("""
            select starship, destination from mission
            where starship in (select starship from mission
                               where objective = spying believed cautiously)
        """)
        assert {row[0] for row in result} == {"voyager", "phantom"}

    def test_not_in(self, catalog):
        result = session(catalog, "u").execute("""
            select starship from mission
            where starship not in (select starship from mission
                                   where objective = piracy)
        """)
        assert ("falcon",) not in result.as_set()

    def test_multi_column_subquery_rejected(self, catalog):
        with pytest.raises(SchemaError):
            session(catalog, "u").execute("""
                select * from mission
                where starship in (select starship, objective from mission)
            """)


class TestHeadlineQuery:
    def test_only_s_concludes_voyager(self, catalog):
        assert session(catalog, "s").execute(WITHOUT_DOUBT_QUERY).rows == [("voyager",)]

    @pytest.mark.parametrize("level", ["u", "c"])
    def test_lower_levels_get_nothing(self, catalog, level):
        assert session(catalog, level).execute(WITHOUT_DOUBT_QUERY).rows == []


class TestResultSet:
    def test_column_accessor(self, catalog):
        result = session(catalog, "u").execute("select starship, objective from mission")
        assert "piracy" in result.column("objective")

    def test_iteration(self, catalog):
        result = session(catalog, "u").execute("select starship from mission")
        assert all(isinstance(row, tuple) for row in result)


class TestOrderByLimit:
    def test_order_by_ascending(self, catalog):
        result = session(catalog, "u").execute(
            "select starship from mission order by starship")
        assert result.rows == sorted(result.rows)

    def test_order_by_descending(self, catalog):
        result = session(catalog, "u").execute(
            "select starship from mission order by starship desc")
        assert result.rows == sorted(result.rows, reverse=True)

    def test_limit(self, catalog):
        result = session(catalog, "u").execute(
            "select starship from mission order by starship limit 2")
        assert result.rows == [("atlantis",), ("eagle",)]

    def test_limit_zero(self, catalog):
        result = session(catalog, "u").execute(
            "select starship from mission limit 0")
        assert result.rows == []

    def test_order_by_unselected_column_rejected(self, catalog):
        with pytest.raises(SchemaError):
            session(catalog, "u").execute(
                "select starship from mission order by objective")

    def test_order_with_believed(self, catalog):
        result = session(catalog, "s").execute(
            "select starship, objective from mission "
            "believed cautiously order by starship limit 3")
        assert len(result.rows) == 3
        ships = [row[0] for row in result.rows]
        assert ships == sorted(ships)

    def test_non_integer_limit_rejected(self, catalog):
        from repro.errors import MultiLogSyntaxError
        with pytest.raises(MultiLogSyntaxError):
            session(catalog, "u").execute("select starship from mission limit 2.5")
