"""Cuppens' views at the SQL surface, and the paper's subsumption claim."""

import pytest

from repro.msql import Catalog, SqlSession


@pytest.fixture()
def sql(mission_rel):
    catalog = Catalog()
    catalog.register(mission_rel)
    return SqlSession(catalog, "s")


class TestCuppensModes:
    def test_suspicious_equals_firmly(self, sql):
        suspicious = sql.execute("select starship from mission believed suspiciously")
        firmly = sql.execute("select starship from mission believed firmly")
        assert suspicious.as_set() == firmly.as_set()

    def test_additive_equals_optimistically_on_data(self, sql):
        additive = sql.execute(
            "select starship, objective from mission believed additively")
        optimistic = sql.execute(
            "select starship, objective from mission believed optimistically")
        assert additive.as_set() == optimistic.as_set()

    def test_trusted_prefers_maximal_sources(self, sql):
        trusted = sql.execute(
            "select starship, objective from mission believed trusted")
        assert ("voyager", "spying") in trusted.as_set()
        assert ("voyager", "training") not in trusted.as_set()

    def test_subsumption_claim_as_set_algebra(self, sql):
        """Every trusted starship is cautiously believed (subsumption)."""
        leftover = sql.execute("""
            (select starship from mission believed trusted)
            except
            (select starship from mission believed cautiously)
        """)
        assert leftover.rows == []
