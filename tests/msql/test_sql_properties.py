"""Property tests: the SQL executor is a faithful surface over beta."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.belief import belief
from repro.mls.views import view_at
from repro.msql import Catalog, SqlSession
from repro.workloads.generator import make_lattice, random_mls_relation


@st.composite
def catalogs(draw):
    shape = draw(st.sampled_from(["chain", "diamond"]))
    seed = draw(st.integers(min_value=0, max_value=2_000))
    lattice = make_lattice(shape, n_levels=4, seed=seed)
    relation = random_mls_relation(
        draw(st.integers(min_value=0, max_value=20)), lattice,
        polyinstantiation_rate=draw(st.floats(min_value=0.0, max_value=0.7)),
        seed=seed)
    catalog = Catalog()
    catalog.register(relation)
    return catalog, relation, lattice


@given(catalogs(), st.data())
@settings(max_examples=50, deadline=None)
def test_believed_select_equals_beta(bundle, data):
    catalog, relation, lattice = bundle
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    mode, sql_mode = data.draw(st.sampled_from(
        [("fir", "firmly"), ("opt", "optimistically"), ("cau", "cautiously")]))
    result = SqlSession(catalog, level).execute(
        f"select k, a1 from r believed {sql_mode}")
    expected = {
        (t.value("k"), t.value("a1")) for t in belief(relation, level, mode)
    }
    assert result.as_set() == expected


@given(catalogs(), st.data())
@settings(max_examples=50, deadline=None)
def test_plain_select_equals_js_view(bundle, data):
    catalog, relation, lattice = bundle
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    result = SqlSession(catalog, level).execute("select k, a1 from r")
    expected = {(t.value("k"), t.value("a1")) for t in view_at(relation, level)}
    assert result.as_set() == expected


@given(catalogs(), st.data())
@settings(max_examples=30, deadline=None)
def test_set_operation_laws(bundle, data):
    catalog, _relation, lattice = bundle
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    session = SqlSession(catalog, level)
    cau = session.execute("select k from r believed cautiously").as_set()
    fir = session.execute("select k from r believed firmly").as_set()
    inter = session.execute(
        "(select k from r believed cautiously) intersect "
        "(select k from r believed firmly)").as_set()
    union = session.execute(
        "(select k from r believed cautiously) union "
        "(select k from r believed firmly)").as_set()
    diff = session.execute(
        "(select k from r believed cautiously) except "
        "(select k from r believed firmly)").as_set()
    assert inter == cau & fir
    assert union == cau | fir
    assert diff == cau - fir


@given(catalogs(), st.data())
@settings(max_examples=30, deadline=None)
def test_where_is_a_filter(bundle, data):
    catalog, relation, lattice = bundle
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    session = SqlSession(catalog, level)
    everything = session.execute("select k, a1 from r believed optimistically")
    values = sorted({row[1] for row in everything if row[1] is not None},
                    key=repr)
    if not values:
        return
    target = data.draw(st.sampled_from(values))
    filtered = session.execute(
        f"select k, a1 from r where a1 = {target} believed optimistically")
    assert filtered.as_set() == {row for row in everything.as_set() if row[1] == target}
