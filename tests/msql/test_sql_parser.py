"""Unit tests for the extended SQL grammar."""

import pytest

from repro.errors import MultiLogSyntaxError
from repro.msql import (
    And,
    Comparison,
    InSubquery,
    Not,
    Or,
    Select,
    SetExpression,
    parse_sql,
)


class TestSelect:
    def test_star(self):
        stmt = parse_sql("select * from mission")
        assert isinstance(stmt, Select)
        assert stmt.columns is None
        assert stmt.table == "mission"

    def test_column_list(self):
        stmt = parse_sql("select starship, objective from mission")
        assert stmt.columns == ("starship", "objective")

    def test_keywords_case_insensitive(self):
        stmt = parse_sql("SELECT Starship FROM Mission WHERE destination = Mars")
        assert stmt.table == "mission"
        assert stmt.columns == ("starship",)

    def test_believed_clause(self):
        stmt = parse_sql("select * from mission believed cautiously")
        assert stmt.believed == "cautiously"

    def test_at_level_clause(self):
        stmt = parse_sql("select * from mission believed firmly at level c")
        assert stmt.at_level == "c"

    def test_at_without_level_keyword(self):
        stmt = parse_sql("select * from mission believed firmly at c")
        assert stmt.at_level == "c"

    def test_trailing_semicolon(self):
        assert parse_sql("select * from mission;").table == "mission"


class TestConditions:
    def test_comparison(self):
        stmt = parse_sql("select * from m where a = b")
        assert stmt.where == Comparison("a", "=", "b")

    def test_diamond_op_normalized(self):
        stmt = parse_sql("select * from m where a <> b")
        assert stmt.where.op == "!="

    def test_numeric_literal(self):
        stmt = parse_sql("select * from m where x >= 10")
        assert stmt.where.literal == 10

    def test_string_literal(self):
        stmt = parse_sql("select * from m where x = 'two words'")
        assert stmt.where.literal == "two words"

    def test_and_or_precedence(self):
        stmt = parse_sql("select * from m where a = 1 and b = 2 or c = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.left, And)

    def test_parentheses_override(self):
        stmt = parse_sql("select * from m where a = 1 and (b = 2 or c = 3)")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.right, Or)

    def test_not(self):
        stmt = parse_sql("select * from m where not a = 1")
        assert isinstance(stmt.where, Not)

    def test_in_subquery(self):
        stmt = parse_sql(
            "select * from m where x in (select x from n believed firmly)")
        cond = stmt.where
        assert isinstance(cond, InSubquery)
        assert not cond.negated
        assert cond.query.believed == "firmly"

    def test_not_in_subquery(self):
        stmt = parse_sql("select * from m where x not in (select x from n)")
        assert stmt.where.negated


class TestSetExpressions:
    def test_intersect(self):
        stmt = parse_sql(
            "(select x from m) intersect (select x from n)")
        assert isinstance(stmt, SetExpression)
        assert stmt.op == "intersect"

    def test_chained_set_ops_left_associative(self):
        stmt = parse_sql(
            "(select x from a) union (select x from b) except (select x from c)")
        assert stmt.op == "except"
        assert stmt.left.op == "union"

    def test_nested_in_subquery(self):
        stmt = parse_sql("""
            select s from m where s in (
                (select s from m believed cautiously)
                intersect
                (select s from m believed firmly)
            )""")
        inner = stmt.where.query
        assert isinstance(inner, SetExpression)
        assert inner.op == "intersect"


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("select x")

    def test_keyword_as_identifier(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("select from from mission")

    def test_trailing_garbage(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("select x from m garbage")

    def test_bad_character(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("select x from m where a = @")

    def test_unterminated_subquery(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("select x from m where x in (select x from n")
