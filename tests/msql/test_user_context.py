"""The USER CONTEXT statement (the Section 3.2 example's preamble)."""

import pytest

from repro.errors import MultiLogSyntaxError
from repro.msql import Catalog, SqlSession, UserContext, parse_sql


@pytest.fixture()
def session(mission_rel):
    catalog = Catalog()
    catalog.register(mission_rel)
    return SqlSession(catalog, "s")


class TestParsing:
    def test_parse(self):
        statement = parse_sql("user context u")
        assert statement == UserContext("u")

    def test_trailing_semicolon(self):
        assert parse_sql("user context c;") == UserContext("c")

    def test_missing_context_keyword(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("user u")

    def test_trailing_garbage(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_sql("user context u extra")


class TestExecution:
    def test_switches_clearance(self, session):
        session.execute("user context u")
        assert session.clearance == "u"
        result = session.execute("select starship from mission believed firmly")
        assert ("avenger",) not in result.as_set()

    def test_paper_example_script(self, session):
        """The Section 3.2 example: context line, then the query."""
        results = session.execute_script("""
            user context u;
            select starship from mission
            where destination = mars and objective = spying
            believed cautiously
        """)
        assert len(results) == 2
        assert results[1].rows == []  # U believes no such thing

    def test_script_at_s(self, session):
        results = session.execute_script("""
            user context s;
            select starship from mission
            where destination = mars and objective = spying
            believed cautiously
        """)
        assert results[1].rows == [("voyager",)]
