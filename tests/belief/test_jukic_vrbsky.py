"""Unit tests for the Jukic-Vrbsky model (Figures 4-5)."""

import pytest

from repro.belief import Interpretation, JVRelation, JVTuple
from repro.workloads.mission import FIGURE5_EXPECTED, jv_mission


class TestFigure5:
    @pytest.mark.parametrize("tid", sorted(FIGURE5_EXPECTED))
    def test_every_row_matches_paper(self, tid):
        jv = jv_mission()
        table = jv.interpretation_table(["u", "c", "s"])
        got = tuple(table[tid][level].value for level in ("u", "c", "s"))
        assert got == FIGURE5_EXPECTED[tid]

    def test_all_thirty_entries(self):
        jv = jv_mission()
        table = jv.interpretation_table(["u", "c", "s"])
        assert sum(len(row) for row in table.values()) == 30


class TestInterpretationRules:
    def test_invisible_below_all_sources(self, ucst):
        jv = JVRelation(ucst)
        t = jv.add(JVTuple("x", None, believed_at=frozenset({"s"})))
        assert jv.interpret(t, "u") is Interpretation.INVISIBLE

    def test_true_at_asserting_level(self, ucst):
        jv = JVRelation(ucst)
        t = jv.add(JVTuple("x", None, believed_at=frozenset({"c"})))
        assert jv.interpret(t, "c") is Interpretation.TRUE

    def test_cover_story_via_successor(self, ucst):
        jv = JVRelation(ucst)
        real = JVTuple("real", None, believed_at=frozenset({"s"}))
        cover = JVTuple("cover", None, believed_at=frozenset({"u"}), successor=real)
        jv.add(real)
        jv.add(cover)
        assert jv.interpret(cover, "s") is Interpretation.COVER_STORY

    def test_cover_story_follows_successor_chain(self, ucst):
        jv = JVRelation(ucst)
        v3 = JVTuple("v3", None, believed_at=frozenset({"s"}))
        v2 = JVTuple("v2", None, believed_at=frozenset({"c"}), successor=v3)
        v1 = JVTuple("v1", None, believed_at=frozenset({"u"}), successor=v2)
        for t in (v3, v2, v1):
            jv.add(t)
        assert jv.interpret(v1, "s") is Interpretation.COVER_STORY

    def test_mirage_via_explicit_disbelief(self, ucst):
        jv = JVRelation(ucst)
        t = jv.add(JVTuple("x", None, believed_at=frozenset({"u"}),
                           disbelieved_at=frozenset({"s"})))
        assert jv.interpret(t, "s") is Interpretation.MIRAGE
        # the disbelief does not leak downward
        assert jv.interpret(t, "c") is Interpretation.IRRELEVANT

    def test_irrelevant_otherwise(self, ucst):
        jv = JVRelation(ucst)
        t = jv.add(JVTuple("x", None, believed_at=frozenset({"u"})))
        assert jv.interpret(t, "c") is Interpretation.IRRELEVANT

    def test_believed_view(self, ucst):
        jv = jv_mission()
        tids = {t.tid for t in jv.believed_view("u")}
        assert tids == {"t2", "t4", "t8", "t9", "t10"}

    def test_by_tid_lookup(self):
        jv = jv_mission()
        assert jv.by_tid("t9").disbelieved_at == {"s"}
        with pytest.raises(KeyError):
            jv.by_tid("ghost")


class TestLabels:
    def test_full_range_label(self, ucst):
        jv = jv_mission()
        assert jv.by_tid("t2").label(ucst) == "UCS"

    def test_singleton_label(self, ucst):
        jv = jv_mission()
        assert jv.by_tid("t1").label(ucst) == "S"

    def test_empty_label(self, ucst):
        t = JVTuple("x", None, believed_at=frozenset())
        assert t.label(ucst) == "-"

    def test_pair_label(self, ucst):
        t = JVTuple("x", None, believed_at=frozenset({"u", "c"}))
        assert t.label(ucst) == "U-C"
