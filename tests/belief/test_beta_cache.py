"""Tests for the belief-view memo and the cautious combination cap."""

import pytest

from repro.belief import belief
from repro.belief.beta import (
    MAX_CAUTIOUS_COMBINATIONS,
    _BETA_MEMO,
    cautious,
    cautious_conflicts,
)
from repro.errors import BeliefError
from repro.lattice import SecurityLattice
from repro.mls.relation import MLSRelation
from repro.mls.schema import MLSchema
from repro.mls.tuples import Cell, MLSTuple
from repro.workloads.generator import make_lattice, random_mls_relation


@pytest.fixture
def relation():
    return random_mls_relation(40, polyinstantiation_rate=0.4, seed=5)


class TestBetaMemo:
    def test_repeat_view_is_cached(self, relation):
        first = belief(relation, "t", "cau")
        second = belief(relation, "t", "cau")
        assert second is first  # same object: served from the memo

    def test_distinct_keys_distinct_entries(self, relation):
        assert belief(relation, "t", "cau") is not belief(relation, "t", "opt")
        assert belief(relation, "t", "opt") is not belief(relation, "s", "opt")

    def test_mutation_invalidates(self, relation):
        stale = belief(relation, "t", "opt")
        extra = MLSTuple(
            relation.schema,
            {"k": Cell("fresh", "u"), "a1": Cell("v", "u"), "a2": Cell("w", "u")},
            tc="u",
        )
        relation.add(extra)
        fresh = belief(relation, "t", "opt")
        assert fresh is not stale
        assert len(fresh) == len(stale) + 1

    def test_remove_invalidates(self, relation):
        stale = belief(relation, "t", "fir")
        relation.remove(relation.tuples[0])
        assert belief(relation, "t", "fir") is not stale

    def test_stats_track_hits(self, relation):
        _BETA_MEMO.stats.reset()
        belief(relation, "t", "cau")
        belief(relation, "t", "cau")
        assert _BETA_MEMO.stats.hits >= 1
        assert _BETA_MEMO.stats.misses >= 1


def incomparable_relation(n_attributes: int) -> MLSRelation:
    """Two tuples per key whose cells sit at incomparable levels 'a'/'b',
    so every attribute has two maximal cells."""
    lattice = SecurityLattice(
        levels=("bot", "a", "b", "top"),
        orders=(("bot", "a"), ("bot", "b"), ("a", "top"), ("b", "top")),
    )
    attrs = ["k"] + [f"x{i}" for i in range(n_attributes - 1)]
    schema = MLSchema("r", attrs, key="k", lattice=lattice)
    relation = MLSRelation(schema)
    for side in ("a", "b"):
        cells = {"k": Cell("key0", "bot")}
        for attr in attrs[1:]:
            cells[attr] = Cell(f"{attr}-{side}", side)
        relation.add(MLSTuple(schema, cells, tc=side))
    return relation


class TestCautiousCap:
    def test_blowup_raises_belief_error(self):
        relation = incomparable_relation(n_attributes=6)
        # 2^5 = 32 combinations for the single key; cap below that.
        with pytest.raises(BeliefError, match="maximal-cell combinations"):
            cautious(relation, "top", max_combinations=16)

    def test_default_cap_allows_small_products(self):
        relation = incomparable_relation(n_attributes=4)
        view = cautious(relation, "top")  # 2^3 = 8 < default cap
        assert len(view) == 8

    def test_cap_is_configurable_upward(self):
        relation = incomparable_relation(n_attributes=6)
        view = cautious(relation, "top", max_combinations=64)
        assert len(view) == 32

    def test_default_cap_value_is_sane(self):
        assert MAX_CAUTIOUS_COMBINATIONS >= 1_000


class TestSharedGrouping:
    def test_conflicts_agree_with_cautious_multiplicity(self):
        """cautious() and cautious_conflicts() (which share the grouping
        helper) must tell one coherent story: conflicts exist exactly when
        some key yields more than one believed tuple."""
        lattice = make_lattice("diamond", 4)
        relation = random_mls_relation(
            120, lattice, polyinstantiation_rate=0.6, seed=7)
        top = sorted(lattice.tops())[0]
        conflicts = cautious_conflicts(relation, top)
        view = cautious(relation, top)
        keys_with_multiple = {
            key for key in {t.key_values() for t in view}
            if sum(1 for t in view if t.key_values() == key) > 1
        }
        assert keys_with_multiple == {c.key for c in conflicts}
