"""Unit tests for the parametric belief function beta (Figures 6-8)."""

import pytest

from repro.belief import (
    BeliefMode,
    belief,
    believed_without_doubt,
    cautious,
    cautious_conflicts,
    firm,
    optimistic,
)
from repro.mls import MLSRelation, MLSchema, SessionCursor
from repro.mls.views import view_at


class TestFirm:
    def test_figure6(self, mission_rel, mission_tids):
        view = firm(mission_rel, "c")
        assert set(view) == {mission_tids["t6"]}

    def test_firm_at_u(self, mission_rel):
        ships = sorted(t.value("starship") for t in firm(mission_rel, "u"))
        assert ships == ["atlantis", "eagle", "falcon", "voyager"]

    def test_firm_at_t_is_empty(self, mission_rel):
        assert len(firm(mission_rel, "t")) == 0

    def test_firm_keeps_original_tc(self, mission_rel):
        assert all(t.tc == "c" for t in firm(mission_rel, "c"))


class TestOptimistic:
    def test_figure7_beta_variant(self, mission_rel):
        """beta omits the filter-generated t4/t5 (Section 3.2)."""
        view = optimistic(mission_rel, "c")
        ships = sorted(t.value("starship") for t in view)
        assert ships == ["atlantis", "eagle", "falcon", "voyager"]

    def test_tc_restamped(self, mission_rel):
        assert view_at(mission_rel, "c").tuple_classes() != {"c"}
        assert optimistic(mission_rel, "c").tuple_classes() == {"c"}

    def test_restamping_merges_tc_polyinstantiation(self, mission_rel):
        atlantis = optimistic(mission_rel, "s").with_key("atlantis")
        assert len(atlantis) == 1  # t2/t6/t7 collapse

    def test_optimistic_at_top_sees_everything(self, mission_rel):
        assert len(optimistic(mission_rel, "t")) == 8  # 10 minus 2 merges


class TestCautious:
    def test_figure8_beta_variant(self, mission_rel):
        """beta omits t5: no Phantom group is visible at C."""
        view = cautious(mission_rel, "c")
        ships = sorted(t.value("starship") for t in view)
        assert ships == ["atlantis", "eagle", "falcon", "voyager"]

    def test_overriding_at_s(self, mission_rel):
        view = cautious(mission_rel, "s")
        voyager = view.with_key("voyager").tuples
        assert len(voyager) == 1
        assert voyager[0].value("objective") == "spying"  # S overrides U

    def test_phantom_multiple_models_at_s(self, mission_rel):
        """Two S-classified objectives (spying/supply) are both maximal."""
        phantoms = cautious(mission_rel, "s").with_key("phantom")
        objectives = {t.value("objective") for t in phantoms}
        assert objectives == {"spying", "supply"}
        # but destination and key resolve uniquely
        assert {t.value("destination") for t in phantoms} == {"venus"}
        assert {t.key_classification() for t in phantoms} == {"c"}

    def test_conflicts_reported(self, mission_rel):
        conflicts = cautious_conflicts(mission_rel, "s")
        assert len(conflicts) == 1
        conflict = conflicts[0]
        assert conflict.key == ("phantom",)
        assert conflict.attribute == "objective"
        assert {c.value for c in conflict.candidates} == {"spying", "supply"}

    def test_no_conflicts_at_c(self, mission_rel):
        assert cautious_conflicts(mission_rel, "c") == []

    def test_tc_stamped_to_level(self, mission_rel):
        assert cautious(mission_rel, "s").tuple_classes() == {"s"}

    def test_incomparable_sources_fork(self, diamond_lattice):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=diamond_lattice)
        relation = MLSRelation(schema)
        SessionCursor(relation, "lo").insert({"k": "x", "a": "base"})
        SessionCursor(relation, "a").update({"k": "x"}, {"a": "left"})
        SessionCursor(relation, "b").update({"k": "x"}, {"a": "right"})
        views = cautious(relation, "hi").with_key("x")
        assert {t.value("a") for t in views} == {"left", "right"}
        conflicts = cautious_conflicts(relation, "hi")
        assert any(c.attribute == "a" for c in conflicts)


class TestDispatch:
    def test_belief_by_enum(self, mission_rel):
        assert set(belief(mission_rel, "c", BeliefMode.FIRM)) == set(firm(mission_rel, "c"))

    @pytest.mark.parametrize("alias, reference", [
        ("fir", firm), ("firmly", firm), ("strict", firm),
        ("opt", optimistic), ("optimistically", optimistic),
        ("cau", cautious), ("cautiously", cautious), ("conservative", cautious),
    ])
    def test_belief_by_alias(self, mission_rel, alias, reference):
        assert set(belief(mission_rel, "c", alias)) == set(reference(mission_rel, "c"))

    def test_unknown_mode_raises(self, mission_rel):
        from repro.errors import UnknownModeError
        with pytest.raises(UnknownModeError):
            belief(mission_rel, "c", "wishful")


class TestWithoutDoubt:
    def test_section32_at_s(self, mission_rel):
        certain = believed_without_doubt(
            mission_rel.where(destination="mars", objective="spying"), "s")
        assert {t.value("starship") for t in certain} == {"voyager"}

    def test_section32_below_s_is_empty(self, mission_rel):
        for level in ("u", "c"):
            certain = believed_without_doubt(
                mission_rel.where(destination="mars", objective="spying"), level)
            assert len(certain) == 0
