"""Unit tests for the mode registry and aliases."""

import pytest

from repro.belief import BeliefMode, ModeRegistry, default_registry, firm
from repro.errors import UnknownModeError


class TestBeliefMode:
    @pytest.mark.parametrize("name, expected", [
        ("fir", BeliefMode.FIRM), ("FIRMLY", BeliefMode.FIRM),
        ("opt", BeliefMode.OPTIMISTIC), ("greedy", BeliefMode.OPTIMISTIC),
        ("Cautiously", BeliefMode.CAUTIOUS), ("conservative", BeliefMode.CAUTIOUS),
    ])
    def test_parse_aliases(self, name, expected):
        assert BeliefMode.parse(name) is expected

    def test_parse_unknown(self):
        with pytest.raises(UnknownModeError):
            BeliefMode.parse("wishful")

    def test_values_are_paper_short_names(self):
        assert {m.value for m in BeliefMode} == {"fir", "opt", "cau"}


class TestRegistry:
    def test_default_registry_has_all_aliases(self):
        registry = default_registry()
        for name in ("fir", "firm", "opt", "optimistically", "cau", "cautious"):
            assert name in registry

    def test_default_registry_functions_work(self, mission_rel):
        registry = default_registry()
        assert set(registry.resolve("firmly")(mission_rel, "c")) == \
            set(firm(mission_rel, "c"))

    def test_custom_mode_registration(self, mission_rel):
        registry = ModeRegistry()
        registry.register("everything", lambda r, level: r)
        assert set(registry.resolve("everything")(mission_rel, "c")) == set(mission_rel)

    def test_resolution_is_case_insensitive(self):
        registry = ModeRegistry()
        registry.register("MyMode", lambda r, level: r)
        assert "mymode" in registry

    def test_unknown_mode_lists_registered(self):
        registry = ModeRegistry()
        registry.register("a", lambda r, level: r)
        with pytest.raises(UnknownModeError, match="registered"):
            registry.resolve("b")

    def test_names(self):
        registry = ModeRegistry()
        registry.register("z", lambda r, level: r)
        registry.register("a", lambda r, level: r)
        assert registry.names() == ["a", "z"]
