"""Property-based tests for beta over random integrity-respecting relations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.belief import cautious, cautious_conflicts, firm, optimistic
from repro.mls import check_relation
from repro.workloads.generator import make_lattice, random_mls_relation


@st.composite
def relations(draw):
    shape = draw(st.sampled_from(["chain", "diamond", "random"]))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    lattice = make_lattice(shape, n_levels=draw(st.integers(2, 5)), seed=seed)
    n = draw(st.integers(min_value=0, max_value=25))
    poly = draw(st.floats(min_value=0.0, max_value=0.8))
    return random_mls_relation(n, lattice, n_attributes=3,
                               polyinstantiation_rate=poly, seed=seed)


def data_rows(view):
    return {t.cells for t in view}


@given(relations())
@settings(max_examples=60, deadline=None)
def test_generator_respects_integrity(relation):
    assert check_relation(relation) == []


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_firm_subset_of_optimistic(relation, data):
    level = data.draw(st.sampled_from(sorted(relation.schema.lattice.levels)))
    assert data_rows(firm(relation, level)) <= data_rows(optimistic(relation, level))


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_cautious_cells_are_visible(relation, data):
    """Every cautiously believed cell exists in some visible stored tuple."""
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    visible_cells = {
        (t.key_values(), attr, t.cell(attr))
        for t in relation if lattice.leq(t.tc, level)
        for attr in relation.schema.attributes
    }
    for t in cautious(relation, level):
        for attr in relation.schema.attributes:
            assert (t.key_values(), attr, t.cell(attr)) in visible_cells


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_cautious_keys_equal_optimistic_keys(relation, data):
    """Cautious merges per key but never invents or drops keys."""
    level = data.draw(st.sampled_from(sorted(relation.schema.lattice.levels)))
    assert {t.key_values() for t in cautious(relation, level)} == \
        {t.key_values() for t in optimistic(relation, level)}


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_cautious_maximality(relation, data):
    """No visible same-key cell strictly outranks a believed cell."""
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    visible = [t for t in relation if lattice.leq(t.tc, level)]
    for believed in cautious(relation, level):
        for attr in relation.schema.attributes:
            cls = believed.cls(attr)
            for other in visible:
                if other.key_values() == believed.key_values():
                    assert not lattice.lt(cls, other.cls(attr))


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_chain_without_polyinstantiated_keys_is_functional(relation, data):
    """On a chain, conflicts require same-key tuples with equal maximal
    cell classes -- absent those, cautious is one tuple per key."""
    lattice = relation.schema.lattice
    level = data.draw(st.sampled_from(sorted(lattice.levels)))
    conflicts = cautious_conflicts(relation, level)
    by_key: dict[tuple, int] = {}
    for t in cautious(relation, level):
        by_key[t.key_values()] = by_key.get(t.key_values(), 0) + 1
    for key, count in by_key.items():
        if count > 1:
            assert any(c.key == key for c in conflicts)


@given(relations(), st.data())
@settings(max_examples=60, deadline=None)
def test_belief_monotone_in_level_for_optimistic(relation, data):
    """Optimistic belief grows monotonically up the lattice."""
    lattice = relation.schema.lattice
    levels = sorted(lattice.levels)
    low = data.draw(st.sampled_from(levels))
    high = data.draw(st.sampled_from(sorted(lattice.up_set(low))))
    assert data_rows(optimistic(relation, low)) <= data_rows(optimistic(relation, high))
