"""Tests for Cuppens' views and the paper's subsumption claim (Section 3.1)."""

from repro.belief import additive, cautious, firm, optimistic, suspicious, trusted


def data_rows(view):
    return {tuple(cell for cell in t.cells) for t in view}


class TestSuspicious:
    def test_coincides_with_firm(self, mission_rel):
        for level in ("u", "c", "s", "t"):
            assert set(suspicious(mission_rel, level)) == set(firm(mission_rel, level))


class TestAdditive:
    def test_same_data_as_optimistic(self, mission_rel):
        """Additive == optimistic up to the optimistic TC restamping."""
        for level in ("u", "c", "s"):
            assert data_rows(additive(mission_rel, level)) == \
                data_rows(optimistic(mission_rel, level))

    def test_keeps_source_tuple_classes(self, mission_rel):
        tcs = additive(mission_rel, "s").tuple_classes()
        assert tcs == {"u", "c", "s"}


class TestTrusted:
    def test_keeps_only_maximal_sources(self, mission_rel):
        view = trusted(mission_rel, "s")
        voyager = view.with_key("voyager")
        # t3 (TC=s) wins over t8 (TC=u).
        assert {t.tc for t in voyager} == {"s"}
        assert {t.value("objective") for t in voyager} == {"spying"}

    def test_unique_source_passes_through(self, mission_rel):
        view = trusted(mission_rel, "u")
        assert len(view.with_key("eagle")) == 1

    def test_trusted_tuples_are_cautiously_supported(self, mission_rel):
        """Every trusted cell value also appears in some cautious tuple
        whenever the maximal source is unique (the subsumption claim)."""
        for level in ("u", "c", "s"):
            cau = cautious(mission_rel, level)
            cau_cells = {
                (t.value("starship"), attr, t.value(attr))
                for t in cau for attr in t.schema.attributes
            }
            for t in trusted(mission_rel, level):
                key = t.value("starship")
                group = trusted(mission_rel, level).with_key(key)
                if len(group) != 1:
                    continue  # forked: cautious forks too
                for attr in t.schema.attributes:
                    # The trusted value comes from the maximal TC; the
                    # cautious value from the maximal cell class -- at the
                    # cell level the maximal-TC tuple's cells are either
                    # chosen or outranked by an even higher cell.
                    classes = {
                        other.cls(attr)
                        for other in mission_rel
                        if other.key_values() == t.key_values()
                        and mission_rel.schema.lattice.leq(other.tc, level)
                    }
                    lattice = mission_rel.schema.lattice
                    if all(lattice.leq(c, t.cls(attr)) for c in classes):
                        assert (key, attr, t.value(attr)) in cau_cells
