"""Every code path shown in docs/TUTORIAL.md actually works as written."""

from repro.belief import cautious, firm, optimistic
from repro.lattice import military_chain
from repro.mls import (
    MLSRelation,
    MLSchema,
    SessionCursor,
    surprise_stories_at,
    view_at,
)
from repro.msql import WITHOUT_DOUBT_QUERY, Catalog, SqlSession
from repro.multilog import MultiLogSession
from repro.workloads import d1_database

SESSION_SOURCE = """
    level(u). level(c). level(s). order(u, c). order(c, s).

    u[mission(voyager : starship -u-> voyager; objective -u-> training;
              destination -u-> mars)].
    s[mission(voyager : starship -u-> voyager; objective -s-> spying;
              destination -u-> mars)].
"""


def test_section_1_views_and_surprise():
    schema = MLSchema("mission", ["starship", "objective", "destination"],
                      key="starship", lattice=military_chain())
    relation = MLSRelation(schema)
    at_u = SessionCursor(relation, "u")
    at_s = SessionCursor(relation, "s")
    at_u.insert({"starship": "voyager", "objective": "training",
                 "destination": "mars"})
    at_s.update({"starship": "voyager"}, {"objective": "spying"})

    assert [t.value("objective") for t in view_at(relation, "u")] == ["training"]
    assert sorted(t.value("objective") for t in view_at(relation, "s")) == \
        ["spying", "training"]

    at_u.delete({"starship": "voyager"})
    stories = surprise_stories_at(relation, "u")
    assert "voyager" in str(stories[0])
    assert "objective" in str(stories[0])


def test_section_2_beta(mission_rel):
    assert len(firm(mission_rel, "s")) == 5
    assert optimistic(mission_rel, "s").tuple_classes() == {"s"}
    assert len(cautious(mission_rel, "s")) >= 6


def test_section_3_language():
    session = MultiLogSession(SESSION_SOURCE, clearance="s")
    assert session.ask("s[mission(voyager : objective -C-> V)] << cau") == \
        [{"C": "s", "V": "spying"}]
    assert session.ask("u[mission(voyager : objective -C-> V)] << cau") == \
        [{"C": "u", "V": "training"}]
    variable_mode = session.ask("s[mission(voyager : objective -C-> V)] << M")
    assert {a["M"] for a in variable_mode} >= {"opt", "cau"}


def test_section_4_proof_tree():
    session = MultiLogSession(d1_database(), clearance="c")
    tree = session.prove("c[p(k : a -u-> v)] << opt")
    text = tree.pretty()
    for fragment in ("(BELIEF)", "(DESCEND-O)", "(DEDUCTION-G')",
                     "order(u, c)"):
        assert fragment in text


def test_section_5_reduction_agrees():
    session = MultiLogSession(SESSION_SOURCE, clearance="s")
    query = "s[mission(voyager : objective -C-> V)] << cau"
    assert session.ask(query) == session.ask(query, engine="reduction")
    assert "rel(" in session.reduced.program.pretty()


def test_section_6_user_mode_and_sql(mission_rel):
    session = MultiLogSession(SESSION_SOURCE, clearance="s")
    session.assert_clause(
        "bel(P, K, A, V, C, H, corroborated) :- "
        "bel(P, K, A, V, C, H, fir), bel(P, K, A, V, C, L, opt), order(L, H).")
    assert "corroborated" in session.modes
    session.ask("s[mission(K : objective -C-> V)] << corroborated")

    catalog = Catalog()
    catalog.register(mission_rel)
    sql = SqlSession(catalog, "s")
    results = sql.execute_script("user context s; " + WITHOUT_DOUBT_QUERY)
    assert results[-1].rows == [("voyager",)]
