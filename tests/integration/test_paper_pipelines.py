"""Cross-layer integration: the paper's claims exercised end to end."""

import pytest

from repro.belief import belief
from repro.mls import SessionCursor, surprise_stories_at, view_at
from repro.msql import WITHOUT_DOUBT_QUERY, Catalog, SqlSession
from repro.multilog import (
    MultiLogSession,
    check_equivalence,
    parse_query,
    relation_to_multilog,
)
from repro.workloads import mission_relation, mission_multilog


class TestThreePipelinesAgree:
    """Relational beta, the MultiLog operational engine and the Datalog
    reduction answer the same question identically."""

    @pytest.mark.parametrize("mode, sql_mode", [
        ("fir", "firmly"), ("opt", "optimistically"), ("cau", "cautiously")])
    @pytest.mark.parametrize("level", ["u", "c", "s"])
    def test_spies_on_mars(self, mode, sql_mode, level):
        relation, _ = mission_relation()

        # 1. Relational beta + python filtering.
        via_beta = {
            t.value("starship")
            for t in belief(relation, level, mode)
            if t.value("objective") == "spying" and t.value("destination") == "mars"
        }

        # 2. SQL front-end.
        catalog = Catalog()
        catalog.register(relation)
        result = SqlSession(catalog, level).execute(
            f"select starship from mission where objective = spying "
            f"and destination = mars believed {sql_mode}")
        via_sql = {row[0] for row in result}

        # 3. MultiLog (both engines).
        session = MultiLogSession(mission_multilog(), clearance=level)
        query = (f"{level}[mission(K : objective -C1-> spying)] << {mode}, "
                 f"{level}[mission(K : destination -C2-> mars)] << {mode}")
        via_operational = {a["K"] for a in session.ask(query)}
        via_reduction = {a["K"] for a in session.ask(query, engine="reduction")}

        assert via_beta == via_sql == via_operational == via_reduction


class TestSurpriseStoryLifecycle:
    """Insert -> covert update -> delete: the leak appears everywhere."""

    def test_end_to_end(self, ucst):
        from repro.mls import MLSRelation, MLSchema
        schema = MLSchema("ops", ["mission", "payload"], key="mission", lattice=ucst)
        relation = MLSRelation(schema)
        SessionCursor(relation, "u").insert({"mission": "m1", "payload": "food"})
        SessionCursor(relation, "s").update({"mission": "m1"}, {"payload": "arms"})
        SessionCursor(relation, "u").delete({"mission": "m1"})

        # Relational: U sees the gap.
        u_view = view_at(relation, "u")
        assert u_view.has_nulls()
        assert len(surprise_stories_at(relation, "u")) == 1

        # beta never shows the gap (no surprise stories by construction).
        for mode in ("fir", "opt", "cau"):
            assert not belief(relation, "u", mode).has_nulls()

        # MultiLog: the same database through the bridge agrees.
        db = relation_to_multilog(relation)
        session = MultiLogSession(db, "u")
        assert session.ask("u[ops(m1 : payload -C-> V)] << opt") == []
        high = MultiLogSession(db, "s")
        answers = high.ask("s[ops(m1 : payload -C-> V)] << cau")
        assert answers == [{"C": "s", "V": "arms"}]


class TestBeliefSpeculation:
    """An S analyst reconstructs lower-level beliefs (the paper's pitch)."""

    def test_cover_story_detected_via_multilog(self):
        session = MultiLogSession(mission_multilog(), clearance="s")
        u_belief = session.ask("u[mission(voyager : objective -C-> V)] << cau")
        s_belief = session.ask("s[mission(voyager : objective -C-> V)] << cau")
        assert {a["V"] for a in u_belief} == {"training"}
        assert {a["V"] for a in s_belief} == {"spying"}

    def test_speculation_is_read_down_only(self):
        session = MultiLogSession(mission_multilog(), clearance="c")
        assert session.ask("s[mission(K : objective -C-> V)] << cau") == []


class TestEquivalenceOnTheRunningExample:
    def test_theorem_61_holds_with_headline_queries(self):
        queries = [
            parse_query("s[mission(K : objective -C-> spying)] << cau"),
            parse_query("c[mission(K : objective -C-> V)] << fir"),
            parse_query("L[mission(atlantis : objective -C-> diplomacy)] << opt"),
        ]
        report = check_equivalence(mission_multilog(), "s", queries)
        assert report.equivalent, report.all_messages()


class TestHeadlineQueryMatchesMultiLog:
    def test_without_doubt_equals_mode_intersection(self):
        relation, _ = mission_relation()
        catalog = Catalog()
        catalog.register(relation)
        sql_answer = {
            row[0] for row in SqlSession(catalog, "s").execute(WITHOUT_DOUBT_QUERY)
        }
        session = MultiLogSession(mission_multilog(), clearance="s")
        multilog_answer = set.intersection(*[
            {a["K"] for a in session.ask(
                f"s[mission(K : objective -C1-> spying)] << {mode}, "
                f"s[mission(K : destination -C2-> mars)] << {mode}")}
            for mode in ("fir", "opt", "cau")
        ])
        assert sql_answer == multilog_answer == {"voyager"}
