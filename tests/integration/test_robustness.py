"""Failure injection and adversarial inputs across every layer."""

import pytest

from repro.errors import (
    AdmissibilityError,
    CycleError,
    DatalogError,
    MultiLogError,
    MultiLogSyntaxError,
    ReproError,
    StratificationError,
    UnknownLevelError,
    UnsafeRuleError,
)
from repro.lattice import SecurityLattice, chain
from repro.multilog import MultiLogSession, parse_database


class TestErrorHierarchy:
    """Every library error is catchable as ReproError at API boundaries."""

    @pytest.mark.parametrize("exc_type", [
        AdmissibilityError, CycleError, DatalogError, MultiLogError,
        MultiLogSyntaxError, StratificationError, UnknownLevelError,
        UnsafeRuleError,
    ])
    def test_subclassing(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_syntax_error_position_attributes(self):
        err = MultiLogSyntaxError("bad", line=3, column=7)
        assert err.line == 3
        assert "line 3" in str(err)


class TestAdversarialLattices:
    def test_deep_chain(self):
        lattice = chain([f"l{i}" for i in range(200)])
        assert lattice.leq("l0", "l199")
        assert len(lattice.down_set("l199")) == 200

    def test_wide_antichain_visibility(self):
        lattice = SecurityLattice([f"a{i}" for i in range(100)])
        assert lattice.incomparable_pairs()
        assert lattice.down_set("a0") == {"a0"}

    def test_long_cycle_detected(self):
        names = [f"n{i}" for i in range(50)]
        orders = list(zip(names, names[1:])) + [(names[-1], names[0])]
        with pytest.raises(CycleError):
            SecurityLattice(names, orders)


class TestAdversarialPrograms:
    def test_deep_rule_chain_terminates(self):
        lines = ["level(u)."]
        lines.append("u[p(k0 : a -u-> v0)].")
        for i in range(60):
            lines.append(
                f"u[p(k{i + 1} : a -u-> v{i + 1})] :- u[p(k{i} : a -u-> v{i})].")
        session = MultiLogSession("\n".join(lines), clearance="u")
        assert len(session.cells()) == 61

    def test_unicode_values_round_trip(self):
        session = MultiLogSession(
            "level(u). u[note(n1 : text -u-> 'héllo wörld — ünïcode')].",
            clearance="u")
        answers = session.ask("u[note(n1 : text -u-> V)]")
        assert answers[0]["V"] == "héllo wörld — ünïcode"
        reparsed = parse_database(str(session.database))
        assert MultiLogSession(reparsed, "u").ask("u[note(n1 : text -u-> V)]") == answers

    def test_numeric_values(self):
        session = MultiLogSession(
            "level(u). u[acct(a : balance -u-> 100)]. u[acct(b : balance -u-> 2.5)].",
            clearance="u")
        values = {a["B"] for a in session.ask("u[acct(K : balance -u-> B)]")}
        assert values == {100, 2.5}

    def test_empty_program(self):
        session = MultiLogSession("")
        assert session.cells() == []
        assert session.ask("level(L)") == [{"L": "system"}]

    def test_garbage_source_rejected_with_position(self):
        with pytest.raises(MultiLogSyntaxError):
            MultiLogSession("level(u). u[p(k : a => v)].")

    def test_many_levels_many_modes(self):
        levels = [f"l{i}" for i in range(12)]
        lines = [f"level({name})." for name in levels]
        lines += [f"order({a}, {b})." for a, b in zip(levels, levels[1:])]
        lines += [f"{name}[p(k : a -{name}-> v_{name})]." for name in levels]
        session = MultiLogSession("\n".join(lines), clearance="l11")
        assert len(session.believed_cells("opt")) == 12
        assert len(session.believed_cells("cau")) == 1
        assert len(session.believed_cells("fir")) == 1


class TestDatalogAdversarial:
    def test_large_fact_base(self):
        from repro.datalog import evaluate, parse_program
        facts = "\n".join(f"p(c{i})." for i in range(2000))
        db = evaluate(parse_program(facts))
        assert len(db.rows("p")) == 2000

    def test_rule_with_empty_relation(self):
        from repro.datalog import evaluate, parse_program
        db = evaluate(parse_program("q(X) :- missing(X). seed(a)."))
        assert db.rows("q") == set()

    def test_self_join_blowup_bounded(self):
        from repro.datalog import evaluate, parse_program
        program = parse_program(
            "n(1). n(2). n(3). n(4). n(5).\n"
            "pair(X, Y) :- n(X), n(Y).\n")
        assert len(evaluate(program).rows("pair")) == 25


class TestNoReadUpEverywhere:
    """Bell-LaPadula cannot be bypassed through any public surface."""

    SOURCE = """
        level(u). level(s). order(u, s).
        s[vault(gold : amount -s-> 999)].
    """

    def test_query_surface(self):
        low = MultiLogSession(self.SOURCE, clearance="u")
        assert low.ask("s[vault(gold : amount -C-> V)] << opt") == []
        assert low.ask("L[vault(gold : amount -C-> V)] << opt") == []
        assert low.ask("u[vault(gold : amount -C-> V)] << cau") == []

    def test_reduction_surface(self):
        low = MultiLogSession(self.SOURCE, clearance="u")
        assert low.ask("s[vault(gold : amount -C-> V)] << opt",
                       engine="reduction") == []

    def test_cells_surface(self):
        low = MultiLogSession(self.SOURCE, clearance="u")
        assert low.cells() == []

    def test_believed_cells_surface(self):
        low = MultiLogSession(self.SOURCE, clearance="u")
        with pytest.raises(MultiLogError, match="read-up"):
            low.believed_cells("opt", "s")

    def test_proof_surface(self):
        low = MultiLogSession(self.SOURCE, clearance="u")
        assert low.prove("s[vault(gold : amount -s-> 999)] << fir") is None

    def test_high_session_sees_it_all(self):
        high = MultiLogSession(self.SOURCE, clearance="s")
        assert high.ask("s[vault(gold : amount -C-> V)] << fir") == [
            {"C": "s", "V": 999}]
