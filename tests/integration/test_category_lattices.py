"""Full Bell-LaPadula access classes (hierarchy x categories) end to end.

Section 2 defines access classes as pairs of a hierarchy level and a
category set, ordered component-wise; the paper then drops categories
"without the loss of any generality".  These tests put them back: the
product lattice flows through the MLS layer, beta, MultiLog (its labels
contain '/' and '+', exercising the quoted-term path) and both
semantics.
"""

import pytest

from repro.belief import cautious, optimistic
from repro.lattice import access_class_lattice
from repro.mls import MLSRelation, MLSchema, SessionCursor
from repro.multilog import (
    MultiLogSession,
    check_equivalence,
    relation_to_multilog,
)


@pytest.fixture()
def access_classes():
    # u/none < u/army < s/army ; u/none < s/none < s/army
    return access_class_lattice(["u", "s"], ["army"])


@pytest.fixture()
def intel(access_classes):
    schema = MLSchema("intel", ["topic", "assessment"], key="topic",
                      lattice=access_classes)
    relation = MLSRelation(schema)
    public = SessionCursor(relation, "u/none")
    army_secret = SessionCursor(relation, "s/army")
    public.insert({"topic": "border", "assessment": "calm"})
    army_secret.update({"topic": "border"}, {"assessment": "mobilizing"})
    return relation


class TestLatticeShape:
    def test_component_wise_order(self, access_classes):
        assert access_classes.leq("u/none", "s/army")
        assert not access_classes.comparable("u/army", "s/none")

    def test_is_lattice(self, access_classes):
        assert access_classes.is_lattice()


class TestRelationalLayer:
    def test_category_compartmentalization(self, intel):
        """s/none dominates neither cell of the army assessment."""
        beliefs = cautious(intel, "s/none")
        assert {t.value("assessment") for t in beliefs} == {"calm"}

    def test_full_clearance_sees_override(self, intel):
        beliefs = cautious(intel, "s/army")
        assert {t.value("assessment") for t in beliefs} == {"mobilizing"}

    def test_optimistic_across_compartments(self, intel):
        assert len(optimistic(intel, "s/army")) == 2


class TestMultiLogOverProductLabels:
    def test_bridge_round_trip_with_slash_labels(self, intel):
        db = relation_to_multilog(intel)
        session = MultiLogSession(db, "s/army")
        answers = session.ask(
            "'s/army'[intel(border : assessment -C-> V)] << cau")
        assert answers == [{"C": "s/army", "V": "mobilizing"}]

    def test_quoted_labels_survive_serialization(self, intel):
        from repro.multilog import parse_database
        db = relation_to_multilog(intel)
        reparsed = parse_database(str(db))
        session = MultiLogSession(reparsed, "s/army")
        assert session.holds(
            "'u/none'[intel(border : assessment -'u/none'-> calm)] << fir")

    def test_equivalence_on_product_lattice(self, intel):
        db = relation_to_multilog(intel)
        for level in ("u/none", "u/army", "s/none", "s/army"):
            report = check_equivalence(db, level)
            assert report.equivalent, report.all_messages()

    def test_belief_speculation_across_compartments(self, intel):
        db = relation_to_multilog(intel)
        session = MultiLogSession(db, "s/army")
        # What does the uncompartmented secret analyst believe?
        answers = session.ask(
            "'s/none'[intel(border : assessment -C-> V)] << cau")
        assert {a["V"] for a in answers} == {"calm"}
