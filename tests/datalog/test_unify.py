"""Unit tests for substitutions, matching and unification."""

from repro.datalog import (
    Constant,
    Variable,
    apply_to_atom,
    atom,
    match_atom,
    unify_atoms,
    unify_terms,
)
from repro.datalog.unify import walk


class TestWalk:
    def test_resolves_chains(self):
        subst = {Variable("X"): Variable("Y"), Variable("Y"): Constant(1)}
        assert walk(Variable("X"), subst) == Constant(1)

    def test_unbound_variable_unchanged(self):
        assert walk(Variable("X"), {}) == Variable("X")


class TestUnifyTerms:
    def test_var_binds_constant(self):
        subst = unify_terms(Variable("X"), Constant("a"), {})
        assert subst == {Variable("X"): Constant("a")}

    def test_constant_binds_var(self):
        subst = unify_terms(Constant("a"), Variable("X"), {})
        assert subst == {Variable("X"): Constant("a")}

    def test_equal_constants(self):
        assert unify_terms(Constant("a"), Constant("a"), {}) == {}

    def test_distinct_constants_fail(self):
        assert unify_terms(Constant("a"), Constant("b"), {}) is None

    def test_var_var_aliasing(self):
        subst = unify_terms(Variable("X"), Variable("Y"), {})
        extended = unify_terms(Variable("X"), Constant(1), subst)
        assert walk(Variable("Y"), extended) == Constant(1)

    def test_input_not_mutated(self):
        base = {}
        unify_terms(Variable("X"), Constant("a"), base)
        assert base == {}

    def test_respects_existing_bindings(self):
        subst = {Variable("X"): Constant("a")}
        assert unify_terms(Variable("X"), Constant("b"), subst) is None
        assert unify_terms(Variable("X"), Constant("a"), subst) == subst


class TestUnifyAtoms:
    def test_basic(self):
        subst = unify_atoms(atom("p", "X", "b"), atom("p", "a", "Y"))
        assert walk(Variable("X"), subst) == Constant("a")
        assert walk(Variable("Y"), subst) == Constant("b")

    def test_predicate_mismatch(self):
        assert unify_atoms(atom("p", "X"), atom("q", "X")) is None

    def test_arity_mismatch(self):
        assert unify_atoms(atom("p", "X"), atom("p", "X", "Y")) is None

    def test_shared_variable_consistency(self):
        assert unify_atoms(atom("p", "X", "X"), atom("p", "a", "b")) is None
        assert unify_atoms(atom("p", "X", "X"), atom("p", "a", "a")) is not None


class TestMatchAtom:
    def test_binds_pattern_variables(self):
        subst = match_atom(atom("p", "X", "b"), ("a", "b"), {})
        assert subst == {Variable("X"): Constant("a")}

    def test_constant_mismatch(self):
        assert match_atom(atom("p", "a"), ("b",), {}) is None

    def test_arity_mismatch(self):
        assert match_atom(atom("p", "X"), ("a", "b"), {}) is None

    def test_repeated_variable(self):
        assert match_atom(atom("p", "X", "X"), ("a", "a"), {}) is not None
        assert match_atom(atom("p", "X", "X"), ("a", "b"), {}) is None

    def test_prebound_variable(self):
        subst = {Variable("X"): Constant("a")}
        assert match_atom(atom("p", "X"), ("a",), subst) is not None
        assert match_atom(atom("p", "X"), ("b",), subst) is None


class TestApply:
    def test_apply_to_atom(self):
        subst = {Variable("X"): Constant("a")}
        assert apply_to_atom(atom("p", "X", "Y"), subst) == atom("p", "a", "Y")
