"""Backend differential tests: dict and columnar answers are identical.

The columnar backend re-implements storage with interned codes, column
arrays and batch hash joins; the vectorized strategy re-implements rule
firing with whole-delta pipelines.  These tests pin both to the row
semantics: every (strategy, backend) combination must produce the same
total model on the golden corner corpus, on random workloads, and on
interleaved session assert/ask traces.
"""

import pytest

from repro.datalog import (
    BACKEND_ENV,
    ColumnarDatabase,
    Database,
    evaluate,
    make_database,
    parse_program,
    resolve_backend,
)
from repro.errors import DatalogError
from repro.multilog import MultiLogSession
from repro.obs.explain import explain_program
from repro.workloads.generator import random_datalog_program

from .test_compiled_differential import CORNER_CASES, full_model

#: Every (strategy, backend) pair that must agree.  The vectorized
#: strategy only runs columnar; the row strategies run on both.
MATRIX = [
    ("naive", "dict"),
    ("seminaive", "dict"),
    ("compiled", "dict"),
    ("naive", "columnar"),
    ("seminaive", "columnar"),
    ("compiled", "columnar"),
    ("vectorized", "columnar"),
]

RANDOM_CASES = [
    (shape, seed)
    for shape in ("chain", "tree", "random")
    for seed in range(4)
]


def models_for(text):
    return [
        full_model(evaluate(parse_program(text), strategy, backend=backend))
        for strategy, backend in MATRIX
    ]


@pytest.mark.parametrize("text", CORNER_CASES)
def test_corner_cases_agree_across_backends(text):
    models = models_for(text)
    for model, (strategy, backend) in zip(models[1:], MATRIX[1:]):
        assert model == models[0], f"{strategy}/{backend} diverged"


@pytest.mark.parametrize("shape,seed", RANDOM_CASES)
def test_random_programs_agree_across_backends(shape, seed):
    text = random_datalog_program(6 + (seed % 9), shape, seed=seed)
    models = models_for(text)
    for model, (strategy, backend) in zip(models[1:], MATRIX[1:]):
        assert model == models[0], f"{strategy}/{backend} diverged"


class TestBackendSelection:
    def test_make_database_dispatches(self):
        assert isinstance(make_database("dict"), Database)
        assert isinstance(make_database("columnar"), ColumnarDatabase)
        assert make_database("columnar").backend == "columnar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(DatalogError):
            resolve_backend("rowstore")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "columnar")
        assert resolve_backend() == "columnar"
        db = evaluate(parse_program("e(a, b). p(X) :- e(X, Y)."))
        assert db.backend == "columnar"
        # An explicit argument still wins over the environment.
        assert resolve_backend("dict") == "dict"

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "parquet")
        with pytest.raises(DatalogError):
            resolve_backend()

    def test_vectorized_requires_columnar(self):
        program = parse_program("e(a, b). p(X) :- e(X, Y).")
        with pytest.raises(DatalogError, match="columnar"):
            evaluate(program, "vectorized", backend="dict")
        # Unspecified backend is fine: vectorized implies columnar.
        assert evaluate(program, "vectorized").backend == "columnar"


class TestColumnarStore:
    def test_interning_collapses_equal_values(self):
        # 1, 1.0 and True are equal (and hash alike) in Python; the dict
        # backend's sets collapse them, so the intern table must too.
        db = ColumnarDatabase()
        db.add("n", (1,))
        db.add("n", (1.0,))
        db.add("n", (True,))
        assert len(db) == 1
        assert db.rows("n") == {(1,)}

    def test_add_facts_bulk_load_bumps_version_once(self):
        for db in (Database(), ColumnarDatabase()):
            before = db.version
            added = db.add_facts("e", [("a", "b"), ("b", "c"), ("a", "b")])
            assert added == 2
            assert db.version == before + 1
            assert db.rows("e") == {("a", "b"), ("b", "c")}
            # A no-op load (all duplicates) does not bump at all.
            assert db.add_facts("e", [("a", "b")]) == 0
            assert db.version == before + 1

    def test_batch_counters_move_under_vectorized(self):
        text = """
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        """
        db = evaluate(parse_program(text), "vectorized")
        assert db.batch_probe_count > 0
        assert db.batch_build_count > 0


class TestExplainBackend:
    PROGRAM = """
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    """

    def test_dict_plans_are_row_loops(self):
        text = explain_program(parse_program(self.PROGRAM), backend="dict")
        assert "row loop" in text
        assert "batch hash join" not in text

    def test_columnar_plans_are_batch_pipelines(self):
        text = explain_program(parse_program(self.PROGRAM), backend="columnar")
        assert "batch hash join" in text
        assert "row loop" not in text


MLOG_SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

#: An interleaved assert/ask trace: both sessions replay it in lockstep
#: and must agree after every step (cold and warm memo paths alike).
TRACE = [
    ("ask", "s[acct(alice : balance -C-> B)] << cau"),
    ("assert", "u[acct(bob : name -u-> bob)]."),
    ("assert", "u[acct(bob : balance -u-> 55)]."),
    ("ask", "s[acct(bob : balance -C-> B)] << cau"),
    ("ask", "s[acct(K : name -C-> V)] << opt"),
    ("assert", "s[acct(bob : balance -s-> 770)]."),
    ("ask", "s[acct(bob : balance -C-> B)] << cau"),
    ("ask", "s[acct(K : balance -C-> B)] << fir"),
]


def canon(answers):
    return sorted(tuple(sorted(a.items())) for a in answers)


class TestSessionBackend:
    @pytest.mark.parametrize("engine", ["operational", "reduction"])
    def test_interleaved_trace_agrees(self, engine):
        # Both backends pinned explicitly: the differential must hold
        # regardless of what MULTILOG_BACKEND says (the CI backend
        # matrix runs this file under both values).
        dict_session = MultiLogSession(MLOG_SOURCE, clearance="s",
                                       backend="dict")
        col_session = MultiLogSession(MLOG_SOURCE, clearance="s",
                                      backend="columnar")
        assert dict_session.backend == "dict"
        assert col_session.backend == "columnar"
        for step, (op, text) in enumerate(TRACE):
            if op == "assert":
                dict_session.assert_clause(text)
                col_session.assert_clause(text)
                continue
            expected = canon(dict_session.ask(text, engine=engine))
            got = canon(col_session.ask(text, engine=engine))
            assert got == expected, f"step {step}: {text!r} diverged"

    def test_columnar_stats_and_metrics_expose_batch_ops(self):
        session = MultiLogSession(MLOG_SOURCE, clearance="s",
                                  backend="columnar")
        session.enable_telemetry()
        session.ask("s[acct(alice : balance -C-> B)] << cau",
                    engine="reduction")
        stats = session.last_stats()
        assert stats.batch_probes > 0
        assert stats.batch_builds > 0
        assert "batch ops:" in stats.summary()
        text = session.metrics_text()
        assert "multilog_batch_probes_total" in text
        assert "multilog_batch_builds_total" in text

    def test_with_clearance_carries_the_backend(self):
        session = MultiLogSession(MLOG_SOURCE, clearance="s",
                                  backend="columnar")
        assert session.with_clearance("u").backend == "columnar"
