"""Unit tests for composite indexes, selectivity-aware probing and the
version counter on :class:`repro.datalog.Database`."""

from repro.datalog import Database, atom


def make_skewed():
    """p/2 where column 0 is constant ('hot') and column 1 is distinct."""
    db = Database()
    for i in range(50):
        db.add("p", ("hot", f"k{i}"))
    return db


class TestSelectivityProbe:
    def test_probes_most_selective_bound_position(self):
        db = make_skewed()
        # Both positions bound: position 0's bucket holds all 50 rows,
        # position 1's holds exactly one -- the probe must pick column 1.
        rows = list(db.candidates(atom("p", "hot", "k7"), {}))
        assert rows == [("hot", "k7")]

    def test_skewed_probe_returns_small_bucket_not_hot_column(self):
        db = make_skewed()
        # A blindly-first-bound probe would scan the 50-row 'hot' bucket;
        # the selective probe must hand back a single-row candidate set.
        assert len(list(db.candidates(atom("p", "hot", "k3"), {}))) == 1

    def test_zero_bucket_short_circuits(self):
        db = make_skewed()
        assert list(db.candidates(atom("p", "cold", "X"), {})) == []

    def test_unbound_scans_all(self):
        db = make_skewed()
        assert len(list(db.candidates(atom("p", "X", "Y"), {}))) == 50


class TestCompositeIndex:
    def test_bucket_probe(self):
        db = Database()
        db.add("r", ("a", 1, "x"))
        db.add("r", ("a", 2, "x"))
        db.add("r", ("b", 1, "x"))
        assert sorted(db.bucket("r", (0, 1), ("a", 1))) == [("a", 1, "x")]
        assert sorted(db.bucket("r", (0, 2), ("a", "x"))) == [
            ("a", 1, "x"), ("a", 2, "x")]
        assert list(db.bucket("r", (0, 1), ("c", 9))) == []

    def test_index_stays_in_sync_after_adds(self):
        db = Database()
        db.add("r", ("a", 1))
        assert len(list(db.bucket("r", (0,), ("a",)))) == 1  # build lazily
        db.add("r", ("a", 2))  # incremental maintenance
        assert len(list(db.bucket("r", (0,), ("a",)))) == 2

    def test_copy_preserves_indexes_independently(self):
        db = Database()
        db.add("r", ("a", 1))
        db.index("r", (0,))
        clone = db.copy()
        clone.add("r", ("a", 2))
        assert len(list(clone.bucket("r", (0,), ("a",)))) == 2
        assert len(list(db.bucket("r", (0,), ("a",)))) == 1

    def test_merge_maintains_indexes(self):
        a = Database()
        a.add("r", ("a", 1))
        a.index("r", (1,))
        b = Database()
        b.add("r", ("a", 1))  # duplicate: must not double-index
        b.add("r", ("b", 1))
        a.merge(b)
        assert len(a) == 2
        assert sorted(a.bucket("r", (1,), (1,))) == [("a", 1), ("b", 1)]


class TestVersionCounter:
    def test_version_bumps_on_new_fact_only(self):
        db = Database()
        v0 = db.version
        assert db.add("p", ("a",))
        assert db.version == v0 + 1
        assert not db.add("p", ("a",))  # duplicate: no bump
        assert db.version == v0 + 1

    def test_merge_bumps_per_fresh_row(self):
        a = Database()
        a.add("p", ("x",))
        b = Database()
        b.add("p", ("x",))
        b.add("p", ("y",))
        v = a.version
        a.merge(b)
        assert a.version == v + 1  # only ('y',) was new

    def test_copy_carries_version(self):
        db = Database()
        db.add("p", ("a",))
        assert db.copy().version == db.version
