"""Unit tests for the demand-driven engine and magic-sets rewriting."""

import pytest

from repro.datalog import (
    TopDownEngine,
    answer_rows,
    evaluate,
    magic_query,
    magic_transform,
    parse_atom,
    parse_program,
)

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d). parent(x, y).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""

LEFT_RECURSIVE = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
"""


class TestTopDown:
    def test_matches_bottom_up(self):
        prog = parse_program(ANCESTOR)
        goal = parse_atom("ancestor(a, X)")
        assert TopDownEngine(prog).answer_rows(goal) == \
            answer_rows(evaluate(prog), goal)

    def test_left_recursion_terminates(self):
        engine = TopDownEngine(parse_program(LEFT_RECURSIVE))
        assert len(engine.answer_rows(parse_atom("path(a, X)"))) == 3

    def test_only_reachable_predicates_computed(self):
        prog = parse_program(LEFT_RECURSIVE + """
            unrelated(X) :- expensive(X).
            expensive(q).
        """)
        engine = TopDownEngine(prog)
        engine.answer_rows(parse_atom("path(a, X)"))
        assert "unrelated" not in engine._memo

    def test_negation(self):
        prog = parse_program("""
            node(a). node(b).
            edge(a, b).
            hassucc(X) :- edge(X, Y).
            sink(X) :- node(X), not hassucc(X).
        """)
        engine = TopDownEngine(prog)
        assert engine.answer_rows(parse_atom("sink(X)")) == {("b",)}

    def test_ground_goal(self):
        engine = TopDownEngine(parse_program(ANCESTOR))
        assert engine.answer_rows(parse_atom("ancestor(a, d)")) == {("a", "d")}
        assert engine.answer_rows(parse_atom("ancestor(d, a)")) == set()

    def test_edb_goal(self):
        engine = TopDownEngine(parse_program(ANCESTOR))
        assert engine.answer_rows(parse_atom("parent(a, X)")) == {("a", "b")}

    def test_memo_reused_across_queries(self):
        engine = TopDownEngine(parse_program(ANCESTOR))
        engine.answer_rows(parse_atom("ancestor(a, X)"))
        assert "ancestor" in engine._complete
        assert engine.answer_rows(parse_atom("ancestor(x, X)")) == {("x", "y")}

    def test_unstratifiable_rejected_up_front(self):
        from repro.errors import StratificationError
        prog = parse_program("p(X) :- base(X), not p(X). base(a).")
        with pytest.raises(StratificationError):
            TopDownEngine(prog)


class TestMagic:
    def test_bound_first_argument(self):
        prog = parse_program(ANCESTOR)
        goal = parse_atom("ancestor(a, X)")
        assert magic_query(prog, goal) == answer_rows(evaluate(prog), goal)

    def test_bound_second_argument(self):
        prog = parse_program(ANCESTOR)
        goal = parse_atom("ancestor(X, d)")
        assert magic_query(prog, goal) == answer_rows(evaluate(prog), goal)

    def test_fully_free_goal(self):
        prog = parse_program(ANCESTOR)
        goal = parse_atom("ancestor(X, Y)")
        assert magic_query(prog, goal) == answer_rows(evaluate(prog), goal)

    def test_fully_bound_goal(self):
        prog = parse_program(ANCESTOR)
        assert magic_query(prog, parse_atom("ancestor(a, d)")) == {("a", "d")}
        assert magic_query(prog, parse_atom("ancestor(a, q)")) == set()

    def test_demand_pruning_actually_prunes(self):
        """The magic program derives fewer ancestor facts than full bottom-up."""
        prog = parse_program(ANCESTOR)
        magic = magic_transform(prog, parse_atom("ancestor(x, X)"))
        db = evaluate(magic.program)
        derived = {
            row for pred in db.predicates() if pred.startswith("ancestor__")
            for row in db.rows(pred)
        }
        full = evaluate(prog).rows("ancestor")
        assert derived < full

    def test_facts_of_idb_predicate_bridged(self):
        prog = parse_program("""
            ancestor(e, f).
            parent(a, b). parent(b, c).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
        """)
        goal = parse_atom("ancestor(e, X)")
        assert magic_query(prog, goal) == {("e", "f")}

    def test_predicate_defined_by_negation_left_verbatim(self):
        prog = parse_program("""
            node(a). node(b). edge(a, b).
            linked(X) :- edge(X, Y).
            lonely(X) :- node(X), not linked(X).
        """)
        goal = parse_atom("lonely(X)")
        assert magic_query(prog, goal) == {("b",)}

    def test_goal_through_builtin_comparison(self):
        prog = parse_program("""
            n(1). n(2). n(5).
            big(X) :- n(X), X > 1.
        """)
        assert magic_query(prog, parse_atom("big(X)")) == {(2,), (5,)}

    def test_same_generation_bf(self):
        prog = parse_program("""
            flat(g1, g2).
            up(a, g1). down(g2, b).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        """)
        goal = parse_atom("sg(a, X)")
        assert magic_query(prog, goal) == answer_rows(evaluate(prog), goal)
