"""Unit tests for dependency analysis and stratification."""

import pytest

from repro.datalog import Program, Rule, atom, dependencies, neg, pos, strata, stratify
from repro.errors import StratificationError


def program(*rules):
    return Program(rules)


class TestDependencies:
    def test_edges_with_polarity(self):
        prog = program(Rule(atom("p", "X"), (pos("q", "X"), neg("r", "X"))))
        edges = {(d.head, d.body, d.negative) for d in dependencies(prog)}
        assert edges == {("p", "q", False), ("p", "r", True)}

    def test_builtins_excluded(self):
        prog = program(Rule(atom("p", "X"), (pos("q", "X"), pos("<", "X", 3))))
        assert {d.body for d in dependencies(prog)} == {"q"}


class TestStratify:
    def test_positive_recursion_single_stratum(self):
        prog = program(
            Rule(atom("path", "X", "Y"), (pos("edge", "X", "Y"),)),
            Rule(atom("path", "X", "Y"), (pos("path", "X", "Z"), pos("edge", "Z", "Y"))),
        )
        assignment = stratify(prog)
        assert assignment["path"] == assignment["edge"] == 0

    def test_negation_bumps_stratum(self):
        prog = program(
            Rule(atom("p", "X"), (pos("base", "X"), neg("q", "X"))),
            Rule(atom("q", "X"), (pos("base", "X"),)),
        )
        assignment = stratify(prog)
        assert assignment["q"] < assignment["p"]

    def test_chain_of_negations(self):
        prog = program(
            Rule(atom("a", "X"), (pos("base", "X"), neg("b", "X"))),
            Rule(atom("b", "X"), (pos("base", "X"), neg("c", "X"))),
            Rule(atom("c", "X"), (pos("base", "X"),)),
        )
        assignment = stratify(prog)
        assert assignment["c"] < assignment["b"] < assignment["a"]

    def test_negative_self_loop_rejected(self):
        prog = program(Rule(atom("p", "X"), (pos("base", "X"), neg("p", "X"))))
        with pytest.raises(StratificationError):
            stratify(prog)

    def test_negative_cycle_through_positive_edges_rejected(self):
        prog = program(
            Rule(atom("p", "X"), (pos("q", "X"),)),
            Rule(atom("q", "X"), (pos("base", "X"), neg("p", "X"))),
        )
        with pytest.raises(StratificationError):
            stratify(prog)

    def test_error_names_a_predicate(self):
        prog = program(Rule(atom("p", "X"), (pos("base", "X"), neg("p", "X"))))
        with pytest.raises(StratificationError, match="p"):
            stratify(prog)

    def test_strata_grouping(self):
        prog = program(
            Rule(atom("p", "X"), (pos("base", "X"), neg("q", "X"))),
            Rule(atom("q", "X"), (pos("base", "X"),)),
        )
        groups = strata(prog)
        assert groups[0] == ["base", "q"]
        assert groups[1] == ["p"]

    def test_facts_only_program(self):
        prog = Program(facts=[atom("p", "a")])
        assert stratify(prog) == {"p": 0}

    def test_multilog_engine_axioms_are_stratified(self):
        from repro.multilog import engine_axioms
        assignment = stratify(Program(engine_axioms()))
        assert assignment["outranked"] < assignment["bel"]
