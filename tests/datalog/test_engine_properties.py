"""Property tests: the three evaluation strategies agree on random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    TopDownEngine,
    answer_rows,
    evaluate,
    magic_query,
    parse_atom,
    parse_program,
)
from repro.workloads.generator import random_datalog_program


programs = st.builds(
    random_datalog_program,
    n_nodes=st.integers(min_value=2, max_value=14),
    shape=st.sampled_from(["chain", "tree", "random"]),
    seed=st.integers(min_value=0, max_value=5_000),
)


@given(programs)
@settings(max_examples=40, deadline=None)
def test_naive_equals_seminaive(text):
    prog = parse_program(text)
    assert evaluate(prog, "naive").rows("path") == \
        evaluate(prog, "seminaive").rows("path")


@given(programs)
@settings(max_examples=40, deadline=None)
def test_topdown_equals_bottomup(text):
    prog = parse_program(text)
    goal = parse_atom("path(X, Y)")
    assert TopDownEngine(prog).answer_rows(goal) == \
        answer_rows(evaluate(prog), goal)


@given(programs, st.integers(min_value=0, max_value=13))
@settings(max_examples=40, deadline=None)
def test_magic_equals_bottomup_on_bound_goal(text, start):
    prog = parse_program(text)
    goal = parse_atom(f"path(n{start}, X)")
    assert magic_query(parse_program(text), goal) == \
        answer_rows(evaluate(prog), goal)


@given(programs)
@settings(max_examples=30, deadline=None)
def test_fixpoint_is_idempotent(text):
    """Evaluating twice derives nothing new (the model is a fixpoint)."""
    prog = parse_program(text)
    db = evaluate(prog)
    for fact in list(db.as_atoms()):
        prog.add_fact(fact)
    assert evaluate(prog).rows("path") == db.rows("path")


@given(programs)
@settings(max_examples=30, deadline=None)
def test_model_is_supported(text):
    """Every derived path fact has a one-step derivation in the model."""
    prog = parse_program(text)
    db = evaluate(prog)
    edges = db.rows("edge")
    paths = db.rows("path")
    for x, y in paths:
        direct = (x, y) in edges
        composed = any((x, z) in paths and (z, y) in edges for z in
                       {row[1] for row in paths if row[0] == x})
        assert direct or composed
