"""Unit tests for rules, programs and the safety (range-restriction) check."""

import pytest

from repro.datalog import Program, Rule, atom, neg, pos
from repro.errors import UnsafeRuleError


class TestRule:
    def test_fact_detection(self):
        assert Rule(atom("p", "a")).is_fact
        assert not Rule(atom("p", "X"), (pos("q", "X"),)).is_fact

    def test_body_partitions(self):
        rule = Rule(atom("p", "X"), (pos("q", "X"), neg("r", "X"), pos("<", "X", 3)))
        assert [l.predicate for l in rule.positive_body()] == ["q"]
        assert [l.predicate for l in rule.negative_body()] == ["r"]

    def test_variables(self):
        rule = Rule(atom("p", "X"), (pos("q", "X", "Y"),))
        assert {v.name for v in rule.variables()} == {"X", "Y"}

    def test_repr(self):
        rule = Rule(atom("p", "X"), (pos("q", "X"),))
        assert ":-" in repr(rule)


class TestSafety:
    def test_safe_rule_passes(self):
        Rule(atom("p", "X"), (pos("q", "X"),)).check_safety()

    def test_unbound_head_variable(self):
        with pytest.raises(UnsafeRuleError, match="head variable"):
            Rule(atom("p", "X", "Y"), (pos("q", "X"),)).check_safety()

    def test_unbound_negated_variable(self):
        with pytest.raises(UnsafeRuleError, match="negated"):
            Rule(atom("p", "X"), (pos("q", "X"), neg("r", "X", "Z"))).check_safety()

    def test_unbound_builtin_variable(self):
        with pytest.raises(UnsafeRuleError, match="built-in"):
            Rule(atom("p", "X"), (pos("q", "X"), pos("<", "X", "Z"))).check_safety()

    def test_negated_ground_literal_is_safe(self):
        Rule(atom("p", "X"), (pos("q", "X"), neg("r", "a"))).check_safety()

    def test_constants_in_head_are_safe(self):
        Rule(atom("p", "a")).check_safety()

    def test_figure12_literal_axioms_rejected(self):
        from repro.multilog import figure12_axioms
        with pytest.raises(UnsafeRuleError):
            Program(figure12_axioms()).check_safety()

    def test_repaired_axioms_pass(self):
        from repro.multilog import engine_axioms
        Program(engine_axioms()).check_safety()


class TestSafetyViolations:
    """The collect-all path behind the analyzer (satellite of ML002/ML003)."""

    def test_safe_rule_has_no_violations(self):
        assert Rule(atom("p", "X"), (pos("q", "X"),)).safety_violations() == []

    def test_all_defects_collected(self):
        rule = Rule(atom("p", "X", "Y"),
                    (pos("q", "X"), neg("r", "Z"), pos("<", "W", 3)))
        kinds = [v.kind for v in rule.safety_violations()]
        assert kinds == ["head", "negated", "built-in"]

    def test_messages_match_the_raising_path(self):
        rule = Rule(atom("p", "X", "Y"), (pos("q", "X"),))
        [violation] = rule.safety_violations()
        with pytest.raises(UnsafeRuleError) as exc:
            rule.check_safety()
        assert str(exc.value) == violation.message()

    def test_program_wide_collection(self):
        program = Program([
            Rule(atom("p", "X", "Y"), (pos("q", "X"),)),
            Rule(atom("r", "A"), (pos("q", "A"), neg("s", "B"))),
            Rule(atom("t", "C"), (pos("q", "C"),)),     # safe
        ])
        violations = program.safety_violations()
        assert len(violations) == 2
        assert {v.rule.head.predicate for v in violations} == {"p", "r"}


class TestArityClashRegression:
    """``Program.add_rule`` accepts p/2 next to p/3; the analyzer flags it."""

    def test_add_rule_still_accepts_clash_silently(self):
        # The permissive behaviour is load-bearing (the tau reduction
        # builds programs incrementally); detection is the analyzer's job.
        program = Program([Rule(atom("p", "X"), (pos("q", "X"),))],
                          [atom("p", "a", "b"), atom("q", "a")])
        assert len(program.rules) == 1 and len(program.facts) == 2

    def test_analyzer_reports_the_clash(self):
        from repro.analysis import analyze_program
        program = Program([Rule(atom("p", "X"), (pos("q", "X"),))],
                          [atom("p", "a", "b"), atom("q", "a")])
        report = analyze_program(program)
        [clash] = report.by_code("ML004")
        assert "'p'" in clash.message and "1" in clash.message and "2" in clash.message

    def test_body_only_clash_detected(self):
        from repro.analysis import analyze_program
        program = Program([Rule(atom("r", "X"), (pos("q", "X", "Y"),))],
                          [atom("q", "a")])
        report = analyze_program(program)
        assert report.by_code("ML004")


class TestProgram:
    def test_ground_empty_body_rules_become_facts(self):
        program = Program([Rule(atom("p", "a"))])
        assert len(program.facts) == 1
        assert len(program.rules) == 0

    def test_non_ground_fact_rejected(self):
        program = Program()
        with pytest.raises(UnsafeRuleError):
            program.add_fact(atom("p", "X"))

    def test_builtin_fact_rejected(self):
        program = Program(facts=[atom("<", 1, 2)])
        with pytest.raises(UnsafeRuleError):
            program.check_safety()

    def test_predicates(self):
        program = Program(
            [Rule(atom("p", "X"), (pos("q", "X"), neg("r", "X")))],
            [atom("q", "a")],
        )
        assert program.predicates() == {"p", "q", "r"}

    def test_idb_predicates(self):
        program = Program(
            [Rule(atom("p", "X"), (pos("q", "X"),))], [atom("q", "a")])
        assert program.idb_predicates() == {"p"}

    def test_rules_for(self):
        rule = Rule(atom("p", "X"), (pos("q", "X"),))
        program = Program([rule])
        assert program.rules_for("p") == [rule]
        assert program.rules_for("q") == []

    def test_extend(self):
        a = Program(facts=[atom("p", "a")])
        b = Program(facts=[atom("q", "b")])
        merged = a.extend(b)
        assert len(merged) == 2
        assert len(a) == 1

    def test_pretty_lists_facts_first(self):
        program = Program(
            [Rule(atom("p", "X"), (pos("q", "X"),))], [atom("q", "a")])
        text = program.pretty()
        assert text.index("q(a)") < text.index(":-")
