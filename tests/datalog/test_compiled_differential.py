"""Differential tests: naive, semi-naive and compiled evaluation agree.

The compiled path (:mod:`repro.datalog.plan`) re-implements body matching
with generated code, slot environments and composite indexes -- these
tests pin it to the interpreted semantics on random programs and on the
hand-written corner cases codegen is most likely to get wrong.
"""

import pytest

from repro.datalog import evaluate, parse_program
from repro.workloads.generator import random_datalog_program

STRATEGIES = ("naive", "seminaive", "compiled")


def full_model(db):
    """Every derived row, keyed by predicate (total-model comparison)."""
    return {p: db.rows(p) for p in db.predicates()}


# 27 random programs: 9 seeds x 3 shapes.
RANDOM_CASES = [
    (shape, seed)
    for shape in ("chain", "tree", "random")
    for seed in range(9)
]


@pytest.mark.parametrize("shape,seed", RANDOM_CASES)
def test_random_programs_agree(shape, seed):
    text = random_datalog_program(6 + (seed % 9), shape, seed=seed)
    models = [
        full_model(evaluate(parse_program(text), strategy))
        for strategy in STRATEGIES
    ]
    assert models[0] == models[1] == models[2]


CORNER_CASES = [
    # repeated variable inside one literal
    "q(a, a). q(a, b). same(X) :- q(X, X).",
    # constants in body literals (probe key folds them in)
    "e(a, b). e(a, c). e(b, c). from_a(Y) :- e(a, Y).",
    # constants in the head
    "p(x). tagged(lab, X) :- p(X).",
    # zero-arity predicates
    "flag. p(a). gated(X) :- flag, p(X).",
    # stratified negation
    """
    node(a). node(b). node(c). edge(a, b).
    linked(X) :- edge(X, Y).
    linked(Y) :- edge(X, Y).
    isolated(X) :- node(X), not linked(X).
    """,
    # ground negative literal (no enclosing loop in the generated code)
    "blocked(a). p(b). ok(X) :- p(X), not blocked(a).",
    # built-ins: comparisons and equality join
    "n(1). n(2). n(3). small(X) :- n(X), X < 3.",
    "a(1). b(1). both(X) :- a(X), b(Y), X = Y.",
    "p(a). p(b). distinct(X, Y) :- p(X), p(Y), X != Y.",
    # same predicate twice, both recursive (two delta variants)
    """
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), path(Z, Y).
    """,
    # mutual recursion through two predicates
    """
    base(1). succ(1, 2). succ(2, 3). succ(3, 4).
    even(1) :- base(1).
    odd(Y) :- even(X), succ(X, Y).
    even(Y) :- odd(X), succ(X, Y).
    """,
    # double negation across strata
    """
    base(a). base(b). mark(a).
    unmarked(X) :- base(X), not mark(X).
    remarked(X) :- base(X), not unmarked(X).
    """,
]


@pytest.mark.parametrize("text", CORNER_CASES)
def test_corner_cases_agree(text):
    models = [
        full_model(evaluate(parse_program(text), strategy))
        for strategy in STRATEGIES
    ]
    assert models[0] == models[1] == models[2]
