"""Unit tests for the bottom-up engine (naive and semi-naive)."""

import pytest

from repro.datalog import (
    Program,
    Rule,
    answer_rows,
    atom,
    evaluate,
    neg,
    parse_atom,
    parse_program,
    pos,
    query,
    reorder_body,
)
from repro.errors import DatalogError


TRANSITIVE = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
"""


class TestBasics:
    def test_facts_only(self):
        db = evaluate(parse_program("p(a). p(b)."))
        assert db.rows("p") == {("a",), ("b",)}

    def test_single_join(self):
        db = evaluate(parse_program("q(a, b). r(b, c). s(X, Z) :- q(X, Y), r(Y, Z)."))
        assert db.rows("s") == {("a", "c")}

    def test_transitive_closure(self):
        db = evaluate(parse_program(TRANSITIVE))
        assert db.rows("path") == {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        }

    def test_left_recursion_terminates(self):
        text = TRANSITIVE.replace("path(X, Z), edge(Z, Y)", "edge(X, Z), path(Z, Y)")
        assert len(evaluate(parse_program(text)).rows("path")) == 6

    def test_naive_equals_seminaive(self):
        prog = parse_program(TRANSITIVE)
        assert evaluate(prog, "naive").rows("path") == \
            evaluate(prog, "seminaive").rows("path")

    def test_unknown_strategy(self):
        with pytest.raises(DatalogError):
            evaluate(parse_program("p(a)."), "turbo")

    def test_cycle_in_data(self):
        db = evaluate(parse_program("""
            edge(a, b). edge(b, a).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """))
        assert db.rows("path") == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_mutual_recursion(self):
        db = evaluate(parse_program("""
            base(1). base(2). base(3). base(4).
            even(1) :- base(1).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
            succ(1, 2). succ(2, 3). succ(3, 4).
        """))
        assert db.rows("even") == {(1,), (3,)}
        assert db.rows("odd") == {(2,), (4,)}


class TestNegation:
    def test_stratified_negation(self):
        db = evaluate(parse_program("""
            node(a). node(b). node(c).
            edge(a, b).
            linked(X) :- edge(X, Y).
            linked(Y) :- edge(X, Y).
            isolated(X) :- node(X), not linked(X).
        """))
        assert db.rows("isolated") == {("c",)}

    def test_negation_before_binder_is_reordered(self):
        # 'not q(X)' written before p(X): reordering makes it evaluable.
        prog = Program([
            Rule(atom("r", "X"), (neg("q", "X"), pos("p", "X"))),
        ], [atom("p", "a"), atom("p", "b"), atom("q", "a")])
        assert evaluate(prog).rows("r") == {("b",)}

    def test_double_negation_strata(self):
        db = evaluate(parse_program("""
            base(a). base(b).
            mark(a).
            unmarked(X) :- base(X), not mark(X).
            remarked(X) :- base(X), not unmarked(X).
        """))
        assert db.rows("remarked") == {("a",)}


class TestBuiltins:
    def test_comparison_filter(self):
        db = evaluate(parse_program("n(1). n(2). n(3). small(X) :- n(X), X < 3."))
        assert db.rows("small") == {(1,), (2,)}

    def test_equality_join(self):
        db = evaluate(parse_program("a(1). b(1). both(X) :- a(X), b(Y), X = Y."))
        assert db.rows("both") == {(1,)}

    def test_inequality(self):
        db = evaluate(parse_program(
            "p(a). p(b). distinct(X, Y) :- p(X), p(Y), X != Y."))
        assert db.rows("distinct") == {("a", "b"), ("b", "a")}

    def test_incomparable_types_raise(self):
        with pytest.raises(DatalogError):
            evaluate(parse_program("n(1). n(a). bad(X) :- n(X), X < 2."))


class TestReorderBody:
    def test_positive_order_preserved(self):
        body = (pos("a", "X"), pos("b", "X"))
        assert reorder_body(body) == body

    def test_negative_deferred_until_bound(self):
        body = (neg("n", "X"), pos("p", "X"))
        reordered = reorder_body(body)
        assert reordered[0].predicate == "p"
        assert reordered[1].predicate == "n"

    def test_ground_negative_can_go_first(self):
        body = (neg("n", "a"), pos("p", "X"))
        assert reorder_body(body)[0].predicate == "n"

    def test_builtin_deferred(self):
        body = (pos("<", "X", "Y"), pos("p", "X"), pos("q", "Y"))
        reordered = reorder_body(body)
        assert reordered[-1].predicate == "<"


class TestQueryHelpers:
    def test_query_returns_substitutions(self):
        answers = query(parse_program(TRANSITIVE), parse_atom("path(a, X)"))
        values = {next(iter(s.values())).value for s in answers}
        assert values == {"b", "c", "d"}

    def test_answer_rows(self):
        db = evaluate(parse_program(TRANSITIVE))
        assert answer_rows(db, parse_atom("path(X, d)")) == {
            ("a", "d"), ("b", "d"), ("c", "d")}

    def test_ground_query(self):
        db = evaluate(parse_program(TRANSITIVE))
        assert answer_rows(db, parse_atom("path(a, d)")) == {("a", "d")}
        assert answer_rows(db, parse_atom("path(d, a)")) == set()


class TestDatabase:
    def test_index_consistency_after_adds(self):
        from repro.datalog import Database
        db = Database()
        db.add("p", ("a", 1))
        # Build the index, then add more rows: index must stay in sync.
        assert list(db.candidates(atom("p", "a", "X"), {})) == [("a", 1)]
        db.add("p", ("a", 2))
        assert len(list(db.candidates(atom("p", "a", "X"), {}))) == 2

    def test_candidates_without_bindings_scan_all(self):
        from repro.datalog import Database
        db = Database()
        db.add("p", ("a",))
        db.add("p", ("b",))
        assert len(list(db.candidates(atom("p", "X"), {}))) == 2

    def test_merge_and_copy(self):
        from repro.datalog import Database
        a = Database()
        a.add("p", ("x",))
        b = a.copy()
        b.add("p", ("y",))
        assert len(a) == 1
        a.merge(b)
        assert len(a) == 2


class TestReorderBodyErrors:
    """``reorder_body`` rejects non-range-restricted leftovers eagerly.

    The old behaviour appended unsafe negated/built-in literals to the
    end of the body, deferring the failure to a cryptic "not ground at
    evaluation time" error deep inside the match loop.
    """

    def test_unbound_negated_literal_raises_at_reorder_time(self):
        body = (pos("p", "X"), neg("q", "Y"))
        with pytest.raises(DatalogError, match="range-restricted"):
            reorder_body(body)

    def test_error_names_the_offending_literal_and_variables(self):
        body = (pos("p", "X"), neg("q", "X", "Y"))
        with pytest.raises(DatalogError, match=r"\['Y'\].*negated"):
            reorder_body(body)

    def test_error_names_the_rule_when_given(self):
        rule = Rule(atom("h", "X"), (pos("p", "X"), neg("q", "Z")))
        with pytest.raises(DatalogError, match="h\\(X\\)"):
            reorder_body(rule.body, rule)

    def test_unbound_builtin_raises(self):
        body = (pos("p", "X"), pos("<", "X", "Y"))
        with pytest.raises(DatalogError, match="built-in"):
            reorder_body(body)

    def test_safe_bodies_still_reorder(self):
        body = (neg("q", "X"), pos("p", "X"))
        ordered = reorder_body(body)
        assert [l.positive for l in ordered] == [True, False]
