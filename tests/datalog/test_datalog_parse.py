"""Unit tests for the Datalog concrete syntax."""

import pytest

from repro.datalog import Constant, Variable, parse_atom, parse_program
from repro.errors import DatalogError


class TestFacts:
    def test_simple_fact(self):
        program = parse_program("p(a).")
        assert len(program.facts) == 1
        assert program.facts[0].ground_tuple() == ("a",)

    def test_numbers_and_strings(self):
        program = parse_program("p(1, 2.5, 'hello world').")
        assert program.facts[0].ground_tuple() == (1, 2.5, "hello world")

    def test_zero_arity(self):
        program = parse_program("flag.")
        assert program.facts[0].predicate == "flag"

    def test_comments_ignored(self):
        program = parse_program("% comment\np(a). % trailing\n")
        assert len(program.facts) == 1


class TestRules:
    def test_variables_capitalized(self):
        program = parse_program("p(X) :- q(X).")
        rule = program.rules[0]
        assert isinstance(rule.head.args[0], Variable)

    def test_underscore_is_variable(self):
        program = parse_program("p(X) :- q(X, _rest).")
        body_vars = {v.name for v in program.rules[0].body[0].variables()}
        assert "_rest" in body_vars

    def test_negation(self):
        program = parse_program("p(X) :- q(X), not r(X).")
        assert not program.rules[0].body[1].positive

    def test_comparison_literals(self):
        program = parse_program("p(X) :- q(X), X < 5, X != 2.")
        predicates = [l.predicate for l in program.rules[0].body]
        assert predicates == ["q", "<", "!="]

    def test_multi_line_program(self):
        text = """
        edge(a, b).
        edge(b, c).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        """
        program = parse_program(text)
        assert len(program.facts) == 2
        assert len(program.rules) == 2


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(DatalogError):
            parse_program("p(a)")

    def test_bad_character(self):
        with pytest.raises(DatalogError):
            parse_program("p(@).")

    def test_bare_term_literal(self):
        with pytest.raises(DatalogError):
            parse_program("p(X) :- 42.")

    def test_dangling_comma(self):
        with pytest.raises(DatalogError):
            parse_program("p(X) :- q(X),.")


class TestParseAtom:
    def test_goal_with_variables(self):
        goal = parse_atom("path(a, X)")
        assert goal.predicate == "path"
        assert goal.args[0] == Constant("a")
        assert goal.args[1] == Variable("X")

    def test_trailing_period_tolerated(self):
        assert parse_atom("p(a).").predicate == "p"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DatalogError):
            parse_atom("p(a) q(b)")
