"""Unit + property tests for the greedy join-order optimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    answer_rows,
    evaluate,
    greedy_join_order,
    parse_atom,
    parse_program,
    pos,
    neg,
)
from repro.workloads.generator import random_datalog_program


class TestGreedyOrder:
    def test_constant_bound_literal_first(self):
        body = (pos("big", "X", "Y"), pos("seed", "a", "X"))
        ordered = greedy_join_order(body)
        assert ordered[0].predicate == "seed"

    def test_binding_propagates(self):
        body = (pos("c", "Z"), pos("a", "X"), pos("b", "X", "Z"))
        ordered = greedy_join_order(body)
        # 'c' goes first (all-free tie, original order); binding Z makes
        # 'b' half-bound, so it beats the still-free 'a'.
        assert [l.predicate for l in ordered] == ["c", "b", "a"]

    def test_negatives_and_builtins_kept_at_end(self):
        body = (neg("n", "X"), pos("p", "X"), pos("<", "X", 5))
        ordered = greedy_join_order(body)
        assert ordered[0].predicate == "p"
        assert {l.predicate for l in ordered[1:]} == {"n", "<"}

    def test_zero_arity_literal(self):
        body = (pos("flag"), pos("p", "X"))
        ordered = greedy_join_order(body)
        assert len(ordered) == 2

    def test_stable_for_already_good_order(self):
        body = (pos("seed", "a", "X"), pos("big", "X", "Y"))
        assert greedy_join_order(body) == body


class TestOptimizedEvaluation:
    BAD_ORDER = """
        person(p1). person(p2). person(p3). person(p4). person(p5).
        likes(p1, p2). likes(p2, p3).
        % body written worst-first: the cross product before the filter
        friend_of_p1(Y) :- person(X), person(Y), likes(X, Y), X = p1.
    """

    def test_same_answers(self):
        program_text = self.BAD_ORDER
        plain = evaluate(parse_program(program_text))
        optimized = evaluate(parse_program(program_text), optimize_joins=True)
        assert plain.rows("friend_of_p1") == optimized.rows("friend_of_p1") == {("p2",)}

    def test_transitive_closure_unchanged(self):
        text = random_datalog_program(20, "chain")
        plain = evaluate(parse_program(text))
        optimized = evaluate(parse_program(text), optimize_joins=True)
        assert plain.rows("path") == optimized.rows("path")


@given(
    st.builds(
        random_datalog_program,
        n_nodes=st.integers(min_value=2, max_value=12),
        shape=st.sampled_from(["chain", "tree", "random"]),
        seed=st.integers(min_value=0, max_value=2_000),
    )
)
@settings(max_examples=30, deadline=None)
def test_optimizer_preserves_semantics(text):
    goal = parse_atom("path(X, Y)")
    plain = answer_rows(evaluate(parse_program(text)), goal)
    optimized = answer_rows(evaluate(parse_program(text), optimize_joins=True), goal)
    assert plain == optimized
