"""Unit tests for terms, atoms and literals."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Variable,
    atom,
    fresh_variable,
    make_term,
    neg,
    pos,
)


class TestTerms:
    def test_variable_identity(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")
        assert hash(Variable("X")) == hash(Variable("X"))

    def test_constant_identity(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_variable_constant_disjoint(self):
        assert Variable("a") != Constant("a")

    def test_fresh_variables_unique(self):
        assert fresh_variable() != fresh_variable()

    def test_renamed(self):
        assert Variable("X").renamed("7") == Variable("X#7")

    def test_make_term_convention(self):
        assert isinstance(make_term("X"), Variable)
        assert isinstance(make_term("_foo"), Variable)
        assert isinstance(make_term("abc"), Constant)
        assert isinstance(make_term(42), Constant)
        assert make_term(Variable("Z")) == Variable("Z")


class TestAtoms:
    def test_args_coerced(self):
        a = Atom("p", ("X", "abc", 3))
        assert isinstance(a.args[0], Variable)
        assert isinstance(a.args[1], Constant)
        assert a.args[2] == Constant(3)

    def test_arity_and_key(self):
        a = atom("p", "x", "y")
        assert a.arity == 2
        assert a.key() == ("p", 2)

    def test_is_ground(self):
        assert atom("p", "a").is_ground()
        assert not atom("p", "X").is_ground()

    def test_ground_tuple(self):
        assert atom("p", "a", 1).ground_tuple() == ("a", 1)
        with pytest.raises(ValueError):
            atom("p", "X").ground_tuple()

    def test_variables(self):
        assert atom("p", "X", "a", "Y").variables() == {Variable("X"), Variable("Y")}

    def test_builtin_recognition(self):
        assert atom("<", "X", "Y").is_builtin
        assert not atom("lt", "X", "Y").is_builtin

    def test_equality_and_hash(self):
        assert atom("p", "X") == atom("p", "X")
        assert hash(atom("p", "X")) == hash(atom("p", "X"))
        assert atom("p", "X") != atom("q", "X")

    def test_zero_arity_repr(self):
        assert repr(atom("flag")) == "flag"


class TestLiterals:
    def test_polarity(self):
        assert pos("p", "X").positive
        assert not neg("p", "X").positive

    def test_repr_shows_not(self):
        assert repr(neg("p", "a")).startswith("not ")

    def test_equality_includes_polarity(self):
        assert pos("p", "a") != neg("p", "a")

    def test_predicate_shortcut(self):
        assert neg("p", "a").predicate == "p"

    def test_variables_delegate(self):
        assert neg("p", "X").variables() == {Variable("X")}
