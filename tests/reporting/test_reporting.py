"""Unit tests for table rendering and figure regeneration."""

from repro.reporting import (
    all_figures,
    relation_table,
    render_table,
    rows_signature,
    tuple_row,
)
from repro.reporting.experiments import build_experiments_markdown


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Long"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_header_rule(self):
        text = render_table(["A"], [["x"]])
        assert "-" in text.splitlines()[1]

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert len(text.splitlines()) == 2


class TestRelationTable:
    def test_figure_layout(self, mission_rel, mission_tids):
        text = relation_table(mission_rel, mission_tids)
        assert "Tid" in text
        assert "TC" in text
        assert "t1" in text
        assert "avenger" in text

    def test_null_rendered_as_bottom(self, mission_rel):
        from repro.mls.views import view_at
        text = relation_table(view_at(mission_rel, "u"))
        assert "⊥" in text

    def test_order_parameter(self, mission_rel, mission_tids):
        text = relation_table(mission_rel, mission_tids, order=["t10", "t1"])
        assert text.index("t10") < text.index("t1 ")

    def test_tuple_row_shape(self, mission_tids):
        row = tuple_row(mission_tids["t1"], "t1")
        assert row == ["t1", "avenger", "S", "shipping", "S", "pluto", "S", "S"]

    def test_rows_signature_is_set_like(self, mission_rel):
        assert len(rows_signature(mission_rel)) == 10


class TestFigures:
    def test_all_fifteen_artifacts_verified(self):
        figures = all_figures()
        assert len(figures) == 15
        failing = [f.figure_id for f in figures if not f.verified]
        assert failing == []

    def test_figure_ids_cover_the_paper(self):
        ids = {f.figure_id for f in all_figures()}
        for n in range(1, 14):
            assert any(i.startswith(f"fig{n:02d}") for i in ids)

    def test_figure_str_shows_status(self):
        figure = all_figures()[0]
        assert "[OK]" in str(figure)


class TestExperimentsDocument:
    def test_markdown_builds_and_reports_success(self):
        text = build_experiments_markdown()
        assert "# EXPERIMENTS" in text
        assert "MISMATCH" not in text.replace("**MISMATCH**", "")  # no verdict rows failed
        assert "reproduced exactly" in text
        assert "Theorem 6.1" in text
        assert "Proposition 6.1" in text
