"""Property tests on proof trees and database serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multilog import (
    OperationalEngine,
    Prover,
    check_equivalence,
    parse_database,
    parse_query,
)
from repro.workloads.generator import make_lattice, random_multilog_database

LEAF_RULES = {"EMPTY"}
KNOWN_RULES = {
    "EMPTY", "AND", "BELIEF", "DEDUCTION-G", "DEDUCTION-G'", "DEDUCTION-B",
    "DESCEND-O", "DESCEND-C1", "DESCEND-C2", "DESCEND-C3", "DESCEND-C4",
    "REFLEXIVITY", "TRANSITIVITY", "ORDER", "LEVEL", "USER-BELIEF",
}


@st.composite
def databases(draw):
    shape = draw(st.sampled_from(["chain", "diamond"]))
    seed = draw(st.integers(min_value=0, max_value=2_000))
    lattice = make_lattice(shape, n_levels=4, seed=seed)
    db = random_multilog_database(
        n_tuples=draw(st.integers(min_value=1, max_value=10)),
        lattice=lattice,
        belief_rules=draw(st.integers(min_value=0, max_value=2)),
        seed=seed,
    )
    return db, lattice


def _leaves(tree):
    if not tree.premises:
        yield tree
    for premise in tree.premises:
        yield from _leaves(premise)


@given(databases(), st.data())
@settings(max_examples=30, deadline=None)
def test_proof_trees_are_well_formed(bundle, data):
    """Every proof tree for every answer: known rule names, EMPTY leaves,
    height <= size, and the root concludes the queried goal form."""
    db, lattice = bundle
    clearance = data.draw(st.sampled_from(sorted(lattice.levels)))
    mode = data.draw(st.sampled_from(["fir", "opt", "cau"]))
    engine = OperationalEngine(db, clearance)
    prover = Prover(engine)
    query = parse_query(f"{clearance}[p(K : k -C-> V)] << {mode}")
    for _answer, tree in prover.prove_query(query):
        assert tree.rules_used() <= KNOWN_RULES
        assert tree.height() <= tree.size()
        assert tree.rule == "BELIEF"
        for leaf in _leaves(tree):
            assert leaf.rule in LEAF_RULES


@given(databases(), st.data())
@settings(max_examples=30, deadline=None)
def test_every_answer_has_a_proof(bundle, data):
    """Completeness of reconstruction: solve() and prove_query() agree on
    the answer set."""
    db, lattice = bundle
    clearance = data.draw(st.sampled_from(sorted(lattice.levels)))
    engine = OperationalEngine(db, clearance)
    query = parse_query(f"{clearance}[p(K : k -C-> V)] << opt")
    solved = {tuple(sorted(a.items())) for a in engine.solve(query)}
    proved = {
        tuple(sorted(answer.items()))
        for answer, _tree in Prover(engine).prove_query(query)
    }
    assert solved == proved


@given(databases())
@settings(max_examples=25, deadline=None)
def test_serialization_round_trip(bundle):
    """str(db) re-parses to a database with identical semantics."""
    db, lattice = bundle
    reparsed = parse_database(str(db))
    top = sorted(lattice.tops())[0]
    original_cells = set(OperationalEngine(db, top).cells())
    reparsed_cells = set(OperationalEngine(reparsed, top).cells())
    assert original_cells == reparsed_cells


@given(databases(), st.data())
@settings(max_examples=20, deadline=None)
def test_session_engines_agree_on_random_databases(bundle, data):
    db, lattice = bundle
    clearance = data.draw(st.sampled_from(sorted(lattice.levels)))
    report = check_equivalence(db, clearance)
    assert report.equivalent, report.all_messages()
