"""The printed Figure 12 cautious axioms, made safe but not repaired.

Beyond the safety defect (demonstrated elsewhere), these tests measure a
*semantic* gap the reproduction uncovered: even with the minimal
range-restriction patches, the printed a6-a9 do not implement Definition
3.1's cautious belief.

1. a8's dominance test is non-strict (``dominate(C', C)`` admits
   ``C' = C``), so every visible cell justifies *itself* -- outranked
   cells survive whenever polyinstantiated siblings share their level.
   On Mission at S this resurrects the two U-classified phantom cells
   that the C-classified lineage should override.
2. a7 makes ``bel``-cau recursive; combined with a program whose Sigma
   consumes beliefs (D1's r8) the reduction is unstratifiable -- the
   repaired engine avoids this by level specialization.
"""

import pytest

from repro.datalog import Program, stratify
from repro.errors import StratificationError
from repro.multilog.reduction import (
    compare_cautious_axiomatizations,
    faithful_figure12_axioms,
)
from repro.workloads import d1_database, mission_multilog
from repro.workloads.generator import make_lattice, random_multilog_database


class TestSafety:
    def test_faithful_axioms_are_safe(self):
        Program(faithful_figure12_axioms()).check_safety()

    def test_faithful_axioms_stratify_alone(self):
        stratify(Program(faithful_figure12_axioms()))


class TestSemanticGap:
    def test_mission_over_believes_exactly_the_phantom_cells(self):
        diff = compare_cautious_axiomatizations(mission_multilog(), "s")
        assert diff["spec_only"] == set()  # faithful covers the spec...
        extra = {(row[1], row[2], row[4]) for row in diff["faithful_only"]}
        # ... but also believes the outranked U-classified phantom cells
        # (self-justified through a8's non-strict dominance).
        assert extra == {("phantom", "starship", "u"),
                         ("phantom", "destination", "u")}

    def test_conflict_free_database_agrees(self):
        """With one tuple per key there is nothing to override, and the
        two readings coincide exactly."""
        from repro.workloads.generator import random_mls_relation
        from repro.multilog.bridge import relation_to_multilog

        relation = random_mls_relation(
            12, make_lattice("chain", 4), n_keys=12,
            polyinstantiation_rate=0.0, seed=5)
        db = relation_to_multilog(relation)
        diff = compare_cautious_axiomatizations(db, "l3")
        assert diff["faithful_only"] == set()
        assert diff["spec_only"] == set()

    def test_d1_unstratifiable_under_faithful_axioms(self):
        """a7's recursion through negation + r8's belief feedback: the
        faithful reading has no stratified model at all."""
        with pytest.raises(StratificationError):
            compare_cautious_axiomatizations(d1_database(), "c")

    @pytest.mark.parametrize("seed", range(5))
    def test_faithful_never_misses_spec_beliefs_on_fact_databases(self, seed):
        """On pure fact databases the faithful reading over-approximates:
        it may add beliefs but never drops one the spec derives."""
        db = random_multilog_database(
            15, make_lattice("chain", 4), polyinstantiation_rate=0.5, seed=seed)
        diff = compare_cautious_axiomatizations(db, "l3")
        assert diff["spec_only"] == set()
