"""Unit tests for the MultiLog concrete syntax."""

import pytest

from repro.datalog.terms import Constant, Variable
from repro.errors import MultiLogSyntaxError
from repro.multilog import (
    BAtom,
    BMolecule,
    HAtom,
    LAtom,
    MAtom,
    MMolecule,
    PAtom,
    parse_clause,
    parse_database,
    parse_query,
)


class TestAtomForms:
    def test_m_atom_fact(self):
        clause = parse_clause("u[p(k : a -u-> v)].")
        head = clause.head
        assert isinstance(head, MAtom)
        assert head.level == Constant("u")
        assert head.pred == "p"
        assert head.key == Constant("k")
        assert head.attr == "a"
        assert head.cls == Constant("u")
        assert head.value == Constant("v")

    def test_molecule(self):
        clause = parse_clause(
            "s[mission(avenger : starship -s-> avenger; objective -s-> shipping)].")
        head = clause.head
        assert isinstance(head, MMolecule)
        atoms = head.atoms()
        assert len(atoms) == 2
        assert atoms[0].attr == "starship"
        assert atoms[1].value == Constant("shipping")

    def test_molecule_comma_separator(self):
        clause = parse_clause("s[p(k : a -s-> v, b -s-> w)].")
        assert isinstance(clause.head, MMolecule)

    def test_variables_in_every_slot(self):
        query = parse_query("L[p(K : a -C-> V)] << M")
        batom = query.body[0]
        assert isinstance(batom, BAtom)
        assert isinstance(batom.matom.level, Variable)
        assert isinstance(batom.matom.key, Variable)
        assert isinstance(batom.matom.cls, Variable)
        assert isinstance(batom.matom.value, Variable)
        assert isinstance(batom.mode, Variable)

    def test_dont_care_arrow(self):
        """`a -> v` produces a fresh classification variable (Section 7)."""
        clause = parse_query("u[p(k : a -> v)]")
        matom = clause.body[0]
        assert isinstance(matom.cls, Variable)
        assert matom.cls.name.startswith("_")

    def test_anonymous_underscore(self):
        q1 = parse_query("u[p(_ : a -_-> _)]")
        matom = q1.body[0]
        names = {matom.key.name, matom.cls.name, matom.value.name}
        assert len(names) == 3  # three distinct fresh variables

    def test_b_molecule(self):
        query = parse_query("s[p(k : a -s-> v; b -s-> w)] << cau")
        body = query.body[0]
        assert isinstance(body, BMolecule)
        assert len(body.atoms()) == 2

    def test_l_and_h_atoms(self):
        db = parse_database("level(u). order(u, c). level(c).")
        kinds = [type(c.head) for c in db.lattice_clauses]
        assert kinds == [LAtom, HAtom, LAtom]

    def test_p_atom(self):
        clause = parse_clause("q(j, X).")
        assert isinstance(clause.head, PAtom)
        assert clause.head.args == (Constant("j"), Variable("X"))

    def test_numbers_and_strings(self):
        clause = parse_clause("u[acct(alice : balance -u-> 100)].")
        assert clause.head.value == Constant(100)
        clause2 = parse_clause("u[note(n1 : text -u-> 'hello world')].")
        assert clause2.head.value == Constant("hello world")


class TestClauses:
    def test_rule_with_mixed_body(self):
        clause = parse_clause(
            "s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau, q(j), level(s).")
        assert len(clause.body) == 3
        assert isinstance(clause.body[0], BAtom)
        assert isinstance(clause.body[1], PAtom)
        assert isinstance(clause.body[2], LAtom)

    def test_b_atom_in_head_rejected(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[p(k : a -u-> v)] << cau :- q(j).")

    def test_query_without_prefix(self):
        query = parse_query("q(X)")
        assert isinstance(query.body[0], PAtom)

    def test_query_with_prefix_and_period(self):
        query = parse_query("?- q(X).")
        assert isinstance(query.body[0], PAtom)

    def test_clause_kind_filing(self):
        db = parse_database("""
            level(u).
            u[p(k : a -u-> v)].
            q(j).
            ?- q(X).
        """)
        assert len(db.lattice_clauses) == 1
        assert len(db.secured_clauses) == 1
        assert len(db.plain_clauses) == 1
        assert len(db.queries) == 1

    def test_string_round_trip(self):
        text = "s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau."
        clause = parse_clause(text)
        assert parse_clause(str(clause)) == clause

    def test_query_round_trip(self):
        query = parse_query("c[p(k : a -u-> v)] << opt")
        assert parse_query(str(query)) == query


class TestErrors:
    def test_error_carries_position(self):
        with pytest.raises(MultiLogSyntaxError) as excinfo:
            parse_database("level(u).\nlevel(&).")
        assert excinfo.value.line == 2

    def test_missing_bracket(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[p(k : a -u-> v).")

    def test_missing_colon(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[p(k a -u-> v)].")

    def test_bad_arrow(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[p(k : a => v)].")

    def test_unexpected_end(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[p(k : a -u->")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(MultiLogSyntaxError):
            parse_clause("u[P(k : a -u-> v)].")

    def test_comments_supported(self):
        db = parse_database("% lattice\nlevel(u). % trailing\n")
        assert len(db.lattice_clauses) == 1


class TestD1Source:
    def test_figure_10_parses_to_components(self, d1):
        assert len(d1.lattice_clauses) == 5
        assert len(d1.secured_clauses) == 3
        assert len(d1.plain_clauses) == 1
        assert len(d1.queries) == 1

    def test_r8_shape(self, d1):
        r8 = d1.secured_clauses[2]
        assert isinstance(r8.head, MAtom)
        assert isinstance(r8.body[0], BAtom)
        assert r8.body[0].mode == Constant("cau")
