"""Unit tests for Definition 5.4 (consistency) at the MultiLog level."""

import pytest

from repro.errors import ConsistencyError
from repro.multilog import (
    assert_consistent,
    check_consistency,
    derivable_cells,
    is_consistent,
    molecules,
    parse_database,
)

LATTICE = "level(u). level(c). level(s). order(u, c). order(c, s).\n"


class TestDerivableCells:
    def test_cells_of_mission(self, mission_db):
        cells = derivable_cells(mission_db)
        assert len(cells) == 30  # 10 molecules x 3 attributes

    def test_rule_derived_cells_included(self):
        db = parse_database(LATTICE + """
            u[p(k : k -u-> k)].
            c[p(k : a -c-> w)] :- u[p(k : k -u-> k)].
        """)
        cells = derivable_cells(db)
        assert ("p", "k", "a", "w", "c", "c") in cells


class TestMolecules:
    def test_fact_molecules_keep_boundaries(self, mission_db):
        cells = derivable_cells(mission_db)
        mols = molecules(cells, mission_db)
        phantoms = [m for m in mols if m.key == "phantom"]
        assert len(phantoms) == 2
        key_classes = {m.key_cells()[0][4] for m in phantoms}
        assert key_classes == {"u", "c"}

    def test_derived_cells_grouped_by_level(self):
        db = parse_database(LATTICE + """
            u[p(k1 : k -u-> k1)].
            c[p(k1 : k -c-> k1)] :- u[p(k1 : k -u-> k1)].
            c[p(k1 : a -c-> w)] :- u[p(k1 : k -u-> k1)].
        """)
        mols = molecules(derivable_cells(db), db)
        derived = [m for m in mols if m.level == "c"]
        assert len(derived) == 1
        assert len(derived[0].cells) == 2


class TestEntityIntegrity:
    def test_mission_consistent(self, mission_db):
        assert is_consistent(mission_db)

    def test_missing_key_cell_flagged(self):
        db = parse_database(LATTICE + "u[p(k : a -u-> v)].")
        report = check_consistency(db)
        assert any("no key cell" in m for m in report.entity)

    def test_null_key_flagged(self):
        db = parse_database(LATTICE + "u[p(null : k -u-> null)].")
        report = check_consistency(db)
        assert any("null" in m for m in report.entity)

    def test_attribute_below_key_class_flagged(self):
        db = parse_database(LATTICE + "s[p(k : k -c-> k; a -u-> v)].")
        report = check_consistency(db)
        assert any("dominate" in m for m in report.entity)

    def test_non_uniform_key_cells_flagged(self):
        db = parse_database(LATTICE + "s[p(k : k1 -u-> k; k2 -c-> k; a -s-> v)].")
        report = check_consistency(db)
        assert any("uniformly" in m for m in report.entity)


class TestNullIntegrity:
    def test_null_at_key_level_ok(self):
        db = parse_database(LATTICE + "u[p(k : k -u-> k; a -u-> null)].")
        assert check_consistency(db).null == []

    def test_null_above_key_level_flagged(self):
        db = parse_database(LATTICE + "c[p(k : k -u-> k; a -c-> null)].")
        report = check_consistency(db)
        assert any("key level" in m for m in report.null)

    def test_same_level_subsumption_flagged(self):
        db = parse_database(LATTICE + """
            u[p(k : k -u-> k; a -u-> v)].
            u[p(k : k -u-> k; a -u-> null)].
        """)
        report = check_consistency(db)
        assert any("subsume" in m for m in report.null)

    def test_cross_level_duplicates_allowed(self):
        db = parse_database(LATTICE + """
            u[p(k : k -u-> k; a -u-> v)].
            c[p(k : k -u-> k; a -u-> v)].
        """)
        assert check_consistency(db).null == []


class TestPolyinstantiationIntegrity:
    def test_fd_violation_flagged(self):
        db = parse_database(LATTICE + """
            s[p(k : k -u-> k; a -s-> v1)].
            s[p(k : k -u-> k; a -s-> v2)].
        """)
        report = check_consistency(db)
        assert any("FD" in m for m in report.polyinstantiation)

    def test_different_key_class_is_fine(self):
        """Figure 1's t4/t5 pattern is legal."""
        db = parse_database(LATTICE + """
            s[p(k : k -u-> k; a -s-> v1)].
            s[p(k : k -c-> k; a -s-> v2)].
        """)
        assert check_consistency(db).polyinstantiation == []


class TestAggregation:
    def test_report_flags(self, mission_db):
        report = check_consistency(mission_db)
        assert report.ok
        assert report.all_messages() == []

    def test_assert_consistent_raises(self):
        db = parse_database(LATTICE + "u[p(k : a -u-> v)].")
        with pytest.raises(ConsistencyError, match="Definition 5.4"):
            assert_consistent(db)

    def test_d1_violates_entity_integrity(self, d1):
        """The paper's own D1 has no key cell -- documented in DESIGN.md."""
        report = check_consistency(d1)
        assert not report.ok
        assert report.entity
