"""Regression tests for the session concurrency fixes.

Three historical bugs, one test module:

* concurrent ``ask()`` on one session used to race the shared per-ask
  state (recorder, stats, engine caches) -- sessions are now
  single-flight and a second concurrent entry raises
  :class:`SessionBusyError`;
* siblings/recovery used to re-resolve the storage backend from the
  ``MULTILOG_BACKEND`` environment variable instead of inheriting the
  resolved one, silently mixing dict and columnar engines over one
  database;
* a failure between the version check and the cache rebuild used to
  leave ``_cache_version`` bumped past caches that were never rebuilt,
  pinning a stale engine forever.  Revalidation now commits the
  version *last*.
"""

from __future__ import annotations

import threading

import pytest

import repro.multilog.session as session_mod
from repro.errors import SessionBusyError
from repro.multilog.session import MultiLogSession
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def hold_session(monkeypatch, session, attr: str):
    """Park a worker thread inside ``session`` at the parse step.

    Returns ``(entered, release, thread, result)``: the worker holds the
    session's single-flight lock from the moment ``entered`` fires until
    ``release`` is set.
    """
    entered = threading.Event()
    release = threading.Event()
    real = getattr(session_mod, attr)

    def slow(text):
        # Only the first caller (the worker) parks; later calls -- a
        # sibling's own flight, the worker's retry -- pass straight
        # through to the real parser.
        if not entered.is_set():
            entered.set()
            assert release.wait(10), "test never released the parser"
        return real(text)

    monkeypatch.setattr(session_mod, attr, slow)
    result: dict = {}

    def work():
        try:
            if attr == "parse_query":
                result["answers"] = session.ask(ASK)
            else:
                session.assert_clause("u[p(k5 : a -u-> 5)].")
                result["asserted"] = True
        except Exception as exc:  # pragma: no cover - surfaced via result
            result["error"] = exc

    thread = threading.Thread(target=work)
    thread.start()
    assert entered.wait(10), "worker never entered the session"
    return entered, release, thread, result


# -- single-flight sessions ---------------------------------------------

def test_concurrent_ask_raises_session_busy(monkeypatch):
    session = MultiLogSession(D1_SOURCE, clearance="s")
    _entered, release, thread, result = hold_session(
        monkeypatch, session, "parse_query")
    try:
        with pytest.raises(SessionBusyError, match="not reentrant"):
            session.ask(ASK)
    finally:
        release.set()
        thread.join(10)
    assert result.get("answers"), result
    # The session is fully usable again once the first flight lands.
    assert session.ask(ASK) == result["answers"]


def test_concurrent_assert_and_ask_raise_session_busy(monkeypatch):
    session = MultiLogSession(D1_SOURCE, clearance="s")
    _entered, release, thread, result = hold_session(
        monkeypatch, session, "parse_clause")
    try:
        with pytest.raises(SessionBusyError):
            session.ask(ASK)
        with pytest.raises(SessionBusyError):
            session.assert_clause("u[p(k6 : a -u-> 6)].")
    finally:
        release.set()
        thread.join(10)
    assert result.get("asserted"), result


def test_siblings_are_independent_flights(monkeypatch):
    """Exclusive *siblings* may run concurrently; only reentry is barred."""
    session = MultiLogSession(D1_SOURCE, clearance="s")
    sibling = session.with_clearance("c")
    _entered, release, thread, result = hold_session(
        monkeypatch, session, "parse_query")
    try:
        # The sibling has its own flight lock: no SessionBusyError.
        assert sibling.ask("c[p(K : a -C-> V)] << opt")
    finally:
        release.set()
        thread.join(10)
    assert result.get("answers"), result


def test_failed_ask_still_publishes_its_trace():
    session = MultiLogSession(D1_SOURCE, clearance="s")
    with pytest.raises(Exception):
        session.ask("p((")  # parse error inside the flight
    assert session.last_trace() is not None
    spans = session.last_trace().to_dicts()
    assert spans, "the aborted ask's span forest must be snapshotted"


# -- explicit backend propagation ---------------------------------------

def test_sibling_inherits_resolved_backend_despite_env(monkeypatch):
    session = MultiLogSession(D1_SOURCE, clearance="s", backend="columnar")
    # The environment changes between checkouts; the resolved backend
    # must ride along explicitly, not be re-resolved per sibling.
    monkeypatch.setenv("MULTILOG_BACKEND", "dict")
    sibling = session.with_clearance("u")
    assert sibling.backend == "columnar"
    grandchild = sibling.with_clearance("c")
    assert grandchild.backend == "columnar"


def test_recover_propagates_explicit_backend(tmp_path, monkeypatch):
    journal = tmp_path / "session.mlj"
    session = MultiLogSession(D1_SOURCE, clearance="s", backend="columnar",
                              journal=journal)
    session.assert_clause("u[p(k3 : a -u-> 3)].")
    before = session.ask(ASK)

    # The crashed process ran columnar; the recovering environment says
    # dict.  An explicit backend= must win over the env re-resolution.
    monkeypatch.setenv("MULTILOG_BACKEND", "dict")
    recovered = MultiLogSession.recover(journal, clearance="s",
                                        backend="columnar")
    assert recovered.backend == "columnar"
    assert recovered.ask(ASK) == before


def test_recover_without_backend_resolves_env(tmp_path, monkeypatch):
    journal = tmp_path / "session.mlj"
    MultiLogSession(D1_SOURCE, clearance="s", journal=journal)
    monkeypatch.setenv("MULTILOG_BACKEND", "columnar")
    recovered = MultiLogSession.recover(journal, clearance="s")
    assert recovered.backend == "columnar"


# -- version-last revalidation ------------------------------------------

def test_failed_revalidation_is_retried_not_pinned(monkeypatch):
    reader = MultiLogSession(D1_SOURCE, clearance="s")
    writer = reader.with_clearance("s")
    baseline = reader.ask(ASK)  # build and cache the reader's engine

    writer.assert_clause("u[p(k4 : a -u-> 4)].")

    real = session_mod.check_admissibility
    calls = {"n": 0}

    def flaky(database):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected revalidation failure")
        return real(database)

    monkeypatch.setattr(session_mod, "check_admissibility", flaky)
    with pytest.raises(RuntimeError, match="injected"):
        reader.ask(ASK)

    # The failure must leave the session still marked stale -- caches
    # dropped, version *not* committed -- so the next ask retries the
    # rebuild instead of serving the pre-assert engine forever.
    assert reader._cache_version != reader.database.version
    assert reader._engine is None
    assert reader._reduced is None

    after = reader.ask(ASK)
    assert any(answer.get("K") == "k4" for answer in after)
    assert len(after) == len(baseline) + 1
    assert reader._cache_version == reader.database.version
