"""Unit tests for the tau translation and the Figure 12 engine."""

import pytest

from repro.datalog import Program, stratify
from repro.errors import StratificationError, UnsafeRuleError
from repro.multilog import (
    engine_axioms,
    figure12_axioms,
    needs_specialization,
    parse_database,
    parse_query,
    translate,
)

LATTICE = "level(u). level(c). level(s). order(u, c). order(c, s).\n"


class TestAxioms:
    def test_figure12_has_nine_axioms(self):
        assert len(figure12_axioms()) == 9

    def test_figure12_is_unsafe_as_printed(self):
        with pytest.raises(UnsafeRuleError):
            Program(figure12_axioms()).check_safety()

    def test_repaired_axioms_safe_and_stratified(self):
        program = Program(engine_axioms())
        program.check_safety()
        stratify(program)

    def test_dominate_axioms_compute_reflexive_transitive_closure(self):
        from repro.datalog import Atom, Constant, evaluate
        program = Program(engine_axioms()[:3])
        for level in ("u", "c", "s"):
            program.add_fact(Atom("level", (Constant(level),)))
        for low, high in (("u", "c"), ("c", "s")):
            program.add_fact(Atom("order", (Constant(low), Constant(high))))
        rows = evaluate(program).rows("dominate")
        assert ("u", "s") in rows      # transitivity
        assert ("c", "c") in rows      # reflexivity
        assert ("s", "u") not in rows  # antisymmetry


class TestTranslation:
    def test_mission_unspecialized(self, mission_db):
        reduced = translate(mission_db, "s")
        assert not reduced.specialized
        assert len(reduced.rel_rows()) == 30

    def test_d1_auto_specializes(self, d1):
        reduced = translate(d1, "c")
        assert reduced.specialized

    def test_needs_specialization_detection(self, d1, mission_db):
        assert needs_specialization(d1)
        assert not needs_specialization(mission_db)

    def test_unspecialized_d1_is_unstratifiable(self, d1):
        """The paper claims the axioms are stratified; for D1 the single
        rel/bel reduction is not -- the documented repair is required."""
        reduced = translate(d1, "c", specialize=False)
        with pytest.raises(StratificationError):
            reduced.model()

    def test_forced_specialization_of_mission(self, mission_db):
        reduced = translate(mission_db, "s", specialize=True)
        assert reduced.specialized
        assert len(reduced.rel_rows()) == 30

    def test_facts_above_clearance_kept_in_reduction(self, mission_db):
        """tau does not guard facts; only queries/bodies are guarded."""
        reduced = translate(mission_db, "u")
        levels = {row[5] for row in reduced.rel_rows()}
        assert "s" in levels

    def test_guards_enforce_no_read_up(self, mission_db):
        reduced = translate(mission_db, "u")
        query = parse_query("s[mission(K : objective -C-> V)] << fir")
        assert reduced.query(query) == []


class TestBelRows:
    def test_firm(self, mission_db):
        reduced = translate(mission_db, "s")
        rows = reduced.bel_rows("fir", "c")
        assert {r[1] for r in rows} == {"atlantis"}

    def test_optimistic_counts(self, mission_db):
        reduced = translate(mission_db, "s")
        assert len(reduced.bel_rows("opt", "u")) == 12  # 4 U molecules x 3

    def test_cautious_override(self, d1):
        reduced = translate(d1, "c")
        assert reduced.bel_rows("cau", "c") == {("p", "k", "a", "t", "c")}

    def test_unknown_level_rejected(self, d1):
        from repro.errors import UnknownLevelError
        with pytest.raises(UnknownLevelError):
            translate(d1, "c").bel_rows("cau", "zz")


class TestQueries:
    def test_example_52(self, d1):
        reduced = translate(d1, "c")
        assert reduced.query(parse_query("c[p(k : a -u-> v)] << opt")) == [{}]

    def test_variable_binding(self, mission_db):
        reduced = translate(mission_db, "s")
        answers = reduced.query(
            parse_query("s[mission(K : objective -C-> spying)] << cau"))
        assert {a["K"] for a in answers} == {"voyager", "phantom"}

    def test_level_variable_in_specialized_query(self, d1):
        reduced = translate(d1, "c")
        answers = reduced.query(parse_query("L[p(k : a -u-> v)] << opt"))
        assert {a["L"] for a in answers} == {"u", "c"}

    def test_conjunctive_query(self, mission_db):
        reduced = translate(mission_db, "s")
        answers = reduced.query(parse_query(
            "s[mission(K : objective -C1-> spying)] << cau, "
            "s[mission(K : destination -C2-> mars)] << cau"))
        assert [a["K"] for a in answers] == ["voyager"]

    def test_plain_p_atom_query(self, d1):
        reduced = translate(d1, "c")
        assert reduced.query(parse_query("q(X)")) == [{"X": "j"}]

    def test_model_cached(self, d1):
        reduced = translate(d1, "c")
        assert reduced.model() is reduced.model()


class TestUserModes:
    SOURCE = LATTICE + """
        u[m(k1 : f -u-> x)].
        c[m(k1 : f -u-> x)].
        bel(P, K, A, V, C, H, corroborated) :-
            bel(P, K, A, V, C, H, fir), bel(P, K, A, V, C, L, opt), order(L, H).
    """

    def test_user_mode_via_reduction(self):
        db = parse_database(self.SOURCE)
        reduced = translate(db, "s")
        rows = reduced.bel_rows("corroborated", "c")
        assert rows == {("m", "k1", "f", "x", "u")}

    def test_user_mode_survives_specialization(self):
        db = parse_database(self.SOURCE + """
            s[m(k1 : g -s-> y)] :- c[m(k1 : f -u-> x)] << cau.
        """)
        reduced = translate(db, "s")
        assert reduced.specialized
        assert reduced.bel_rows("corroborated", "c") == {("m", "k1", "f", "x", "u")}
