"""Least-model reuse: repeated asks never re-run the Datalog fixpoint,
and any mutation invalidates every cached layer."""

from repro.multilog import MultiLogSession, translate
from repro.multilog.parser import parse_database

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
u[acct(bob : balance -u-> 55)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"


class TestLeastModelReuse:
    def test_repeated_ask_runs_fixpoint_once(self):
        session = MultiLogSession(SOURCE, clearance="s")
        first = session.ask(QUERY, engine="reduction")
        assert session.reduced.fixpoint_runs == 1
        for _ in range(3):
            assert session.ask(QUERY, engine="reduction") == first
        assert session.reduced.fixpoint_runs == 1

    def test_different_queries_share_the_model(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY, engine="reduction")
        session.ask("u[acct(bob : balance -C-> B)] << fir", engine="reduction")
        assert session.reduced.fixpoint_runs == 1

    def test_mutation_invalidates_model(self):
        session = MultiLogSession(SOURCE, clearance="s")
        before = session.ask(QUERY, engine="reduction")
        reduced_before = session.reduced
        assert reduced_before.fixpoint_runs == 1
        session.assert_clause("s[acct(carol : balance -s-> 7)].")
        after = session.ask(QUERY, engine="reduction")
        assert after == before  # unrelated fact: same answers
        reduced_after = session.reduced
        assert reduced_after is not reduced_before
        assert reduced_after.fixpoint_runs == 1  # re-ran exactly once
        assert session.ask(
            "s[acct(carol : balance -C-> B)] << fir", engine="reduction"
        ) == [{"B": 7, "C": "s"}]

    def test_sessions_share_translation_per_clearance(self):
        db = parse_database(SOURCE)
        a = MultiLogSession(db, clearance="s")
        b = MultiLogSession(db, clearance="s")
        a.ask(QUERY, engine="reduction")
        b.ask(QUERY, engine="reduction")
        # Same database version + clearance: one ReducedProgram, one model.
        assert a.reduced is b.reduced
        assert a.reduced.fixpoint_runs == 1

    def test_translate_memo_invalidated_by_version(self):
        db = parse_database(SOURCE)
        first = translate(db, "s")
        assert translate(db, "s") is first
        db.add(parse_database("u[acct(dan : balance -u-> 1)].").secured_clauses[0])
        assert translate(db, "s") is not first

    def test_reduction_still_matches_operational(self):
        session = MultiLogSession(SOURCE, clearance="s")
        for query in (QUERY, "u[acct(bob : balance -C-> B)] << opt"):
            operational = session.ask(query, engine="operational")
            reduction = session.ask(query, engine="reduction")
            assert sorted(operational, key=repr) == sorted(reduction, key=repr)
