"""Least-model reuse: repeated asks never re-run the Datalog fixpoint,
and any mutation invalidates every cached layer."""

from repro.multilog import MultiLogSession, translate
from repro.multilog.parser import parse_database

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
u[acct(bob : balance -u-> 55)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"


class TestLeastModelReuse:
    def test_repeated_ask_runs_fixpoint_once(self):
        session = MultiLogSession(SOURCE, clearance="s")
        first = session.ask(QUERY, engine="reduction")
        assert session.reduced.fixpoint_runs == 1
        for _ in range(3):
            assert session.ask(QUERY, engine="reduction") == first
        assert session.reduced.fixpoint_runs == 1

    def test_different_queries_share_the_model(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY, engine="reduction")
        session.ask("u[acct(bob : balance -C-> B)] << fir", engine="reduction")
        assert session.reduced.fixpoint_runs == 1

    def test_mutation_invalidates_model(self):
        session = MultiLogSession(SOURCE, clearance="s")
        before = session.ask(QUERY, engine="reduction")
        reduced_before = session.reduced
        assert reduced_before.fixpoint_runs == 1
        session.assert_clause("s[acct(carol : balance -s-> 7)].")
        after = session.ask(QUERY, engine="reduction")
        assert after == before  # unrelated fact: same answers
        reduced_after = session.reduced
        assert reduced_after is not reduced_before
        assert reduced_after.fixpoint_runs == 1  # re-ran exactly once
        assert session.ask(
            "s[acct(carol : balance -C-> B)] << fir", engine="reduction"
        ) == [{"B": 7, "C": "s"}]

    def test_sessions_share_translation_per_clearance(self):
        db = parse_database(SOURCE)
        a = MultiLogSession(db, clearance="s")
        b = MultiLogSession(db, clearance="s")
        a.ask(QUERY, engine="reduction")
        b.ask(QUERY, engine="reduction")
        # Same database version + clearance: one ReducedProgram, one model.
        assert a.reduced is b.reduced
        assert a.reduced.fixpoint_runs == 1

    def test_translate_memo_invalidated_by_version(self):
        db = parse_database(SOURCE)
        first = translate(db, "s")
        assert translate(db, "s") is first
        db.add(parse_database("u[acct(dan : balance -u-> 1)].").secured_clauses[0])
        assert translate(db, "s") is not first

    def test_reduction_still_matches_operational(self):
        session = MultiLogSession(SOURCE, clearance="s")
        for query in (QUERY, "u[acct(bob : balance -C-> B)] << opt"):
            operational = session.ask(query, engine="operational")
            reduction = session.ask(query, engine="reduction")
            assert sorted(operational, key=repr) == sorted(reduction, key=repr)


class TestSiblingSessionCoherence:
    """Regression: asserting through one session must invalidate siblings.

    ``with_clearance`` shares ``self.database``, but ``assert_clause``
    only nulled the *asserting* session's cached engines -- a sibling
    that had already materialized its fixpoint kept serving stale
    answers.  Caches are now keyed on ``database.version``.
    """

    def test_sibling_sees_assert_made_after_it_cached(self):
        high = MultiLogSession(SOURCE, clearance="s")
        low = high.with_clearance("u")
        # Both siblings materialize their engines before the mutation.
        assert high.ask("s[acct(carol : balance -C-> B)] << fir") == []
        assert low.ask("u[acct(carol : balance -C-> B)] << fir") == []
        low.assert_clause("u[acct(carol : balance -u-> 42)].")
        # The *other* session must see the new clause in both semantics.
        assert high.ask("u[acct(carol : balance -C-> B)] << fir") == \
            [{"B": 42, "C": "u"}]
        assert high.ask("u[acct(carol : balance -C-> B)] << fir",
                        engine="reduction") == [{"B": 42, "C": "u"}]

    def test_two_clearances_with_assert_in_between(self):
        base = MultiLogSession(SOURCE, clearance="s")
        low = base.with_clearance("u")
        mid = base.with_clearance("s")
        assert low.ask("u[acct(dora : balance -C-> B)] << fir") == []
        assert mid.ask("s[acct(dora : balance -C-> B)] << opt") == []
        base.assert_clause("u[acct(dora : balance -u-> 5)].")
        assert low.ask("u[acct(dora : balance -C-> B)] << fir") == \
            [{"B": 5, "C": "u"}]
        assert mid.ask("u[acct(dora : balance -C-> B)] << opt") == \
            [{"B": 5, "C": "u"}]

    def test_unchanged_database_keeps_caches(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY, engine="reduction")
        reduced = session.reduced
        engine = session.engine
        session.ask(QUERY, engine="operational")
        assert session.reduced is reduced
        assert session.engine is engine
