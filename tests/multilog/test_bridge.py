"""Unit tests for the MLS-relation <-> MultiLog bridge, and the beta
cross-check (tuple-level vs cell-level belief)."""

import pytest

from repro.belief import cautious, firm, optimistic
from repro.mls import NULL, MLSRelation, MLSchema, MLSTuple
from repro.multilog import (
    MultiLogSession,
    OperationalEngine,
    believed_relation,
    cells_to_relation,
    relation_to_multilog,
)
from repro.workloads.mission import mission_schema


class TestEncoding:
    def test_mission_encodes_to_thirty_cells(self, mission_rel):
        db = relation_to_multilog(mission_rel)
        engine = OperationalEngine(db, "t")
        assert len(engine.cells()) == 30

    def test_lattice_carried_over(self, mission_rel):
        db = relation_to_multilog(mission_rel)
        session = MultiLogSession(db, "t")
        assert session.lattice == mission_rel.schema.lattice

    def test_key_cell_requirement_satisfied(self, mission_rel):
        db = relation_to_multilog(mission_rel)
        assert MultiLogSession(db, "t").check_consistency().ok

    def test_nulls_encoded_as_null_constant(self, ucst):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        relation = MLSRelation(schema)
        relation.add(MLSTuple.make(schema, {"k": "x"}, "u"))
        db = relation_to_multilog(relation)
        cells = OperationalEngine(db, "t").cells()
        assert ("r", "x", "a", "null", "u", "u") in cells

    def test_multi_attribute_key_rejected(self, ucst):
        schema = MLSchema("r", ["k1", "k2"], key=["k1", "k2"], lattice=ucst)
        with pytest.raises(ValueError):
            relation_to_multilog(MLSRelation(schema))


class TestDecoding:
    def test_round_trip_data(self, mission_rel):
        db = relation_to_multilog(mission_rel)
        engine = OperationalEngine(db, "t")
        rebuilt = cells_to_relation(list(engine.cells()), mission_schema(), db=db)
        # Round trip loses only the explicit TC (cells carry tuple levels);
        # compare attribute cells per (key, level).
        original = {(t.key_values(), t.tc, t.cells) for t in mission_rel}
        recovered = {(t.key_values(), t.tc, t.cells) for t in rebuilt}
        assert recovered == original

    def test_missing_attribute_becomes_null(self, ucst):
        schema = MLSchema("r", ["k", "a"], key="k", lattice=ucst)
        cells = [("r", "x", "k", "x", "u", "u")]
        rebuilt = cells_to_relation(cells, schema)
        assert rebuilt.tuples[0].value("a") is NULL


class TestBetaCrossCheck:
    """The relational beta and the MultiLog belief semantics agree."""

    @pytest.mark.parametrize("level", ["u", "c", "s", "t"])
    def test_firm_agrees(self, mission_rel, level):
        engine = OperationalEngine(relation_to_multilog(mission_rel), "t")
        via_multilog = believed_relation(engine, "fir", level, mission_schema())
        via_beta = firm(mission_rel, level)
        assert {t.cells for t in via_multilog} == {t.cells for t in via_beta}

    @pytest.mark.parametrize("level", ["u", "c", "s", "t"])
    def test_optimistic_agrees(self, mission_rel, level):
        engine = OperationalEngine(relation_to_multilog(mission_rel), "t")
        via_multilog = believed_relation(engine, "opt", level, mission_schema())
        via_beta = optimistic(mission_rel, level)
        assert {t.cells for t in via_multilog} == {t.cells for t in via_beta}

    @pytest.mark.parametrize("level", ["u", "c"])
    def test_cautious_agrees_when_unambiguous(self, mission_rel, level):
        """Where cautious belief has a single model, cell-wise re-assembly
        equals the tuple-level beta."""
        engine = OperationalEngine(relation_to_multilog(mission_rel), "t")
        via_multilog = believed_relation(engine, "cau", level, mission_schema())
        via_beta = cautious(mission_rel, level)
        assert {t.cells for t in via_multilog} == {t.cells for t in via_beta}

    def test_cautious_cells_at_s_cover_both_models(self, mission_rel):
        """At S the phantom objective forks; the cell view holds the union
        of beta's multiple models."""
        engine = OperationalEngine(relation_to_multilog(mission_rel), "t")
        cell_values = {
            (row[1], row[2], row[3])
            for row in engine.believed_cells("cau", "s")
        }
        beta_values = {
            (t.value("starship"), attr, t.value(attr))
            for t in cautious(mission_rel, "s")
            for attr in mission_rel.schema.attributes
        }
        assert beta_values == cell_values
