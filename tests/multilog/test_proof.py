"""Unit tests for the operational semantics and proof trees (Figs 9, 11)."""

import pytest

from repro.errors import BeliefRecursionError, MultiLogError, UnknownModeError
from repro.multilog import (
    OperationalEngine,
    Prover,
    parse_database,
    parse_query,
)
from repro.workloads.d1 import d1_query

LATTICE = "level(u). level(c). level(s). order(u, c). order(c, s).\n"


class TestCellDerivation:
    def test_facts_materialize(self, d1):
        engine = OperationalEngine(d1, "c")
        assert ("p", "k", "a", "v", "u", "u") in engine.cells()

    def test_rules_fire(self, d1):
        engine = OperationalEngine(d1, "c")
        assert ("p", "k", "a", "t", "c", "c") in engine.cells()

    def test_cells_above_clearance_not_derivable(self, d1):
        """DEDUCTION-G': r8's s-level head is not derivable at <D1, c>."""
        engine = OperationalEngine(d1, "c")
        assert not any(row[5] == "s" for row in engine.cells())

    def test_belief_feedback_derives_at_s(self, d1):
        engine = OperationalEngine(d1, "s")
        assert ("p", "k", "a", "v", "u", "s") in engine.cells()

    def test_pfacts(self, d1):
        engine = OperationalEngine(d1, "c")
        assert ("q", ("j",)) in engine.pfacts()

    def test_compute_idempotent(self, d1):
        engine = OperationalEngine(d1, "c")
        first = dict(engine.cells())
        assert dict(engine.compute().cells()) == first

    def test_non_ground_head_rejected(self):
        db = parse_database(LATTICE + "u[p(k : a -u-> V)] :- level(u).")
        with pytest.raises(MultiLogError, match="ground"):
            OperationalEngine(db, "s").compute()

    def test_belief_oscillation_detected(self):
        """A clause believing *its own* level cautiously never stabilizes
        when it both requires and destroys the belief."""
        db = parse_database(LATTICE + """
            u[p(k : a -u-> seed)].
            u[p(k : a -u-> flip)] :- u[p(k : a -u-> seed)] << cau,
                                     u[p(k : b -u-> missing)] << cau.
            u[p(k : b -u-> missing)] :- u[p(k : a -u-> flip)] << cau.
        """)
        engine = OperationalEngine(db, "s")
        try:
            engine.compute()  # level-stratified enough to converge is fine,
        except BeliefRecursionError:
            pass  # ... and detection instead of divergence is also fine


class TestBuiltinBeliefs:
    def test_firm(self, d1):
        engine = OperationalEngine(d1, "c")
        assert [r[:5] for r in engine.believed_cells("fir", "u")] == [
            ("p", "k", "a", "v", "u")]

    def test_optimistic_accumulates(self, d1):
        engine = OperationalEngine(d1, "c")
        assert len(engine.believed_cells("opt", "c")) == 2

    def test_cautious_overrides(self, d1):
        engine = OperationalEngine(d1, "c")
        rows = engine.believed_cells("cau", "c")
        assert [r[:5] for r in rows] == [("p", "k", "a", "t", "c")]

    def test_unknown_mode_raises(self, d1):
        engine = OperationalEngine(d1, "c")
        with pytest.raises(UnknownModeError):
            engine.believed_cells("wishful", "c")

    def test_mode_set(self, d1):
        assert OperationalEngine(d1, "c").modes == {"fir", "opt", "cau"}


class TestQueries:
    def test_example_52_succeeds(self, d1):
        engine = OperationalEngine(d1, "c")
        assert engine.solve(d1_query()) == [{}]

    def test_query_binds_variables(self, mission_db):
        engine = OperationalEngine(mission_db, "s")
        query = parse_query("s[mission(K : objective -C-> spying)] << cau")
        answers = engine.solve(query)
        keys = {str(a["K"]) for a in answers}
        assert keys == {"voyager", "phantom"}

    def test_no_read_up_in_queries(self, d1):
        """A c-cleared session cannot prove anything at level s."""
        engine = OperationalEngine(d1, "c")
        assert engine.solve(parse_query("s[p(k : a -u-> v)] << opt")) == []

    def test_conjunctive_query(self, mission_db):
        engine = OperationalEngine(mission_db, "s")
        query = parse_query(
            "s[mission(K : objective -C1-> spying)] << cau, "
            "s[mission(K : destination -C2-> mars)] << cau")
        answers = engine.solve(query)
        assert len(answers) == 1
        assert str(answers[0]["K"]) == "voyager"

    def test_variable_mode_enumerates(self, d1):
        engine = OperationalEngine(d1, "c")
        query = parse_query("c[p(k : a -C-> V)] << M")
        modes = {str(a["M"]) for a in engine.solve(query)}
        assert modes == {"fir", "opt", "cau"}

    def test_variable_level_enumerates_below_clearance(self, d1):
        engine = OperationalEngine(d1, "c")
        query = parse_query("L[p(k : a -u-> v)] << opt")
        levels = {str(a["L"]) for a in engine.solve(query)}
        assert levels == {"u", "c"}

    def test_molecular_query(self, mission_db):
        engine = OperationalEngine(mission_db, "s")
        query = parse_query(
            "s[mission(K : objective -C1-> spying; destination -C2-> mars)] << cau")
        assert len(engine.solve(query)) == 1


class TestProofTrees:
    def test_figure_11_shape(self, d1):
        prover = Prover(OperationalEngine(d1, "c"))
        tree = prover.prove(d1_query())
        assert tree is not None
        assert tree.rule == "BELIEF"
        assert tree.premises[0].rule in ("REFLEXIVITY", "TRANSITIVITY")
        assert tree.premises[1].rule == "DESCEND-O"
        assert "EMPTY" in tree.rules_used()

    def test_height_and_size(self, d1):
        tree = Prover(OperationalEngine(d1, "c")).prove(d1_query())
        assert tree.height() >= 4
        assert tree.size() >= tree.height()

    def test_unprovable_returns_none(self, d1):
        prover = Prover(OperationalEngine(d1, "c"))
        assert prover.prove(parse_query("c[p(k : a -u-> ghost)] << opt")) is None

    def test_one_tree_per_answer(self, mission_db):
        prover = Prover(OperationalEngine(mission_db, "s"))
        query = parse_query("s[mission(K : objective -C-> spying)] << cau")
        results = prover.prove_query(query)
        assert len(results) == 2
        assert all(tree.rule == "BELIEF" for _a, tree in results)

    def test_rule_body_explained(self, d1):
        """The c-level cell comes from r7: its proof embeds q(j)'s proof."""
        prover = Prover(OperationalEngine(d1, "c"))
        tree = prover.prove(parse_query("c[p(k : a -c-> t)]"))
        assert "DEDUCTION-G" in tree.rules_used()
        assert "q(j)" in tree.pretty()

    def test_cautious_tree_names_descend_case(self, mission_db):
        prover = Prover(OperationalEngine(mission_db, "s"))
        tree = prover.prove(
            parse_query("s[mission(voyager : objective -s-> spying)] << cau"))
        cases = {r for r in tree.rules_used() if r.startswith("DESCEND-C")}
        assert len(cases) == 1

    def test_and_node_for_conjunctions(self, mission_db):
        prover = Prover(OperationalEngine(mission_db, "s"))
        tree = prover.prove(parse_query(
            "s[mission(voyager : objective -s-> spying)] << cau, "
            "s[mission(voyager : destination -u-> mars)] << cau"))
        assert tree.rule == "AND"

    def test_pretty_renders_every_node(self, d1):
        tree = Prover(OperationalEngine(d1, "c")).prove(d1_query())
        text = tree.pretty()
        assert text.count("(") >= tree.size()
        assert "<D, c>" in text


class TestLeqProofs:
    def test_reflexivity(self, d1):
        prover = Prover(OperationalEngine(d1, "c"))
        tree = prover.leq_tree("c", "c")
        assert tree.rule == "REFLEXIVITY"

    def test_transitivity_chain(self, d1):
        prover = Prover(OperationalEngine(d1, "s"))
        tree = prover.leq_tree("u", "s")
        assert tree.rule == "TRANSITIVITY"
        orders = [p.conclusion for p in tree.premises]
        assert any("order(u, c)" in c for c in orders)
        assert any("order(c, s)" in c for c in orders)
