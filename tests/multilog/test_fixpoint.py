"""Empirical check of Theorem 6.1's proof sketch: proof height bounds the
fixpoint step of the corresponding reduced fact."""

import pytest

from repro.datalog import parse_program
from repro.multilog.fixpoint import fixpoint_steps, height_step_report
from repro.workloads import d1_database, mission_multilog
from repro.workloads.generator import make_lattice, random_multilog_database


class TestFixpointSteps:
    def test_facts_are_step_zero(self):
        steps = fixpoint_steps(parse_program("edge(a, b)."))
        assert steps[("edge", ("a", "b"))] == 0

    def test_chain_depth_matches_steps(self):
        program = parse_program("""
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """)
        steps = fixpoint_steps(program)
        assert steps[("path", ("a", "b"))] == 1
        assert steps[("path", ("a", "c"))] == 2
        assert steps[("path", ("a", "d"))] == 3

    def test_strata_accumulate_steps(self):
        program = parse_program("""
            base(a). mark(a). base(b).
            clear(X) :- base(X), not mark(X).
        """)
        steps = fixpoint_steps(program)
        assert steps[("clear", ("b",))] >= 1

    def test_step_map_covers_least_model(self):
        from repro.datalog import evaluate
        program_text = """
            edge(a, b). edge(b, a).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """
        steps = fixpoint_steps(parse_program(program_text))
        model = evaluate(parse_program(program_text))
        for predicate in model.predicates():
            for row in model.rows(predicate):
                assert (predicate, row) in steps


class TestHeightBound:
    def test_d1(self):
        for pair in height_step_report(d1_database(), "c"):
            assert pair.bounded, pair

    def test_d1_at_s_with_belief_feedback(self):
        pairs = height_step_report(d1_database(), "s")
        assert pairs
        assert all(pair.bounded for pair in pairs)

    def test_mission(self):
        pairs = height_step_report(mission_multilog(), "s")
        assert len(pairs) == 30
        assert all(pair.bounded for pair in pairs)
        # stored molecules: height comes from the fact + guard subtree,
        # fixpoint step 0.
        assert all(pair.fixpoint_step == 0 for pair in pairs)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_databases(self, seed):
        db = random_multilog_database(
            10, make_lattice("chain", 4), belief_rules=2, seed=seed)
        pairs = height_step_report(db, "l3")
        assert all(pair.bounded for pair in pairs)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_diamond_databases(self, seed):
        db = random_multilog_database(
            10, make_lattice("diamond"), belief_rules=2, seed=seed)
        pairs = height_step_report(db, "hi")
        assert all(pair.bounded for pair in pairs)
