"""Unit tests for the MultiLogSession high-level API."""

import pytest

from repro.errors import MultiLogError, UnknownModeError
from repro.multilog import SYSTEM_LEVEL, MultiLogSession

ACCOUNTS = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
u[acct(bob : balance -u-> 50)].
"""


class TestConstruction:
    def test_from_source_text(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        assert session.clearance == "s"

    def test_default_clearance_is_unique_top(self):
        session = MultiLogSession(ACCOUNTS)
        assert session.clearance == "s"

    def test_ambiguous_top_requires_clearance(self):
        source = "level(a). level(b)."
        with pytest.raises(MultiLogError, match="unique top"):
            MultiLogSession(source)

    def test_empty_lambda_gets_system_level(self):
        session = MultiLogSession("q(j).")
        assert session.clearance == SYSTEM_LEVEL

    def test_with_clearance(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        low = session.with_clearance("u")
        assert low.clearance == "u"
        assert low.database is session.database


class TestAsk:
    def test_operational_default(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        answers = session.ask("s[acct(alice : balance -C-> B)] << cau")
        assert answers == [{"B": 900, "C": "s"}]

    def test_reduction_engine_agrees(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        query = "s[acct(K : balance -C-> B)] << opt"
        op = {tuple(sorted(a.items())) for a in session.ask(query)}
        red = {tuple(sorted(a.items())) for a in session.ask(query, engine="reduction")}
        assert op == red

    def test_unknown_engine(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        with pytest.raises(MultiLogError, match="unknown engine"):
            session.ask("q(X)", engine="warp")

    def test_holds(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        assert session.holds("s[acct(alice : balance -s-> 900)] << fir")
        assert not session.holds("s[acct(alice : balance -s-> 901)] << fir")

    def test_low_session_sees_less(self):
        low = MultiLogSession(ACCOUNTS, clearance="u")
        answers = low.ask("u[acct(alice : balance -C-> B)] << opt")
        assert answers == [{"B": 100, "C": "u"}]


class TestProofs:
    def test_prove_returns_tree(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        tree = session.prove("s[acct(alice : balance -u-> 100)] << opt")
        assert tree is not None
        assert tree.rule == "BELIEF"

    def test_proofs_pair_answers_with_trees(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        results = session.proofs("s[acct(K : balance -C-> B)] << fir")
        assert len(results) == 1
        answer, tree = results[0]
        assert answer["K"] == "alice"
        assert tree.rule == "BELIEF"


class TestBeliefAccessors:
    def test_believed_cells_default_level(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        rows = session.believed_cells("cau")
        balances = {(r[1], r[3]) for r in rows}
        assert balances == {("alice", 900), ("bob", 50)}

    def test_belief_speculation_downward(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        rows = session.believed_cells("cau", "u")
        assert {(r[1], r[3]) for r in rows} == {("alice", 100), ("bob", 50)}

    def test_no_read_up(self):
        session = MultiLogSession(ACCOUNTS, clearance="u")
        with pytest.raises(MultiLogError, match="read-up"):
            session.believed_cells("cau", "s")

    def test_unknown_mode(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        with pytest.raises(UnknownModeError):
            session.believed_cells("wishful")

    def test_user_mode_cells(self):
        session = MultiLogSession(ACCOUNTS + """
            bel(P, K, A, V, C, H, doubled) :- bel(P, K, A, V, C, H, fir).
        """, clearance="s")
        assert "doubled" in session.modes
        rows = session.believed_cells("doubled", "u")
        assert {(r[1], r[3]) for r in rows} == {("alice", 100), ("bob", 50)}

    def test_cells_listing(self):
        session = MultiLogSession(ACCOUNTS, clearance="u")
        assert len(session.cells()) == 2  # s-level fact not derivable at u


class TestAssertClause:
    def test_assert_invalidates_caches(self):
        session = MultiLogSession(ACCOUNTS, clearance="s")
        assert len(session.ask("s[acct(K : balance -C-> B)] << fir")) == 1
        session.assert_clause("s[acct(carol : balance -s-> 7)].")
        answers = session.ask("s[acct(K : balance -C-> B)] << fir")
        assert {a["K"] for a in answers} == {"alice", "carol"}

    def test_assert_checks_admissibility(self):
        from repro.errors import AdmissibilityError
        session = MultiLogSession(ACCOUNTS, clearance="s")
        with pytest.raises(AdmissibilityError):
            session.assert_clause("t[acct(dave : balance -t-> 1)].")


class TestConsistencyHook:
    def test_mission_is_consistent(self, mission_db):
        assert MultiLogSession(mission_db, "s").check_consistency().ok

    def test_d1_reports_entity_violation(self, d1):
        report = MultiLogSession(d1, "c").check_consistency()
        assert not report.ok


class TestStoredQueries:
    def test_d1_query_component_runs(self, d1):
        session = MultiLogSession(d1, "c")
        results = session.run_stored_queries()
        assert len(results) == 1
        query, answers = results[0]
        assert "opt" in str(query)
        assert answers == [{}]  # Example 5.2 succeeds

    def test_stored_queries_respect_clearance(self, d1):
        session = MultiLogSession(d1, "u")
        _query, answers = session.run_stored_queries()[0]
        assert answers == []  # c-level belief unprovable at u

    def test_reduction_engine_agrees(self, d1):
        session = MultiLogSession(d1, "c")
        operational = session.run_stored_queries()[0][1]
        reduction = session.run_stored_queries(engine="reduction")[0][1]
        assert operational == reduction
