"""Unit tests for the FILTER / FILTER-NULL proof rules (Figure 13)."""

import pytest

from repro.multilog import OperationalEngine, filter_proof, filtered_cells
from repro.multilog.ast import NULL_VALUE


@pytest.fixture()
def engine(mission_db):
    return OperationalEngine(mission_db, "s")


class TestFilterProof:
    def test_every_filtered_cell_has_a_proof(self, engine):
        for level in ("u", "c"):
            for cell in filtered_cells(engine, level):
                tree = filter_proof(engine, cell, level)
                assert tree is not None

    def test_descended_cell_uses_filter_rule(self, engine):
        cell = ("mission", "voyager", "destination", "mars", "u", "c")
        tree = filter_proof(engine, cell, "c")
        assert tree.rule == "FILTER"
        # First premise: the descend l <= R, here c <= s.
        assert "c <= s" in tree.premises[0].conclusion
        # Second premise: the source cell's own derivation.
        assert tree.premises[1].rule == "DEDUCTION-G'"

    def test_null_cell_uses_filter_null_rule(self, engine):
        cell = ("mission", "voyager", "objective", NULL_VALUE, "u", "c")
        tree = filter_proof(engine, cell, "c")
        assert tree.rule == "FILTER-NULL"
        assert "spying" in tree.premises[1].conclusion  # the hidden source

    def test_ordinarily_visible_cell_needs_no_filter(self, engine):
        cell = ("mission", "eagle", "objective", "patrolling", "u", "u")
        tree = filter_proof(engine, cell, "c")
        assert tree.rule == "DEDUCTION-G'"

    def test_surprise_story_nulls_distinguish_lineages(self, engine):
        """The two phantom objective nulls carry different key classes and
        each proof descends into its own molecule."""
        t4_null = ("mission", "phantom", "objective", NULL_VALUE, "u", "c")
        t5_null = ("mission", "phantom", "objective", NULL_VALUE, "c", "c")
        tree4 = filter_proof(engine, t4_null, "c")
        tree5 = filter_proof(engine, t5_null, "c")
        assert "spying" in tree4.premises[1].conclusion
        assert "supply" in tree5.premises[1].conclusion

    def test_non_filtered_cell_rejected(self, engine):
        with pytest.raises(ValueError):
            filter_proof(engine, ("mission", "ghost", "objective",
                                  "nothing", "u", "u"), "u")
