"""Unit tests for the interactive shell (pure line-executor interface)."""

import pytest

from repro.cli import Shell, ShellExit
from repro.workloads.d1 import D1_SOURCE

ACCOUNTS = """
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""


@pytest.fixture()
def shell():
    return Shell(ACCOUNTS, clearance="s")


class TestQueries:
    def test_bare_goal(self, shell):
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert out == "B = 900, C = s"

    def test_prefixed_query(self, shell):
        out = shell.execute_line("?- s[acct(alice : balance -s-> 900)] << fir.")
        assert out == "yes."

    def test_failing_query(self, shell):
        assert shell.execute_line("s[acct(bob : balance -C-> B)] << cau") == "no."

    def test_multiple_answers(self, shell):
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << opt")
        assert len(out.splitlines()) == 2

    def test_reduction_engine(self, shell):
        shell.execute_line(":engine reduction")
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert out == "B = 900, C = s"


class TestAssertions:
    def test_assert_clause(self, shell):
        assert shell.execute_line("u[acct(bob : balance -u-> 7)].") == "asserted."
        out = shell.execute_line("s[acct(bob : balance -C-> B)] << cau")
        assert out == "B = 7, C = u"

    def test_bad_clause_reports_error(self, shell):
        out = shell.execute_line("u[acct(bob : balance -zz-> 7)].")
        assert out.startswith("error:")

    def test_blank_and_comment_lines(self, shell):
        assert shell.execute_line("") == ""
        assert shell.execute_line("% just a comment") == ""


class TestCommands:
    def test_help(self, shell):
        assert ":believe" in shell.execute_line(":help")

    def test_quit_raises(self, shell):
        with pytest.raises(ShellExit):
            shell.execute_line(":quit")

    def test_clearance_switch(self, shell):
        assert "set to 'u'" in shell.execute_line(":clearance u")
        assert shell.clearance == "u"
        assert shell.execute_line("s[acct(alice : balance -C-> B)] << fir") == "no."

    def test_clearance_query(self, shell):
        assert "'s'" in shell.execute_line(":clearance")

    def test_modes(self, shell):
        assert "cau" in shell.execute_line(":modes")

    def test_lattice(self, shell):
        out = shell.execute_line(":lattice")
        assert "u < s" in out

    def test_cells_table(self, shell):
        out = shell.execute_line(":cells")
        assert "alice" in out
        assert "900" in out

    def test_believe_table(self, shell):
        out = shell.execute_line(":believe cau")
        assert "900" in out

    def test_believe_at_level(self, shell):
        out = shell.execute_line(":believe cau u")
        assert "100" in out

    def test_believe_usage(self, shell):
        assert "usage" in shell.execute_line(":believe")

    def test_consistency_flags_missing_key_cell(self, shell):
        # The accounts fixture (like the paper's D1) has no key cells.
        assert "no key cell" in shell.execute_line(":consistency")

    def test_consistency_clean_database(self):
        shell = Shell("""
            level(u). level(s). order(u, s).
            u[acct(alice : acct -u-> alice; balance -u-> 100)].
        """, clearance="s")
        assert "consistent" in shell.execute_line(":consistency")

    def test_prove(self, shell):
        out = shell.execute_line(":prove s[acct(alice : balance -u-> 100)] << opt")
        assert "(BELIEF)" in out
        assert "(DESCEND-O)" in out

    def test_prove_failure(self, shell):
        assert shell.execute_line(":prove s[acct(x : y -u-> z)] << opt") == "no proof."

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute_line(":warp")

    def test_engine_validation(self, shell):
        assert "error" in shell.execute_line(":engine warp")


class TestLoad:
    def test_load_file_runs_queries(self, tmp_path):
        path = tmp_path / "d1.mlog"
        path.write_text(D1_SOURCE)
        shell = Shell()
        out = shell.execute_line(f":load {path}")
        assert "loaded 5 lattice, 3 secured, 1 plain clause(s)" in out
        assert "yes." in out  # r10 evaluated on load

    def test_load_missing_file(self):
        assert "no such file" in Shell().execute_line(":load /nope/missing.mlog")

    def test_load_usage(self):
        assert "usage" in Shell().execute_line(":load")


class TestMainLoop:
    def test_main_reads_until_quit(self, monkeypatch, capsys, tmp_path):
        from repro import cli

        path = tmp_path / "db.mlog"
        path.write_text("level(u). u[p(k : a -u-> v)].")
        lines = iter([
            "u[p(k : a -C-> V)] << cau",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda _prompt: next(lines))
        assert cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "C = u, V = v" in out

    def test_main_handles_eof(self, monkeypatch, capsys):
        from repro import cli

        def raise_eof(_prompt):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert cli.main([]) == 0

    def test_main_clearance_flag(self, monkeypatch, capsys, tmp_path):
        from repro import cli

        path = tmp_path / "db.mlog"
        path.write_text("level(u). level(s). order(u, s).")
        lines = iter([":clearance", ":quit"])
        monkeypatch.setattr("builtins.input", lambda _prompt: next(lines))
        assert cli.main([str(path), "--clearance", "u"]) == 0
        assert "'u'" in capsys.readouterr().out


class TestObservability:
    def test_stats_before_any_query(self, shell):
        assert "no stats yet" in shell.execute_line(":stats")

    def test_stats_after_query(self, shell):
        shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        out = shell.execute_line(":stats")
        assert "asks: 1" in out

    def test_stats_accumulate(self, shell):
        shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        shell.execute_line("s[acct(alice : balance -C-> B)] << fir")
        assert "asks: 2" in shell.execute_line(":stats")

    def test_explain_dumps_plan(self, shell):
        out = shell.execute_line(":explain")
        assert "stratum" in out

    def test_trace_toggle(self, shell):
        assert "on" in shell.execute_line(":trace on")
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert "query" in out  # span tree appended below the answers
        assert "off" in shell.execute_line(":trace off")
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert "query" not in out

    def test_trace_usage(self, shell):
        assert "usage" in shell.execute_line(":trace maybe")

    def test_help_mentions_obs_commands(self, shell):
        out = shell.execute_line(":help")
        assert ":stats" in out
        assert ":explain" in out

    def test_main_explain_flag(self, capsys, tmp_path):
        from repro import cli

        path = tmp_path / "db.mlog"
        path.write_text("level(u). u[p(k : a -u-> v)].")
        assert cli.main([str(path), "--explain"]) == 0
        assert "stratum" in capsys.readouterr().out

    def test_main_trace_flag(self, monkeypatch, capsys, tmp_path):
        from repro import cli

        path = tmp_path / "db.mlog"
        path.write_text("level(u). u[p(k : a -u-> v)].")
        lines = iter(["u[p(k : a -C-> V)] << cau", ":quit"])
        monkeypatch.setattr("builtins.input", lambda _prompt: next(lines))
        assert cli.main([str(path), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "fixpoint" in out
