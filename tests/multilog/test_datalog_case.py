"""Proposition 6.1: Datalog programs through MultiLog."""

import pytest

from repro.errors import MultiLogError
from repro.multilog import as_pure_datalog_database, proposition_holds, run_both

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""

SAME_GENERATION = """
flat(g1, g2).
up(a, g1). down(g2, b).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
"""


class TestProposition:
    def test_ancestor_bound(self):
        assert proposition_holds(ANCESTOR, "ancestor(a, X)")

    def test_ancestor_free(self):
        assert proposition_holds(ANCESTOR, "ancestor(X, Y)")

    def test_ancestor_ground(self):
        multilog, native = run_both(ANCESTOR, "ancestor(a, d)")
        assert multilog == native == {("a", "d")}

    def test_negative_ground_goal(self):
        multilog, native = run_both(ANCESTOR, "ancestor(d, a)")
        assert multilog == native == set()

    def test_same_generation(self):
        assert proposition_holds(SAME_GENERATION, "sg(a, X)")

    def test_facts_only_program(self):
        assert proposition_holds("p(a). p(b).", "p(X)")


class TestDegenerateCase:
    def test_pure_pi_database(self):
        session = as_pure_datalog_database(ANCESTOR)
        assert session.database.secured_clauses == []
        assert session.clearance == "system"

    def test_sigma_rejected(self):
        with pytest.raises(MultiLogError, match="Sigma"):
            as_pure_datalog_database("level(u). u[p(k : a -u-> v)].")

    def test_lambda_rejected(self):
        with pytest.raises(MultiLogError, match="Lambda"):
            as_pure_datalog_database("level(u). q(j).")

    def test_only_classical_rules_fire(self):
        """The proof trees of the degenerate case use only EMPTY, AND and
        DEDUCTION-G -- exactly the classical Datalog rules."""
        session = as_pure_datalog_database(ANCESTOR)
        results = session.proofs("ancestor(a, X)")
        assert results
        for _answer, tree in results:
            assert tree.rules_used() <= {"EMPTY", "AND", "DEDUCTION-G"}
