"""Unit tests for Definition 5.3 (admissibility)."""

import pytest

from repro.errors import AdmissibilityError
from repro.multilog import (
    check_admissibility,
    is_admissible,
    lambda_meaning,
    parse_database,
)


class TestLambdaMeaning:
    def test_basic_facts(self):
        db = parse_database("level(u). level(c). order(u, c).")
        context = lambda_meaning(db)
        assert context.lattice.leq("u", "c")
        assert ("u", "c") in context.order_rows

    def test_lambda_rules_evaluated(self):
        """Lambda clauses may have (l-/h-atom) bodies; [[Lambda]] is the
        least model, not the raw fact list."""
        db = parse_database("""
            level(u). level(c). level(s).
            order(u, c).
            order(c, s) :- order(u, c).
        """)
        context = lambda_meaning(db)
        assert context.lattice.leq("u", "s")

    def test_order_on_undeclared_level_rejected(self):
        db = parse_database("level(u). order(u, ghost).")
        with pytest.raises(AdmissibilityError, match="undeclared"):
            lambda_meaning(db)

    def test_cyclic_order_rejected(self):
        db = parse_database("level(u). level(c). order(u, c). order(c, u).")
        with pytest.raises(AdmissibilityError, match="partial order"):
            lambda_meaning(db)


class TestCondition1:
    def test_lambda_depending_on_p_atom_rejected(self):
        db = parse_database("""
            level(u).
            level(c) :- q(j).
            q(j).
        """)
        with pytest.raises(AdmissibilityError, match="non-lattice"):
            check_admissibility(db)

    def test_lambda_depending_on_m_atom_rejected(self):
        db = parse_database("""
            level(u).
            order(u, c) :- u[p(k : a -u-> v)].
            u[p(k : a -u-> v)].
        """)
        with pytest.raises(AdmissibilityError, match="non-lattice"):
            check_admissibility(db)


class TestCondition2:
    def test_undeclared_head_level_rejected(self):
        db = parse_database("level(u). s[p(k : a -u-> v)].")
        with pytest.raises(AdmissibilityError, match="not asserted"):
            check_admissibility(db)

    def test_undeclared_cell_class_rejected(self):
        db = parse_database("level(u). u[p(k : a -s-> v)].")
        with pytest.raises(AdmissibilityError, match="not asserted"):
            check_admissibility(db)

    def test_undeclared_label_in_body_rejected(self):
        db = parse_database("""
            level(u).
            u[p(k : a -u-> v)] :- s[q(k : a -u-> v)] << cau.
        """)
        with pytest.raises(AdmissibilityError):
            check_admissibility(db)

    def test_variable_levels_are_fine(self):
        db = parse_database("""
            level(u).
            u[p(k : a -u-> v)] :- L[q(K : a -C-> V)].
        """)
        assert is_admissible(db)


class TestHappyPath:
    def test_d1_admissible(self, d1):
        context = check_admissibility(d1)
        assert context.lattice.leq("u", "s")
        assert len(context.lattice) == 3

    def test_mission_admissible(self, mission_db):
        context = check_admissibility(mission_db)
        assert context.lattice.levels == {"u", "c", "s", "t"}

    def test_is_admissible_predicate(self, d1):
        assert is_admissible(d1)
        bad = parse_database("level(u). s[p(k : a -u-> v)].")
        assert not is_admissible(bad)
