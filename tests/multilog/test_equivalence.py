"""Theorem 6.1, measured: operational <=> reduction on random databases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multilog import assert_equivalent, check_equivalence, parse_query
from repro.workloads.d1 import d1_database, d1_query, mission_multilog
from repro.workloads.generator import make_lattice, random_multilog_database


class TestCanonical:
    def test_d1_at_every_level(self):
        for level in ("u", "c", "s"):
            assert_equivalent(d1_database(), level, [d1_query()])

    def test_mission_at_every_level(self):
        queries = [
            parse_query("s[mission(K : objective -C-> V)] << cau"),
            parse_query("L[mission(K : destination -C-> mars)] << opt"),
        ]
        assert_equivalent(mission_multilog(), "s", queries)
        assert_equivalent(mission_multilog(), "u")

    def test_report_structure_on_equivalent_db(self):
        report = check_equivalence(d1_database(), "c")
        assert report.equivalent
        assert report.all_messages() == []


@st.composite
def databases(draw):
    shape = draw(st.sampled_from(["chain", "diamond", "random"]))
    seed = draw(st.integers(min_value=0, max_value=3_000))
    lattice = make_lattice(shape, n_levels=draw(st.integers(2, 5)), seed=seed)
    return random_multilog_database(
        n_tuples=draw(st.integers(min_value=0, max_value=12)),
        lattice=lattice,
        n_attributes=draw(st.integers(min_value=1, max_value=3)),
        polyinstantiation_rate=draw(st.floats(min_value=0.0, max_value=0.7)),
        belief_rules=draw(st.integers(min_value=0, max_value=3)),
        plain_facts=draw(st.integers(min_value=0, max_value=2)),
        seed=seed,
    ), lattice


@given(databases(), st.data())
@settings(max_examples=40, deadline=None)
def test_theorem_61_on_random_databases(db_and_lattice, data):
    db, lattice = db_and_lattice
    clearance = data.draw(st.sampled_from(sorted(lattice.levels)))
    report = check_equivalence(db, clearance)
    assert report.equivalent, "\n".join(report.all_messages())


@given(databases(), st.data())
@settings(max_examples=25, deadline=None)
def test_theorem_61_query_answers(db_and_lattice, data):
    db, lattice = db_and_lattice
    clearance = data.draw(st.sampled_from(sorted(lattice.levels)))
    mode = data.draw(st.sampled_from(["fir", "opt", "cau"]))
    queries = [parse_query(f"{clearance}[p(K : k -C-> V)] << {mode}")]
    report = check_equivalence(db, clearance, queries)
    assert report.equivalent, "\n".join(report.all_messages())
