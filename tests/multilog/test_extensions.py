"""Unit tests for the Section 7 extensions (Figure 13)."""

import pytest

from repro.mls import NULL
from repro.mls.views import view_at
from repro.multilog import (
    OperationalEngine,
    filtered_cells,
    surprise_cells,
)
from repro.multilog.ast import NULL_VALUE


@pytest.fixture()
def engine(mission_db):
    return OperationalEngine(mission_db, "s")


class TestFilter:
    def test_matches_relational_js_view_at_c(self, engine, mission_rel):
        cells = filtered_cells(engine, "c")
        js = view_at(mission_rel, "c", apply_subsumption=False)
        expected = set()
        for t in js:
            for attr in t.schema.attributes:
                cell = t.cell(attr)
                value = NULL_VALUE if cell.value is NULL else cell.value
                expected.add(("mission", t.key_values()[0], attr, value,
                              cell.cls, t.tc))
        assert cells == expected

    def test_matches_relational_js_view_at_u(self, engine, mission_rel):
        cells = filtered_cells(engine, "u")
        js = view_at(mission_rel, "u", apply_subsumption=False)
        keys = {t.key_values()[0] for t in js}
        assert {c[1] for c in cells} == keys

    def test_high_keys_invisible(self, engine):
        cells = filtered_cells(engine, "u")
        assert not any(c[1] == "avenger" for c in cells)

    def test_filter_null_classifies_at_key_level(self, engine):
        cells = filtered_cells(engine, "c")
        nulls = [c for c in cells if c[3] == NULL_VALUE]
        assert nulls
        for cell in nulls:
            # key class of the originating molecule
            assert cell[4] in ("u", "c")

    def test_shown_level_capped(self, engine):
        cells = filtered_cells(engine, "c")
        assert all(engine.lattice.leq(c[5], "c") for c in cells)

    def test_no_read_up_for_filtered_views(self, mission_db):
        low = OperationalEngine(mission_db, "c")
        with pytest.raises(PermissionError):
            filtered_cells(low, "s")

    def test_filter_at_own_level_allowed(self, mission_db):
        low = OperationalEngine(mission_db, "c")
        assert filtered_cells(low, "c")


class TestSurpriseCells:
    def test_surprises_at_c_are_the_phantom_gaps(self, engine):
        cells = surprise_cells(engine, "c")
        assert {(c[1], c[2]) for c in cells} == {
            ("phantom", "objective"), ("phantom", "destination")}

    def test_surprises_at_u(self, engine):
        cells = surprise_cells(engine, "u")
        assert {(c[1], c[2]) for c in cells} == {("phantom", "objective")}

    def test_no_surprises_at_s(self, engine):
        assert surprise_cells(engine, "s") == set()

    def test_agrees_with_relational_detector(self, engine, mission_rel):
        from repro.mls import surprise_stories_at
        for level in ("u", "c"):
            relational = {
                (s.stored.key_values()[0], attr)
                for s in surprise_stories_at(mission_rel, level)
                for attr in s.leaked_attributes
            }
            deductive = {(c[1], c[2]) for c in surprise_cells(engine, level)}
            assert relational == deductive


class TestBetaFilterComposition:
    def test_beta_alone_produces_no_nulls(self, engine):
        """The core semantics never manufactures migrated nulls."""
        for mode in ("fir", "opt", "cau"):
            for level in ("u", "c", "s"):
                rows = engine.believed_cells(mode, level)
                assert not any(r[3] == NULL_VALUE for r in rows)

    def test_filtered_cells_do_contain_nulls(self, engine):
        assert any(c[3] == NULL_VALUE for c in filtered_cells(engine, "c"))
