"""Shared fixtures: the paper's canonical objects plus common lattices.

Also hosts the CI trace-artifact plugin: when ``MULTILOG_TRACE_ARTIFACT``
names a file, every test runs under an ambient observation context and
the *slowest* test's span forest is written there in Chrome-trace format
at session end -- CI uploads it on failure so the heaviest evaluation of
a red run can be opened in Perfetto without a local repro.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.lattice import SecurityLattice, diamond, military_chain
from repro.workloads.d1 import d1_database, mission_multilog
from repro.workloads.mission import mission_relation, mission_schema

_TRACE_ARTIFACT = os.environ.get("MULTILOG_TRACE_ARTIFACT")
_slowest: dict = {"elapsed": -1.0, "nodeid": None, "recorder": None}


@pytest.fixture(autouse=_TRACE_ARTIFACT is not None)
def _trace_artifact_recorder(request):
    """Trace each test; remember the slowest one's span forest."""
    if _TRACE_ARTIFACT is None:  # autouse disabled, but be defensive
        yield
        return
    from repro.obs import observe, use

    ctx = observe()
    started = time.perf_counter()
    with use(ctx):
        yield
    elapsed = time.perf_counter() - started
    if elapsed > _slowest["elapsed"] and ctx.recorder.roots:
        _slowest.update(elapsed=elapsed, nodeid=request.node.nodeid,
                        recorder=ctx.recorder)


def pytest_sessionfinish(session, exitstatus):
    if _TRACE_ARTIFACT is None or _slowest["recorder"] is None:
        return
    from repro.obs import render_chrome_trace

    try:
        with open(_TRACE_ARTIFACT, "w", encoding="utf-8") as handle:
            handle.write(render_chrome_trace(_slowest["recorder"]))
            handle.write("\n")
        print(f"\n[trace-artifact] slowest traced test {_slowest['nodeid']} "
              f"({_slowest['elapsed']:.3f}s) -> {_TRACE_ARTIFACT}")
    except OSError as exc:  # never fail the run over telemetry
        print(f"\n[trace-artifact] could not write {_TRACE_ARTIFACT}: {exc}")


@pytest.fixture()
def ucst() -> SecurityLattice:
    """The military chain u < c < s < t."""
    return military_chain()


@pytest.fixture()
def diamond_lattice() -> SecurityLattice:
    """lo < {a, b} < hi."""
    return diamond()


@pytest.fixture()
def mission():
    """The Figure 1 relation and its tid map."""
    return mission_relation()


@pytest.fixture()
def mission_rel(mission):
    relation, _tids = mission
    return relation


@pytest.fixture()
def mission_tids(mission):
    _relation, tids = mission
    return tids


@pytest.fixture()
def schema():
    return mission_schema()


@pytest.fixture()
def d1():
    """Database D1 of Figure 10 (fresh parse per test)."""
    return d1_database()


@pytest.fixture()
def mission_db():
    """The MultiLog encoding of Mission (fresh parse per test)."""
    return mission_multilog()
