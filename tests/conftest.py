"""Shared fixtures: the paper's canonical objects plus common lattices."""

from __future__ import annotations

import pytest

from repro.lattice import SecurityLattice, diamond, military_chain
from repro.workloads.d1 import d1_database, mission_multilog
from repro.workloads.mission import mission_relation, mission_schema


@pytest.fixture()
def ucst() -> SecurityLattice:
    """The military chain u < c < s < t."""
    return military_chain()


@pytest.fixture()
def diamond_lattice() -> SecurityLattice:
    """lo < {a, b} < hi."""
    return diamond()


@pytest.fixture()
def mission():
    """The Figure 1 relation and its tid map."""
    return mission_relation()


@pytest.fixture()
def mission_rel(mission):
    relation, _tids = mission
    return relation


@pytest.fixture()
def mission_tids(mission):
    _relation, tids = mission
    return tids


@pytest.fixture()
def schema():
    return mission_schema()


@pytest.fixture()
def d1():
    """Database D1 of Figure 10 (fresh parse per test)."""
    return d1_database()


@pytest.fixture()
def mission_db():
    """The MultiLog encoding of Mission (fresh parse per test)."""
    return mission_multilog()
