"""ResilientExecutor unit tests: retry, ladder, partial degradation."""

import pytest

from repro.datalog import evaluate, parse_program
from repro.errors import (
    BudgetExceededError,
    FaultInjectedError,
    TransientFaultError,
    UnsafeRuleError,
)
from repro.multilog import MultiLogSession
from repro.obs import EvaluationBudget, ObsContext, use
from repro.resilience import (
    FaultPlan,
    PartialResult,
    ResilientExecutor,
    RetryPolicy,
)

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
"""

MLOG = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"


def baseline_rows():
    return evaluate(parse_program(PROGRAM)).rows("path")


class TestRetry:
    def test_transient_fault_is_retried_to_identical_answers(self):
        plan = FaultPlan()
        plan.arm("stratum[*]", error="transient")
        executor = ResilientExecutor()
        with use(ObsContext(faults=plan)):
            db = executor.evaluate(parse_program(PROGRAM))
        assert db.rows("path") == baseline_rows()
        outcome = executor.last_outcome
        assert outcome.retries == 1
        assert outcome.rung == "compiled"
        assert outcome.degraded is None

    def test_corruption_is_retried_too(self):
        plan = FaultPlan()
        plan.arm("rule-fire", action="corrupt")
        executor = ResilientExecutor()
        with use(ObsContext(faults=plan)):
            db = executor.evaluate(parse_program(PROGRAM))
        assert db.rows("path") == baseline_rows()
        assert executor.last_outcome.retries == 1

    def test_retries_are_capped(self):
        plan = FaultPlan()
        plan.arm("evaluate", error="transient", times=None)  # never heals
        executor = ResilientExecutor(retry=RetryPolicy(max_retries=1))
        with use(ObsContext(faults=plan)):
            with pytest.raises(TransientFaultError):
                executor.evaluate(parse_program(PROGRAM))
        # 2 attempts per rung (1 retry), 3 rungs.
        assert executor.last_outcome.attempts == 6
        assert executor.last_outcome.fallbacks == 2

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=0.35)
        assert [policy.delay_for(n) for n in range(4)] == [0.1, 0.2, 0.35, 0.35]
        # And the executor actually sleeps those delays.
        slept = []
        plan = FaultPlan()
        plan.arm("evaluate", error="transient", times=2)
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=2, base_delay_s=0.1, max_delay_s=0.35),
            sleep=slept.append)
        with use(ObsContext(faults=plan)):
            db = executor.evaluate(parse_program(PROGRAM))
        assert db.rows("path") == baseline_rows()
        assert slept == [0.1, 0.2]

    def test_permanent_fault_propagates_immediately(self):
        plan = FaultPlan()
        plan.arm("evaluate", error="permanent")
        executor = ResilientExecutor()
        with use(ObsContext(faults=plan)):
            with pytest.raises(FaultInjectedError):
                executor.evaluate(parse_program(PROGRAM))
        assert executor.last_outcome.attempts == 1

    def test_real_program_errors_propagate(self):
        executor = ResilientExecutor()
        with pytest.raises(UnsafeRuleError):
            executor.evaluate(parse_program("p(X) :- not q(X)."))


class TestLadder:
    def test_strategy_failure_falls_to_next_rung(self):
        plan = FaultPlan()
        # rule-fire spans exist in compiled and seminaive, not naive.
        plan.arm("rule-fire", error="strategy", times=None)
        executor = ResilientExecutor()
        with use(ObsContext(faults=plan)):
            db = executor.evaluate(parse_program(PROGRAM))
        assert db.rows("path") == baseline_rows()
        outcome = executor.last_outcome
        assert outcome.rung == "naive"
        assert outcome.fallbacks == 2
        assert outcome.degraded == "naive:fallback"

    def test_ladder_starts_at_the_requested_strategy(self):
        executor = ResilientExecutor()
        assert executor._rungs_from("seminaive") == ("seminaive", "naive")
        assert executor._rungs_from("naive") == ("naive",)
        assert executor._rungs_from("topdown") == ("topdown",)

    def test_exhausted_transient_retries_descend_the_ladder(self):
        plan = FaultPlan()
        # Heals after 4 firings: compiled rung (1 + 2 retries) fails, the
        # seminaive rung's first attempt fails, its retry succeeds.
        plan.arm("stratum[*]", error="transient", times=4)
        executor = ResilientExecutor()
        with use(ObsContext(faults=plan)):
            db = executor.evaluate(parse_program(PROGRAM))
        assert db.rows("path") == baseline_rows()
        assert executor.last_outcome.rung == "seminaive"


class TestPartial:
    def test_budget_raises_without_opt_in(self):
        executor = ResilientExecutor(budget=EvaluationBudget(max_rounds=1))
        with pytest.raises(BudgetExceededError):
            executor.evaluate(parse_program(PROGRAM))

    def test_budget_degrades_to_partial_with_opt_in(self):
        executor = ResilientExecutor(allow_partial=True,
                                     budget=EvaluationBudget(max_rounds=1))
        result = executor.evaluate(parse_program(PROGRAM))
        assert isinstance(result, PartialResult)
        assert result.complete is False
        assert result.reason == "budget-rounds"
        assert result.rung == "compiled"
        # Negation-free: the partial model is a subset of the true model.
        assert result.database is not None
        assert result.database.rows("path") < baseline_rows()
        assert executor.last_outcome.degraded == "compiled:budget-rounds"

    def test_partial_ask_flags_and_salvages(self):
        session = MultiLogSession(MLOG, clearance="s",
                                  budget=EvaluationBudget(max_rounds=1))
        executor = ResilientExecutor(allow_partial=True)
        result = executor.ask(session, QUERY, engine="reduction")
        assert isinstance(result, PartialResult)
        assert result.complete is False
        # Degradation is surfaced through the session's observability.
        assert session.last_stats().degraded == "compiled:budget-rounds"
        root = session.last_trace().roots[-1]
        assert root.attrs.get("degraded") is True

    def test_complete_results_are_never_wrapped(self):
        session = MultiLogSession(MLOG, clearance="s")
        executor = ResilientExecutor(allow_partial=True)
        answers = executor.ask(session, QUERY)
        assert answers == [{"B": 900, "C": "s"}]
        assert session.last_stats().degraded is None


class TestAskResilience:
    def test_transient_ask_is_retried_to_identical_answers(self):
        session = MultiLogSession(MLOG, clearance="s")
        expected = session.ask(QUERY)
        plan = FaultPlan()
        plan.arm("query", error="transient")
        session.arm_faults(plan)
        executor = ResilientExecutor()
        assert executor.ask(session, QUERY) == expected
        assert executor.last_outcome.retries == 1

    def test_strategy_failure_serves_ask_from_lower_rung(self):
        expected = MultiLogSession(MLOG, clearance="s").ask(QUERY, engine="reduction")
        # Fresh session so the first rung actually evaluates (a cached
        # reduced model would never reach the faulted stratum spans).
        session = MultiLogSession(MLOG, clearance="s")
        plan = FaultPlan()
        plan.arm("stratum[*]", error="strategy")  # kills the compiled rung
        session.arm_faults(plan)
        executor = ResilientExecutor()
        answers = executor.ask(session, QUERY, engine="reduction")
        assert answers == expected
        assert executor.last_outcome.rung == "seminaive"
        assert session.last_stats().degraded == "seminaive:fallback"

    def test_armed_session_faults_hit_plain_asks(self):
        session = MultiLogSession(MLOG, clearance="s")
        plan = FaultPlan()
        plan.arm("query", error="permanent")
        session.arm_faults(plan)
        with pytest.raises(FaultInjectedError):
            session.ask(QUERY)
        session.disarm_faults()
        assert session.ask(QUERY) == [{"B": 900, "C": "s"}]
