"""FaultPlan unit tests: matching, counting, determinism, wiring."""

import pytest

from repro.datalog import evaluate, parse_program
from repro.errors import (
    DataCorruptionError,
    FaultInjectedError,
    StrategyFailureError,
    TransientFaultError,
    is_transient,
)
from repro.obs import ObsContext, TraceRecorder, use
from repro.resilience import FaultPlan, FaultSpec, InjectingRecorder

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
"""


class TestMatching:
    def test_exact_point(self):
        assert FaultSpec("evaluate").matches("evaluate")
        assert not FaultSpec("evaluate").matches("stratify")

    def test_indexed_family(self):
        spec = FaultSpec("stratum[*]")
        assert spec.matches("stratum[0]")
        assert spec.matches("stratum[12]")
        assert not spec.matches("round[0]")
        assert not spec.matches("stratum")

    def test_literal_brackets_not_a_character_class(self):
        # fnmatch would read [0] as a class; ours must match literally.
        assert FaultSpec("round[*]").matches("round[3]")

    def test_wildcard_everything(self):
        assert FaultSpec("*").matches("anything-at-all")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("evaluate", action="explode")
        with pytest.raises(ValueError):
            FaultSpec("evaluate", error="catastrophic")


class TestFiring:
    def test_transient_raise_and_counters(self):
        plan = FaultPlan()
        spec = plan.arm("evaluate", error="transient")
        with pytest.raises(TransientFaultError) as excinfo:
            plan.on_span("evaluate")
        assert excinfo.value.point == "evaluate"
        assert is_transient(excinfo.value)
        assert (spec.hits, spec.fired) == (1, 1)
        # times=1: consumed, second hit passes through.
        plan.on_span("evaluate")
        assert (spec.hits, spec.fired) == (2, 1)
        assert plan.history == [("evaluate", "raise")]

    def test_permanent_and_strategy_and_corrupt(self):
        plan = FaultPlan()
        plan.arm("a", error="permanent")
        plan.arm("b", error="strategy")
        plan.arm("c", action="corrupt")
        with pytest.raises(FaultInjectedError):
            plan.on_span("a")
        with pytest.raises(StrategyFailureError):
            plan.on_span("b")
        with pytest.raises(DataCorruptionError) as excinfo:
            plan.on_span("c")
        assert is_transient(excinfo.value)

    def test_after_skips_initial_hits(self):
        plan = FaultPlan()
        plan.arm("p", after=2)
        plan.on_span("p")
        plan.on_span("p")
        with pytest.raises(TransientFaultError):
            plan.on_span("p")

    def test_times_none_fires_forever(self):
        plan = FaultPlan()
        plan.arm("p", times=None)
        for _ in range(5):
            with pytest.raises(TransientFaultError):
                plan.on_span("p")

    def test_delay_action_sleeps(self):
        slept = []
        plan = FaultPlan(sleep=slept.append)
        plan.arm("p", action="delay", delay_s=0.25)
        plan.on_span("p")  # must not raise
        assert slept == [0.25]

    def test_seeded_probability_is_deterministic(self):
        def firings(seed):
            plan = FaultPlan(seed=seed)
            plan.arm("p", probability=0.5, times=None)
            out = []
            for index in range(40):
                try:
                    plan.on_span("p")
                    out.append(0)
                except TransientFaultError:
                    out.append(1)
            return out

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)
        assert 0 < sum(firings(7)) < 40

    def test_reset_rewinds_counters_history_and_rng(self):
        plan = FaultPlan(seed=3)
        spec = plan.arm("p", probability=0.5, times=None)
        first = []
        for _ in range(10):
            try:
                plan.on_span("p")
                first.append(0)
            except TransientFaultError:
                first.append(1)
        plan.reset()
        assert (spec.hits, spec.fired) == (0, 0)
        assert plan.history == []
        second = []
        for _ in range(10):
            try:
                plan.on_span("p")
                second.append(0)
            except TransientFaultError:
                second.append(1)
        assert first == second

    def test_disarm(self):
        plan = FaultPlan()
        plan.arm("p")
        plan.arm("q")
        assert plan.disarm("p") == 1
        plan.on_span("p")  # no longer armed
        assert plan.disarm() == 1  # drop everything
        plan.on_span("q")


class TestObsContextWiring:
    def test_context_wraps_recorder(self):
        plan = FaultPlan()
        ctx = ObsContext(faults=plan)
        assert isinstance(ctx.recorder, InjectingRecorder)
        assert ctx.faults is plan
        assert ctx.enabled  # faults alone enable the context

    def test_injection_reaches_engine_spans(self):
        plan = FaultPlan()
        plan.arm("stratum[*]", error="permanent")
        with use(ObsContext(faults=plan)):
            with pytest.raises(FaultInjectedError):
                evaluate(parse_program(PROGRAM))
        assert plan.history == [("stratum[0]", "raise")]

    def test_tracing_still_works_through_the_wrapper(self):
        plan = FaultPlan()  # armed with nothing: pure pass-through
        recorder = TraceRecorder()
        with use(ObsContext(recorder, faults=plan)):
            evaluate(parse_program(PROGRAM))
        names = [root.name for root in recorder.roots]
        assert "evaluate" in names
        assert recorder.find("stratum[0]")

    def test_injected_raise_leaves_no_open_span(self):
        plan = FaultPlan()
        plan.arm("stratum[*]", error="permanent")
        recorder = TraceRecorder()
        with use(ObsContext(recorder, faults=plan)):
            with pytest.raises(FaultInjectedError):
                evaluate(parse_program(PROGRAM))
        assert recorder._stack == []
        recorder.pretty()  # renderable, no half-open nodes
