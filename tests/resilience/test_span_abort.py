"""Satellite regression: budget aborts leave a complete, renderable trace.

Every span a :class:`~repro.errors.BudgetExceededError` unwinds through
must be closed (finite duration, popped off the recorder stack) and
carry ``aborted=True``, so ``last_trace()`` renders the whole tree and
shows exactly where the abort cut the evaluation.
"""

import pytest

from repro.datalog import evaluate, parse_program
from repro.errors import BudgetExceededError
from repro.multilog import MultiLogSession
from repro.obs import EvaluationBudget, ObsContext, TraceRecorder, use

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
"""

MLOG = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
s[acct(alice : balance -s-> 900)].
"""


def all_spans(span):
    yield span
    for child in span.children:
        yield from all_spans(child)


class TestEngineAbort:
    def test_budget_abort_closes_every_span(self):
        recorder = TraceRecorder()
        with use(ObsContext(recorder)):
            with pytest.raises(BudgetExceededError):
                evaluate(parse_program(PROGRAM),
                         budget=EvaluationBudget(max_rounds=1))
        assert recorder._stack == []  # nothing left half-open
        spans = [s for root in recorder.roots for s in all_spans(root)]
        assert spans
        for span in spans:
            assert span.elapsed_s > 0.0  # timed and closed

    def test_unwound_spans_are_marked_aborted(self):
        recorder = TraceRecorder()
        with use(ObsContext(recorder)):
            with pytest.raises(BudgetExceededError):
                evaluate(parse_program(PROGRAM),
                         budget=EvaluationBudget(max_rounds=1))
        aborted = [s.name for root in recorder.roots
                   for s in all_spans(root) if s.attrs.get("aborted")]
        assert "evaluate" in aborted
        # Completed spans (earlier strata/rounds) are NOT marked.
        finished = [s for root in recorder.roots
                    for s in all_spans(root) if not s.attrs.get("aborted")]
        assert finished

    def test_aborted_tree_still_renders(self):
        recorder = TraceRecorder()
        with use(ObsContext(recorder)):
            with pytest.raises(BudgetExceededError):
                evaluate(parse_program(PROGRAM),
                         budget=EvaluationBudget(max_rounds=1))
        rendered = recorder.pretty()
        assert "evaluate" in rendered
        recorder.to_json()  # serializable too


class TestSessionAbort:
    def test_last_trace_is_complete_after_ask_abort(self):
        session = MultiLogSession(MLOG, clearance="s",
                                  budget=EvaluationBudget(max_rounds=1))
        with pytest.raises(BudgetExceededError):
            session.ask("s[acct(alice : balance -C-> B)] << cau",
                        engine="reduction")
        trace = session.last_trace()
        assert trace.roots
        root = trace.roots[-1]
        assert root.attrs.get("aborted") is True
        for span in all_spans(root):
            assert span.elapsed_s > 0.0
        trace.pretty()

    def test_successful_ask_has_no_aborted_marks(self):
        session = MultiLogSession(MLOG, clearance="s")
        session.ask("s[acct(alice : balance -C-> B)] << cau")
        root = session.last_trace().roots[-1]
        assert not any(s.attrs.get("aborted") for s in all_spans(root))
