"""CLI resilience surface: ``run``/``recover`` subcommands, ``:faults``."""

import pytest

from repro.cli import Shell, main
from repro.multilog import MultiLogSession

SOURCE = """\
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
?- s[acct(alice : balance -C-> B)] << cau.
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "bank.mlog"
    path.write_text(SOURCE)
    return path


class TestRunSubcommand:
    def test_run_prints_answers(self, program, capsys):
        assert main(["run", str(program), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "B = 900" in out
        assert "C = s" in out

    def test_run_accepts_resilience_flags(self, program, capsys):
        code = main(["run", str(program), "--clearance", "s",
                     "--engine", "reduction", "--retries", "1",
                     "--backoff", "0.0", "--allow-partial"])
        assert code == 0
        assert "B = 900" in capsys.readouterr().out

    def test_run_timeout_with_allow_partial_flags_partials(self, tmp_path, capsys):
        # A zero-second wall-clock budget forces degradation on any query.
        path = tmp_path / "slow.mlog"
        path.write_text(SOURCE)
        code = main(["run", str(path), "--clearance", "s",
                     "--timeout", "0", "--allow-partial"])
        assert code == 0
        assert "(partial:" in capsys.readouterr().out

    def test_run_timeout_without_opt_in_fails(self, program, capsys):
        code = main(["run", str(program), "--clearance", "s", "--timeout", "0"])
        assert code == 1
        assert "error:" in capsys.readouterr().out

    def test_run_missing_file_is_a_usage_error(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.mlog")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_journal_records_the_load(self, program, tmp_path, capsys):
        journal = tmp_path / "wal.jsonl"
        assert main(["run", str(program), "--clearance", "s",
                     "--journal", str(journal)]) == 0
        assert journal.exists()
        recovered = MultiLogSession.recover(journal, clearance="s")
        assert recovered.ask("s[acct(alice : balance -C-> B)] << cau") == [
            {"B": 900, "C": "s"}]


class TestRecoverSubcommand:
    def make_journal(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=journal)
        session.assert_clause("u[acct(bob : name -u-> bob)].")
        session.journal.close()
        return journal

    def test_recover_reports_both_definitions(self, tmp_path, capsys):
        journal = self.make_journal(tmp_path)
        assert main(["recover", str(journal), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "admissibility (Def 5.3): ok" in out
        assert "consistency (Def 5.4):" in out

    def test_recover_prints_the_recovery_summary(self, tmp_path, capsys):
        journal = self.make_journal(tmp_path)
        assert main(["recover", str(journal), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "recovered database version:" in out
        assert "quarantined: nothing" in out

    def test_recover_reports_a_quarantined_torn_tail(self, tmp_path, capsys):
        journal = self.make_journal(tmp_path)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"type": "clause", "text": "u[half')  # torn write
        assert main(["recover", str(journal), "--clearance", "s"]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 torn/corrupt tail record(s)" in out
        assert journal.with_name(journal.name + ".quarantine").exists()

    def test_recover_compact_collapses_the_journal(self, tmp_path, capsys):
        journal = self.make_journal(tmp_path)
        assert main(["recover", str(journal), "--compact"]) == 0
        assert "compacted journal" in capsys.readouterr().out
        lines = journal.read_text().splitlines()
        assert len(lines) == 2  # open + snapshot

    def test_recover_missing_journal_fails(self, tmp_path, capsys):
        code = main(["recover", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFaultsCommand:
    def test_faults_arm_show_and_disarm(self):
        shell = Shell(SOURCE, clearance="s")
        assert "no faults armed" in shell.execute_line(":faults")
        out = shell.execute_line(":faults raise query transient")
        assert "armed:" in out and "query" in out
        assert "query" in shell.execute_line(":faults")
        # The armed fault actually fires on the next query...
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert "error" in out.lower()
        # ...once (times=1), then the session heals.
        out = shell.execute_line("s[acct(alice : balance -C-> B)] << cau")
        assert "B = 900" in out
        assert shell.execute_line(":faults off") == "faults disarmed"

    def test_faults_delay_and_corrupt_verbs(self):
        shell = Shell(SOURCE, clearance="s")
        assert "armed:" in shell.execute_line(":faults delay query 0.01")
        assert "armed:" in shell.execute_line(":faults corrupt parse")

    def test_faults_bad_usage_is_reported(self):
        shell = Shell(SOURCE, clearance="s")
        assert "usage" in shell.execute_line(":faults raise")
        assert "unknown" in shell.execute_line(":faults explode query")
        assert "error" in shell.execute_line(":faults raise query catastrophic")

    def test_clearance_switch_preserves_the_plan(self):
        shell = Shell(SOURCE, clearance="s")
        shell.execute_line(":faults raise query transient")
        shell.execute_line(":clearance u")
        assert "query" in shell.execute_line(":faults")

    def test_help_mentions_faults(self):
        shell = Shell(SOURCE, clearance="s")
        assert ":faults" in shell.execute_line(":help")
