"""Serving-attempt stats (PR 5 satellite): after the ladder settles,
``last_stats()`` reports the counters of the attempt that produced the
answers -- aborted tries are rolled back, not merged in -- stamped with
``attempt``/``rung`` and the cumulative resilience counters."""

import pytest

from repro.errors import BudgetExceededError
from repro.multilog import MultiLogSession
from repro.obs import EvaluationBudget
from repro.resilience import FaultPlan, ResilientExecutor

MLOG = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"


def clean_stats():
    session = MultiLogSession(MLOG, clearance="s")
    ResilientExecutor().ask(session, QUERY)
    return session.last_stats()


class TestServingAttempt:
    def test_fault_free_ask_is_attempt_one(self):
        stats = clean_stats()
        assert stats.attempt == 1
        assert stats.rung == "compiled"
        assert stats.retries == 0
        assert stats.fallbacks == 0
        assert "served by: attempt 1 on rung compiled" in stats.summary()

    def test_retried_ask_reports_only_the_serving_attempt(self):
        baseline = clean_stats()
        session = MultiLogSession(MLOG, clearance="s")
        plan = FaultPlan()
        plan.arm("query", error="transient", times=2)
        session.arm_faults(plan)
        ResilientExecutor().ask(session, QUERY)
        stats = session.last_stats()
        assert stats.attempt == 3
        assert stats.retries == 2
        # The two aborted attempts were rolled back: engine counters
        # match a fault-free run, not three runs merged.
        assert stats.total_firings == baseline.total_firings
        assert stats.join_probes == baseline.join_probes
        assert stats.asks == 1
        assert "served by: attempt 3 on rung compiled" in stats.summary()

    def test_fallback_reports_the_lower_rung(self):
        session = MultiLogSession(MLOG, clearance="s")
        plan = FaultPlan()
        plan.arm("stratum[*]", error="strategy")
        session.arm_faults(plan)
        ResilientExecutor().ask(session, QUERY, engine="reduction")
        stats = session.last_stats()
        assert stats.rung == "seminaive"
        assert stats.fallbacks == 1
        assert stats.degraded == "seminaive:fallback"
        assert "served by:" in stats.summary()

    def test_partial_budget_keeps_the_aborted_attempts_counters(self):
        session = MultiLogSession(MLOG, clearance="s",
                                  budget=EvaluationBudget(max_rounds=1))
        executor = ResilientExecutor(allow_partial=True)
        answers = executor.ask(session, QUERY)
        assert getattr(answers, "complete", True) is False
        stats = session.last_stats()
        # The budget-aborted attempt IS the serving one: its partial
        # counters survive (no rollback) so :stats shows where it died.
        assert stats.degraded_asks == 1
        assert stats.budget_exceeded is not None or stats.degraded

    def test_budget_raise_still_attaches_serving_metrics(self):
        session = MultiLogSession(MLOG, clearance="s",
                                  budget=EvaluationBudget(max_rounds=1))
        with pytest.raises(BudgetExceededError) as err:
            ResilientExecutor().ask(session, QUERY)
        assert err.value.metrics is not None
        assert session.last_stats() is not None

    def test_counters_accumulate_across_asks(self):
        session = MultiLogSession(MLOG, clearance="s")
        plan = FaultPlan()
        plan.arm("query", error="transient", times=1)
        session.arm_faults(plan)
        executor = ResilientExecutor()
        executor.ask(session, QUERY)
        session.disarm_faults()
        executor.ask(session, QUERY)
        stats = session.last_stats()
        # retries is cumulative across the session's lifetime; the
        # second, clean ask is attempt 1 of its own ladder.
        assert stats.retries == 1
        assert stats.asks == 2
        assert stats.attempt == 1
