"""Chaos differential suite (satellite): fault-injected vs fault-free.

For ~50 generated workloads, inject one fault at every span point in
turn, across all three Datalog strategies, and assert the resilient path
either returns answers identical to the fault-free run or a correctly
flagged :class:`~repro.resilience.PartialResult`.  Fault kinds are drawn
from a seeded RNG (``CHAOS_SEED``, default 0) so a CI failure replays
locally bit-for-bit.

Plus the kill-and-recover test: SIGKILL a subprocess mid-``assert_clause``
loop and verify journal replay restores a consistent database containing
every acknowledged clause.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.datalog import evaluate, parse_program
from repro.multilog import MultiLogSession
from repro.obs import EvaluationBudget, ObsContext, use
from repro.resilience import LADDER, FaultPlan, PartialResult, ResilientExecutor
from repro.workloads.generator import random_datalog_program, random_multilog_database

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

# 3 shapes x 3 sizes x 5 seeds = 45 Datalog workloads; the session
# matrix below adds 6 MultiLog workloads (51 total).
DATALOG_WORKLOADS = [
    (shape, n_nodes, CHAOS_SEED * 100 + seed)
    for shape in ("chain", "tree", "random")
    for n_nodes in (4, 7, 10)
    for seed in range(5)
]

SESSION_WORKLOADS = [
    (n_tuples, belief_rules, CHAOS_SEED * 100 + seed)
    for n_tuples, belief_rules in ((4, 1), (6, 2), (8, 3))
    for seed in range(2)
]

#: Engine-level span points to fault, one at a time.  A point that a
#: given strategy never announces simply yields a fault-free run, which
#: the differential assertion covers too.
ENGINE_POINTS = ("evaluate", "stratify", "stratum[*]", "round[*]", "rule-fire")
SESSION_POINTS = ("query", "tau-translate", "stratum[*]", "fixpoint")


def canon(answers):
    return sorted(tuple(sorted(a.items())) for a in answers)


def fault_kinds(strategy):
    # A persistent strategy failure on the lowest rung has nowhere to
    # fall; only arm it where a rung below exists.
    kinds = ["transient", "corrupt"]
    if strategy != LADDER[-1]:
        kinds.append("strategy")
    return kinds


def one_fault_plan(point, kind):
    plan = FaultPlan(seed=CHAOS_SEED)
    if kind == "corrupt":
        plan.arm(point, action="corrupt")
    else:
        plan.arm(point, error=kind)
    return plan


@pytest.mark.parametrize("shape,n_nodes,seed", DATALOG_WORKLOADS)
def test_datalog_chaos_differential(shape, n_nodes, seed):
    program = parse_program(random_datalog_program(n_nodes, shape, seed=seed))
    for strategy in LADDER:
        baseline = evaluate(parse_program(
            random_datalog_program(n_nodes, shape, seed=seed)),
            strategy=strategy).rows("path")
        for point in ENGINE_POINTS:
            for kind in fault_kinds(strategy):
                plan = one_fault_plan(point, kind)
                executor = ResilientExecutor()
                with use(ObsContext(faults=plan)):
                    db = executor.evaluate(program, strategy=strategy)
                rows = db.rows("path")
                assert rows == baseline, (
                    f"{shape}/{n_nodes}/seed={seed}: {kind} fault at {point} "
                    f"({strategy}) changed the answers")


@pytest.mark.parametrize("n_tuples,belief_rules,seed", SESSION_WORKLOADS)
def test_session_chaos_differential(n_tuples, belief_rules, seed):
    def fresh_session():
        db = random_multilog_database(
            n_tuples, belief_rules=belief_rules, seed=seed)
        return MultiLogSession(db, clearance="t")

    query = "t[p(K : a1 -C-> V)] << cau"
    for engine in ("operational", "reduction"):
        baseline = canon(fresh_session().ask(query, engine=engine))
        for point in SESSION_POINTS:
            for kind in ("transient", "strategy"):
                plan = one_fault_plan(point, kind)
                session = fresh_session()  # cold caches: faults can land
                session.arm_faults(plan)
                executor = ResilientExecutor()
                answers = executor.ask(session, query, engine=engine)
                assert canon(answers) == baseline, (
                    f"n={n_tuples}/rules={belief_rules}/seed={seed}: {kind} "
                    f"fault at {point} ({engine}) changed the answers")


@pytest.mark.parametrize("shape,seed", [("chain", CHAOS_SEED), ("tree", CHAOS_SEED + 1)])
def test_budget_chaos_yields_flagged_partials(shape, seed):
    program = parse_program(random_datalog_program(10, shape, seed=seed))
    baseline = evaluate(parse_program(
        random_datalog_program(10, shape, seed=seed))).rows("path")
    executor = ResilientExecutor(allow_partial=True,
                                 budget=EvaluationBudget(max_rounds=1))
    result = executor.evaluate(program)
    assert isinstance(result, PartialResult)
    assert result.complete is False
    # Negation-free workloads: partial answers are a subset.  (The flag is
    # the contract -- a shallow workload may happen to finish in the one
    # allowed round; the deep chain provably cannot.)
    assert result.database.rows("path") <= baseline
    if shape == "chain":
        assert result.database.rows("path") < baseline


# ---------------------------------------------------------------------------
# Kill-and-recover: SIGKILL mid-assert, then journal replay.

CHILD = textwrap.dedent("""
    import sys
    from repro.multilog import MultiLogSession

    SOURCE = "level(u). level(s). order(u, s)."
    session = MultiLogSession(SOURCE, clearance="s", journal=sys.argv[1])
    for index in range(10_000):
        session.assert_clause(f"u[acct(k{index} : name -u-> k{index})].")
        session.assert_clause(f"u[acct(k{index} : balance -u-> {index})].")
        print(index, flush=True)  # ack only after the fsynced append
""")


def test_sigkill_mid_assert_recovers_every_acked_clause(tmp_path):
    journal = tmp_path / "wal.jsonl"
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(journal)],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": "src"}, cwd=os.getcwd())
    acked = []
    try:
        # Collect a few acknowledged asserts, then kill without warning.
        while len(acked) < 5:
            line = child.stdout.readline()
            assert line, "child exited before acking any asserts"
            acked.append(int(line))
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
        child.stdout.close()
    assert child.returncode == -signal.SIGKILL

    # The child died mid-loop (possibly mid-append: a torn tail is fine);
    # recovery must replay every acknowledged clause and re-check both
    # Definition 5.3 and 5.4.
    session = MultiLogSession.recover(journal, clearance="s",
                                      require_consistent=True)
    assert session.recovery_report.ok
    for index in acked:
        answers = session.ask(f"u[acct(k{index} : name -C-> V)] << cau")
        assert {"C": "u", "V": f"k{index}"} in answers


def test_recovered_session_keeps_journaling(tmp_path):
    journal = tmp_path / "wal.jsonl"
    source = "level(u). level(s). order(u, s)."
    first = MultiLogSession(source, clearance="s", journal=journal)
    first.assert_clause("u[acct(a : name -u-> a)].")
    first.journal.close()

    second = MultiLogSession.recover(journal, clearance="s")
    second.assert_clause("u[acct(b : name -u-> b)].")
    second.journal.close()

    third = MultiLogSession.recover(journal, clearance="s")
    for key in ("a", "b"):
        assert third.ask(f"u[acct({key} : name -C-> V)] << cau") == [
            {"C": "u", "V": key}]
