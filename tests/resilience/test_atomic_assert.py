"""Satellite regression: a rejected assert_clause leaves no trace.

After an admissibility (Def 5.3) or strict-consistency (Def 5.4)
rejection, the database version, clause content, journal bytes, session
caches, and -- the user-visible contract -- ``ask()`` answers must all be
byte-identical to the pre-assert state.
"""

import json

import pytest

from repro.errors import AdmissibilityError, ConsistencyError
from repro.multilog import MultiLogSession
from repro.resilience import database_source

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

QUERY = "s[acct(alice : balance -C-> B)] << cau"

# References level x, which [[Lambda]] never asserts: Def 5.3 rejects it.
INADMISSIBLE = "x[acct(alice : balance -x-> 7)]."
# Level t exists but the molecule (mallory, u) has no key cell: under
# strict=True, Def 5.4 entity integrity rejects it.
INCONSISTENT = "u[acct(mallory : balance -u-> 1)]."


def state(session):
    return (session.database.version, database_source(session.database))


class TestAtomicRejection:
    def test_inadmissible_clause_rolls_back_completely(self):
        session = MultiLogSession(SOURCE, clearance="s")
        answers_before = session.ask(QUERY)
        before = state(session)
        with pytest.raises(AdmissibilityError):
            session.assert_clause(INADMISSIBLE)
        assert state(session) == before
        assert session.ask(QUERY) == answers_before

    def test_rejection_preserves_warm_caches(self):
        session = MultiLogSession(SOURCE, clearance="s")
        session.ask(QUERY)  # warm the operational engine
        session.ask(QUERY, engine="reduction")  # warm the reduced model
        engine = session.engine
        reduced = session.reduced
        with pytest.raises(AdmissibilityError):
            session.assert_clause(INADMISSIBLE)
        # Version untouched -> the warm caches are still the live ones.
        assert session.engine is engine
        assert session.reduced is reduced

    def test_strict_consistency_rejection_is_atomic(self):
        session = MultiLogSession(SOURCE, clearance="s")
        before = state(session)
        with pytest.raises(ConsistencyError):
            session.assert_clause(INCONSISTENT, strict=True)
        assert state(session) == before
        # The same clause is accepted without strict (the paper's own D1
        # fails entity integrity, so 5.4 is opt-in).
        session.assert_clause(INCONSISTENT)
        assert state(session) != before

    def test_rejected_clause_never_reaches_the_journal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        session.assert_clause("u[acct(bob : name -u-> bob)].")
        bytes_before = path.read_bytes()
        with pytest.raises(AdmissibilityError):
            session.assert_clause(INADMISSIBLE)
        assert path.read_bytes() == bytes_before

    def test_accepted_clause_is_fsynced_before_ack(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        session.assert_clause("u[acct(bob : name -u-> bob)].")
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["type"] == "clause"
        assert last["version"] == session.database.version

    def test_sibling_session_caches_survive_rejection(self):
        base = MultiLogSession(SOURCE, clearance="s")
        sibling = base.with_clearance("u")
        expected = sibling.ask("u[acct(alice : balance -C-> B)] << cau")
        with pytest.raises(AdmissibilityError):
            base.assert_clause(INADMISSIBLE)
        # Shared database, shared version counter: the sibling's memoized
        # state is still valid and still correct.
        assert sibling.ask("u[acct(alice : balance -C-> B)] << cau") == expected

    def test_accepted_clause_still_works_normally(self):
        session = MultiLogSession(SOURCE, clearance="s")
        version = session.database.version
        session.assert_clause("s[acct(bob : balance -s-> 500)].")
        assert session.database.version == version + 1
        assert session.ask("s[acct(bob : balance -C-> B)] << cau") == [
            {"B": 500, "C": "s"}]
