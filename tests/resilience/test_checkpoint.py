"""Checkpointing under fire: the policy, interrupted compaction (fault
injection at every write/fsync/rename/dirsync step, plus SIGKILL
subprocess variants), torn snapshots, and automatic checkpoints under
live serving traffic."""

from __future__ import annotations

import asyncio
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.multilog.session import MultiLogSession
from repro.resilience import CheckpointPolicy, FaultPlan
from repro.resilience.journal import SessionJournal, database_source

SRC = str(Path(__file__).resolve().parents[2] / "src")

SOURCE = """\
level(u). level(s). order(u, s).
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

COMPACT_POINTS = ("journal-compact-write", "journal-compact-fsync",
                  "journal-compact-rename", "journal-compact-dirsync")


def make_session(tmp_path, n_clauses: int = 5) -> MultiLogSession:
    session = MultiLogSession(SOURCE, clearance="s",
                              journal=tmp_path / "wal.jsonl")
    for i in range(n_clauses):
        session.assert_clause(f"u[acct(k{i} : balance -u-> {i})].")
    return session


# -- the policy ----------------------------------------------------------

class TestCheckpointPolicy:
    def test_due_is_disjunctive_over_records_and_bytes(self):
        policy = CheckpointPolicy(max_records=10, max_bytes=1000)
        assert not policy.due(9, 999)
        assert policy.due(10, 0)
        assert policy.due(0, 1000)

    def test_none_disables_one_threshold(self):
        by_bytes = CheckpointPolicy(max_records=None, max_bytes=100)
        assert not by_bytes.due(10**9, 99)
        assert by_bytes.due(0, 100)

    def test_fully_disabled_policy(self):
        policy = CheckpointPolicy(max_records=None, max_bytes=None)
        assert not policy.enabled
        assert not policy.due(10**9, 10**9)
        assert CheckpointPolicy().enabled

    def test_describe_names_the_thresholds(self):
        text = CheckpointPolicy(max_records=7, max_bytes=None).describe()
        assert "7" in text


# -- interrupted compaction (in-process fault injection) ------------------

@pytest.mark.parametrize("point", COMPACT_POINTS)
def test_disk_fault_at_every_compaction_step_recovers_identically(
        tmp_path, point):
    session = make_session(tmp_path)
    expected = database_source(session.database)
    version = session.database.version
    journal = session.journal

    plan = FaultPlan()
    plan.arm(point, action="enospc", times=1)
    journal.arm_faults(plan)
    from repro.errors import JournalError
    with pytest.raises(JournalError, match="compaction failed"):
        journal.compact(session.database)
    assert plan.history == [(point, "enospc")]
    journal.disarm_faults()

    # Whatever step died, the journal on disk replays to the same
    # database at the same version -- old journal or new snapshot,
    # never a hybrid (Def 5.3 is re-checked by recover()).
    recovered = MultiLogSession.recover(tmp_path / "wal.jsonl", clearance="s")
    assert database_source(recovered.database) == expected
    assert recovered.database.version == version
    assert recovered.journal_recovery.clean

    # The journal is still writable after the failed compaction...
    recovered.assert_clause("u[acct(post : balance -u-> 1)].")
    # ...and a clean compaction then succeeds and still replays true.
    recovered.journal.compact(recovered.database)
    final = SessionJournal(tmp_path / "wal.jsonl").replay()
    assert database_source(final) == database_source(recovered.database)
    assert len((tmp_path / "wal.jsonl").read_text().splitlines()) == 2


def test_failed_compaction_does_not_desync_the_seq_counter(tmp_path):
    # The dirsync fault fires *after* os.replace: the file already holds
    # seq 1-2.  The next append must rescan, not continue a stale count.
    session = make_session(tmp_path)
    plan = FaultPlan()
    plan.arm("journal-compact-dirsync", action="enospc", times=1)
    session.journal.arm_faults(plan)
    from repro.errors import JournalError
    with pytest.raises(JournalError):
        session.journal.compact(session.database)
    session.journal.disarm_faults()
    session.assert_clause("u[acct(after : balance -u-> 2)].")
    scan = session.journal.scan()  # raises on any sequence gap
    assert [r["seq"] for r in scan.records] == list(
        range(1, len(scan.records) + 1))


# -- interrupted compaction (SIGKILL subprocess variants) -----------------

KILLER = '''
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.multilog.session import MultiLogSession

class Killer:
    def __init__(self, point):
        self.point = point
    def on_span(self, name):
        if name == self.point:
            os.kill(os.getpid(), signal.SIGKILL)

session = MultiLogSession.recover(sys.argv[1], clearance="s")
session.journal.arm_faults(Killer(sys.argv[2]))
session.journal.compact(session.database)
print("compaction survived the kill point", flush=True)
'''


@pytest.mark.parametrize("point", COMPACT_POINTS)
def test_sigkill_at_every_compaction_step_recovers_identically(
        tmp_path, point):
    session = make_session(tmp_path)
    expected = database_source(session.database)
    version = session.database.version
    session.journal.close()

    script = tmp_path / "killer.py"
    script.write_text(KILLER.format(src=SRC))
    victim = tmp_path / "victim.jsonl"
    shutil.copy(tmp_path / "wal.jsonl", victim)
    proc = subprocess.run(
        [sys.executable, str(script), str(victim), point],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    recovered = MultiLogSession.recover(victim, clearance="s")
    assert database_source(recovered.database) == expected
    assert recovered.database.version == version
    assert recovered.journal_recovery.clean


# -- torn snapshot records ------------------------------------------------

def test_torn_snapshot_record_is_quarantined_and_state_preserved(tmp_path):
    session = make_session(tmp_path, n_clauses=2)
    expected = database_source(session.database)
    session.journal.close()
    # A snapshot append that died mid-write: half a record at the tail.
    with open(tmp_path / "wal.jsonl", "a", encoding="utf-8") as handle:
        handle.write('{"type": "snapshot", "source": "level(u). lev')

    recovered = MultiLogSession.recover(tmp_path / "wal.jsonl", clearance="s")
    report = recovered.journal_recovery
    assert len(report.quarantined) == 1
    assert report.quarantine_path is not None
    assert database_source(recovered.database) == expected
    # The torn bytes were moved aside, not silently discarded.
    assert "snapshot" in Path(report.quarantine_path).read_text()


# -- automatic checkpoints under live serving traffic ---------------------

def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout: float = 10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


def test_server_checkpoints_automatically_at_the_record_threshold(tmp_path):
    from repro.serving import MultiLogServer, ServerConfig
    from repro.workloads.d1 import D1_SOURCE

    async def main():
        server = MultiLogServer(D1_SOURCE, ServerConfig(
            clearance="s", journal=str(tmp_path / "wal.jsonl"),
            checkpoint_records=3, checkpoint_bytes=None,
            checkpoint_poll_s=0.01))
        await server.start()
        try:
            for i in range(4):
                ok = await server.dispatch(
                    {"op": "assert", "clause": f"u[p(c{i} : a -u-> {i})].",
                     "clearance": "s"})
                assert ok["ok"] is True
            await wait_for(lambda: server.stats.checkpoints_total >= 1)
            # Traffic keeps flowing across a checkpoint...
            ok = await server.dispatch(
                {"op": "assert", "clause": "u[p(c9 : a -u-> 9)].",
                 "clearance": "s"})
            assert ok["ok"] is True
            ask = await server.dispatch(
                {"op": "ask", "query": "s[p(K : a -C-> V)] << cau",
                 "clearance": "s"})
            assert ask["ok"] is True
        finally:
            await server.stop()
        return server

    server = run(main())
    # ...and the compacted journal replays to exactly the live state.
    replayed = SessionJournal(tmp_path / "wal.jsonl").replay()
    assert database_source(replayed) == database_source(server.root.database)
    assert replayed.version == server.root.database.version


def test_server_checkpoint_failure_is_counted_not_fatal(tmp_path):
    from repro.serving import MultiLogServer, ServerConfig
    from repro.workloads.d1 import D1_SOURCE

    async def main():
        server = MultiLogServer(D1_SOURCE, ServerConfig(
            clearance="s", journal=str(tmp_path / "wal.jsonl"),
            checkpoint_records=None, checkpoint_bytes=None))
        await server.start()
        try:
            plan = FaultPlan()
            plan.arm("journal-compact-write", action="enospc", times=1)
            server.root.journal.arm_faults(plan)
            assert await server.checkpoint() is False
            assert server.stats.checkpoint_failures_total == 1
            server.root.journal.disarm_faults()
            assert await server.checkpoint() is True
            assert server.stats.checkpoints_total == 1
        finally:
            await server.stop()

    run(main())
