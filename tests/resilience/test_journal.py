"""SessionJournal unit tests: durability records, replay, compaction."""

import json

import pytest

from repro.errors import JournalError
from repro.multilog import MultiLogSession
from repro.multilog.parser import parse_database
from repro.resilience import SessionJournal, database_source

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

CLAUSES = [
    "u[acct(bob : name -u-> bob)].",
    "u[acct(bob : balance -u-> 25)].",
    "s[acct(bob : balance -s-> 500)].",
]


def records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRecords:
    def test_fresh_journal_opens_with_format_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        first, second = records(path)
        assert first == {"type": "open", "format": "multilog-journal/1"}
        assert second == {"type": "clause", "text": CLAUSES[0], "version": 1}

    def test_reopen_does_not_duplicate_the_open_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[1], version=2)
        journal.close()
        kinds = [record["type"] for record in records(path)]
        assert kinds == ["open", "clause", "clause"]

    def test_snapshot_round_trips_through_the_parser(self, tmp_path):
        db = parse_database(SOURCE)
        again = parse_database(database_source(db))
        assert database_source(again) == database_source(db)
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(db)
        journal.close()
        assert database_source(journal.replay()) == database_source(db)


class TestReplay:
    def test_snapshot_plus_clauses(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        for version, clause in enumerate(CLAUSES, start=1):
            journal.append_clause(clause, version)
        journal.close()
        db = journal.replay()
        source = database_source(db)
        for clause in CLAUSES:
            assert clause[:-1] in source  # sans trailing period
        assert "s[acct(alice : balance -s-> 900)]" in source

    def test_replay_starts_at_the_last_snapshot(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.snapshot(parse_database(SOURCE))  # supersedes the above
        journal.close()
        assert "bob" not in database_source(journal.replay())

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "clause", "text": "u[acc')  # torn write
        db = SessionJournal(path).replay()
        assert "bob" in database_source(db)  # acknowledged clause survives

    def test_corrupt_interior_record_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt the snapshot, not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            SessionJournal(path).replay()

    def test_unknown_format_and_record_type_are_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "open", "format": "multilog-journal/99"}\n')
        with pytest.raises(JournalError, match="format"):
            SessionJournal(path).replay()
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(JournalError, match="mystery"):
            SessionJournal(path).replay()

    def test_missing_journal_replays_empty(self, tmp_path):
        journal = SessionJournal(tmp_path / "never-written.jsonl")
        assert journal.entries() == []
        assert database_source(journal.replay()) == ""


class TestCompaction:
    def test_compact_collapses_to_one_snapshot(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        for clause in CLAUSES:
            session.assert_clause(clause)
        before = database_source(session.journal.replay())
        session.journal.compact(session.database)
        kinds = [record["type"] for record in records(path)]
        assert kinds == ["open", "snapshot"]
        assert database_source(SessionJournal(path).replay()) == before
        assert not path.with_name(path.name + ".tmp").exists()

    def test_journal_survives_session_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        for clause in CLAUSES:
            session.assert_clause(clause)
        expected = session.ask("s[acct(bob : balance -C-> B)] << cau")
        recovered = MultiLogSession.recover(path, clearance="s")
        assert recovered.ask("s[acct(bob : balance -C-> B)] << cau") == expected
        assert recovered.recovery_report is not None
