"""SessionJournal unit tests: durability records, replay, compaction."""

import json

import pytest

from repro.errors import JournalError
from repro.multilog import MultiLogSession
from repro.multilog.parser import parse_database
from repro.resilience import SessionJournal, database_source
from repro.resilience.journal import record_crc

SOURCE = """
level(u). level(s). order(u, s).
u[acct(alice : name -u-> alice)].
u[acct(alice : balance -u-> 100)].
s[acct(alice : balance -s-> 900)].
"""

CLAUSES = [
    "u[acct(bob : name -u-> bob)].",
    "u[acct(bob : balance -u-> 25)].",
    "s[acct(bob : balance -s-> 500)].",
]


def records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRecords:
    def test_fresh_journal_opens_with_format_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        first, second = records(path)
        assert first["type"] == "open"
        assert first["format"] == "multilog-journal/2"
        assert second["type"] == "clause"
        assert second["text"] == CLAUSES[0]
        assert second["version"] == 1

    def test_records_carry_contiguous_seq_and_valid_crc(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        entries = records(path)
        assert [record["seq"] for record in entries] == [1, 2, 3]
        for record in entries:
            assert record["crc"] == record_crc(record)

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[1], version=2)
        journal.close()
        assert [record["seq"] for record in records(path)] == [1, 2, 3]

    def test_reopen_does_not_duplicate_the_open_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        journal = SessionJournal(path)
        journal.append_clause(CLAUSES[1], version=2)
        journal.close()
        kinds = [record["type"] for record in records(path)]
        assert kinds == ["open", "clause", "clause"]

    def test_snapshot_round_trips_through_the_parser(self, tmp_path):
        db = parse_database(SOURCE)
        again = parse_database(database_source(db))
        assert database_source(again) == database_source(db)
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(db)
        journal.close()
        assert database_source(journal.replay()) == database_source(db)


class TestReplay:
    def test_snapshot_plus_clauses(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        for version, clause in enumerate(CLAUSES, start=1):
            journal.append_clause(clause, version)
        journal.close()
        db = journal.replay()
        source = database_source(db)
        for clause in CLAUSES:
            assert clause[:-1] in source  # sans trailing period
        assert "s[acct(alice : balance -s-> 900)]" in source

    def test_replay_starts_at_the_last_snapshot(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.snapshot(parse_database(SOURCE))  # supersedes the above
        journal.close()
        assert "bob" not in database_source(journal.replay())

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "clause", "text": "u[acc')  # torn write
        db = SessionJournal(path).replay()
        assert "bob" in database_source(db)  # acknowledged clause survives

    def test_corrupt_interior_record_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt the snapshot, not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            SessionJournal(path).replay()

    def test_unknown_format_and_record_type_are_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"type": "open", "format": "multilog-journal/99"}\n')
        with pytest.raises(JournalError, match="format"):
            SessionJournal(path).replay()
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(JournalError, match="mystery"):
            SessionJournal(path).replay()

    def test_missing_journal_replays_empty(self, tmp_path):
        journal = SessionJournal(tmp_path / "never-written.jsonl")
        assert journal.entries() == []
        assert database_source(journal.replay()) == ""

    def test_sequence_gap_between_intact_records_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        for version, clause in enumerate(CLAUSES, start=1):
            journal.append_clause(clause, version)
        journal.close()
        lines = path.read_text().splitlines()
        del lines[2]  # an acknowledged clause vanishes entirely
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="sequence gap"):
            SessionJournal(path).replay()

    def test_bitflipped_tail_fails_its_checksum(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        lines = path.read_text().splitlines()
        # Valid JSON, wrong content: only the checksum can catch this.
        lines[-1] = lines[-1].replace("bob", "eve")
        path.write_text("\n".join(lines) + "\n")
        db, report = SessionJournal(path).replay_with_report()
        assert "bob" not in database_source(db)
        assert report.checksum_failures == 1
        assert report.quarantined[0].line == 3
        assert "checksum" in report.quarantined[0].reason

    def test_legacy_v1_journal_still_replays(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        lines = [
            {"type": "open", "format": "multilog-journal/1"},
            {"type": "snapshot", "source": SOURCE, "version": 0},
            {"type": "clause", "text": CLAUSES[0], "version": 1},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines))
        db, report = SessionJournal(path).replay_with_report()
        assert "bob" in database_source(db)
        assert report.legacy_records == 3
        assert report.clean

    def test_replay_preserves_database_version(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        for clause in CLAUSES:
            session.assert_clause(clause)
        version = session.database.version
        assert version > 0
        recovered = SessionJournal(path).replay()
        assert recovered.version == version


class TestQuarantine:
    def torn_journal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal.append_clause(CLAUSES[0], version=1)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "clause", "text": "u[acc')  # torn write
        return path

    def test_torn_tail_is_quarantined_not_silently_dropped(self, tmp_path):
        path = self.torn_journal(tmp_path)
        journal = SessionJournal(path)
        db, report = journal.replay_with_report()
        assert "bob" in database_source(db)  # acknowledged clause survives
        assert report.torn_tail
        assert [entry.line for entry in report.quarantined] == [4]
        sidecar = journal.quarantine_path
        assert report.quarantine_path == str(sidecar)
        entries = [json.loads(line) for line in
                   sidecar.read_text().splitlines()]
        assert entries[0]["line"] == 4
        assert entries[0]["raw"].startswith('{"type": "clause"')

    def test_quarantine_truncates_journal_to_clean_prefix(self, tmp_path):
        path = self.torn_journal(tmp_path)
        SessionJournal(path).replay_with_report()
        # The journal itself is clean again: re-scan finds nothing torn.
        journal = SessionJournal(path)
        _, report = journal.replay_with_report()
        assert report.clean
        assert not report.quarantined
        # ... and appending continues the sequence without a gap.
        journal.append_clause(CLAUSES[1], version=2)
        journal.close()
        assert [record["seq"] for record in records(path)] == [1, 2, 3, 4]

    def test_recover_reports_quarantine(self, tmp_path):
        path = self.torn_journal(tmp_path)
        session = MultiLogSession.recover(path, clearance="s")
        report = session.journal_recovery
        assert report is not None
        assert report.torn_tail
        assert report.consistency is session.recovery_report
        summary = report.summary()
        assert "quarantined 1" in summary
        assert "Def 5.3" in summary

    def test_report_dict_shape(self, tmp_path):
        path = self.torn_journal(tmp_path)
        _, report = SessionJournal(path).replay_with_report()
        out = report.to_dict()
        assert out["torn_tail"] is True
        assert out["records"] == 3
        assert out["quarantined"] == [
            {"line": 4, "reason": out["quarantined"][0]["reason"]}]


class BrokenDiskHandle:
    """Tear the first write partway through, then refuse truncation."""

    def __init__(self, handle):
        self._handle = handle
        self.torn = False

    def write(self, text):
        if not self.torn:
            self.torn = True
            self._handle.write(text[:10])
            raise OSError("injected torn write")
        return self._handle.write(text)

    def truncate(self, size):
        raise OSError("injected truncate failure")

    def __getattr__(self, name):
        return getattr(self._handle, name)


class TestPoisonedJournal:
    def test_unhealed_partial_append_poisons_until_quarantined(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = SessionJournal(path)
        journal.snapshot(parse_database(SOURCE))
        journal._file = BrokenDiskHandle(journal._file)
        with pytest.raises(JournalError, match="append failed"):
            journal.append_clause(CLAUSES[0], version=1)
        # The partial line could not be truncated back out: appending
        # after it would merge into the residue and turn an isolated
        # torn tail into fatal interior corruption, so appends refuse.
        with pytest.raises(JournalError, match="poisoned"):
            journal.append_clause(CLAUSES[0], version=1)
        # Recovery quarantines the residue and lifts the poison.
        _db, report = journal.replay_with_report()
        assert report.torn_tail
        assert len(report.quarantined) == 1
        journal.append_clause(CLAUSES[1], version=2)
        journal.close()
        assert [record["seq"] for record in records(path)] == [1, 2, 3]
        assert json.loads(path.read_text().splitlines()[-1])["text"] \
            == CLAUSES[1]


class TestCompaction:
    def test_compact_collapses_to_one_snapshot(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        for clause in CLAUSES:
            session.assert_clause(clause)
        before = database_source(session.journal.replay())
        session.journal.compact(session.database)
        kinds = [record["type"] for record in records(path)]
        assert kinds == ["open", "snapshot"]
        assert database_source(SessionJournal(path).replay()) == before
        assert not path.with_name(path.name + ".tmp").exists()

    def test_journal_survives_session_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        session = MultiLogSession(SOURCE, clearance="s", journal=path)
        for clause in CLAUSES:
            session.assert_clause(clause)
        expected = session.ask("s[acct(bob : balance -C-> B)] << cau")
        recovered = MultiLogSession.recover(path, clearance="s")
        assert recovered.ask("s[acct(bob : balance -C-> B)] << cau") == expected
        assert recovered.recovery_report is not None
