"""Deterministic serving chaos: torn frames, slow-loris connections,
mid-ask disconnects, ENOSPC mid-assert, and a SIGKILL differential.

Every scenario is reproducible by construction -- faults fire at named
points (:class:`~repro.resilience.FaultPlan`), disconnects are forced
with ``SO_LINGER`` RSTs, and the SIGKILL test compares the recovered
database byte-for-byte against a serial replay.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path

from repro.resilience import FaultPlan
from repro.resilience.journal import SessionJournal, database_source
from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"
SRC = str(Path(__file__).resolve().parents[2] / "src")


def run(coro):
    return asyncio.run(coro)


async def started(**overrides) -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"), **overrides)
    await server.start()
    return server


async def wait_for(predicate, timeout: float = 5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


def rst_close(sock: socket.socket) -> None:
    """Close with an RST instead of FIN (abrupt peer death)."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
    sock.close()


# -- wire-level chaos ----------------------------------------------------

def test_torn_frame_then_disconnect_leaves_the_server_serving():
    async def main():
        server = await started()
        try:
            host, port = server.address
            sock = socket.create_connection((host, port))
            sock.sendall(b'{"op": "ask", "query": "s[p(')  # no newline
            rst_close(sock)
            await wait_for(lambda: server.stats.connections == 0)
            async with await ServingClient.connect(host, port, "s") as client:
                assert await client.ask(ASK)
            assert server.health in ("healthy", "degraded")
        finally:
            await server.stop()

    run(main())


def test_garbage_frame_answers_bad_request_and_keeps_the_connection():
    async def main():
        server = await started()
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            import json
            error = json.loads(await reader.readline())
            assert error["ok"] is False
            assert error["code"] == "bad-request"
            # The same connection still serves well-formed requests.
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            pong = json.loads(await reader.readline())
            assert pong["ok"] is True
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_slow_loris_connections_do_not_block_service():
    async def main():
        server = await started()
        try:
            host, port = server.address
            # 16 connections that never send a byte.
            idlers = [socket.create_connection((host, port))
                      for _ in range(16)]
            await wait_for(lambda: server.stats.connections >= 16)
            # A real client is still served promptly alongside them.
            started_at = asyncio.get_running_loop().time()
            async with await ServingClient.connect(host, port, "s") as client:
                assert await client.ask(ASK)
            assert asyncio.get_running_loop().time() - started_at < 5.0
            for sock in idlers:
                sock.close()
            await wait_for(lambda: server.stats.connections == 0)
        finally:
            await server.stop()

    run(main())


# -- disconnect cancellation ---------------------------------------------

def test_disconnect_mid_ask_cancels_the_evaluation():
    async def main():
        server = await started()
        try:
            # Every pooled session evaluates slowly (a held fault-delay
            # at the query span), so the disconnect lands mid-evaluation.
            plan = FaultPlan()
            plan.arm("query", action="delay", delay_s=0.5, times=None)

            def setup(session, _orig=server.pool._on_create):
                _orig(session)
                session.arm_faults(plan)

            server.pool._on_create = setup
            host, port = server.address
            sock = socket.create_connection((host, port))
            sock.sendall(b'{"op": "ask", "query": "%s", "clearance": "s"}\n'
                         % ASK.encode("ascii"))
            await wait_for(lambda: server.stats.inflight == 1)
            rst_close(sock)  # the client gives up mid-request
            # The peer-watcher flips the cancel probe; the engine aborts
            # instead of finishing a dead request.
            await wait_for(lambda: server.stats.cancelled_total == 1)
            await wait_for(lambda: server.stats.inflight == 0)
            # The worker is free again: a live client gets full service.
            async with await ServingClient.connect(host, port, "s") as client:
                assert await client.ask(ASK)
        finally:
            await server.stop()

    run(main())


# -- disk chaos ----------------------------------------------------------

def test_enospc_mid_assert_fails_clean_and_replay_matches(tmp_path):
    async def main():
        server = MultiLogServer(D1_SOURCE, ServerConfig(
            clearance="s", journal=str(tmp_path / "wal.jsonl"),
            checkpoint_records=None, checkpoint_bytes=None))
        await server.start()
        try:
            ok = await server.dispatch(
                {"op": "assert", "clause": "u[p(k6 : a -u-> 6)].",
                 "clearance": "s"})
            assert ok["ok"] is True
            before = server.root.database.version

            plan = FaultPlan()
            plan.arm("journal-append", action="enospc", times=1)
            server.root.journal.arm_faults(plan)
            failed = await server.dispatch(
                {"op": "assert", "clause": "u[p(k7 : a -u-> 7)].",
                 "clearance": "s"})
            # Durability failed -> the whole assert rolls back: no ack,
            # no version bump, no clause, and the breaker noticed.
            assert failed["ok"] is False
            assert failed["code"] == "internal"
            assert "journal append failed" in failed["error"]
            assert server.root.database.version == before
            assert server._breakers["assert"].failures == 1
            assert plan.history == [("journal-append", "enospc")]

            server.root.journal.disarm_faults()
            ok = await server.dispatch(
                {"op": "assert", "clause": "u[p(k8 : a -u-> 8)].",
                 "clearance": "s"})
            assert ok["ok"] is True
            assert server._breakers["assert"].failures == 0
        finally:
            await server.stop()
        return server

    server = run(main())
    # Differential: what the journal replays is exactly the live state.
    replayed = SessionJournal(tmp_path / "wal.jsonl").replay()
    assert database_source(replayed) == database_source(server.root.database)
    assert replayed.version == server.root.database.version


# -- SIGKILL differential ------------------------------------------------

WRITER = '''
import sys
sys.path.insert(0, {src!r})
from repro.multilog.session import MultiLogSession
from repro.workloads.d1 import D1_SOURCE

session = MultiLogSession(D1_SOURCE, clearance="s", journal=sys.argv[1])
for i in range(100000):
    session.assert_clause(f"u[t(s{{i}} : f -u-> {{i}})].")
    print(i, flush=True)  # the clause is fsynced before this ack
'''


def test_sigkill_mid_assert_recovers_every_acknowledged_write(tmp_path):
    journal = tmp_path / "wal.jsonl"
    script = tmp_path / "writer.py"
    script.write_text(WRITER.format(src=SRC))
    proc = subprocess.Popen(
        [sys.executable, str(script), str(journal)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    acked: list[int] = []
    deadline = time.monotonic() + 60
    try:
        while len(acked) < 25:
            assert time.monotonic() < deadline, proc.stderr.read()
            line = proc.stdout.readline()
            assert line, f"writer died early: {proc.stderr.read()}"
            acked.append(int(line))
        os.kill(proc.pid, signal.SIGKILL)  # mid-stream, no warning
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # Recovery re-checks Def 5.3 admissibility (raises otherwise).
    from repro.multilog.session import MultiLogSession

    session = MultiLogSession.recover(journal, clearance="s")
    report = session.journal_recovery
    assert report is not None
    # fsync-before-ack: every acknowledged clause survived the kill.
    recovered = database_source(session.database)
    for i in acked:
        assert f"u[t(s{i} : f -u-> {i})]." in recovered
    # SIGKILL can tear at most the one in-flight append.
    assert len(report.quarantined) <= 1
    # Byte-identical differential: two independent replays of the healed
    # journal agree with each other and with the recovered session.
    replay_a = SessionJournal(journal).replay()
    replay_b = SessionJournal(journal).replay()
    assert database_source(replay_a) == database_source(replay_b) == recovered
    assert replay_a.version == session.database.version


# -- chaos under mixed clearances: the MLS invariant holds ----------------

def test_abrupt_disconnects_never_leak_across_clearances():
    async def main():
        server = await started()
        try:
            host, port = server.address
            for index in range(12):
                clearance = ("u", "c", "s")[index % 3]
                query = f"{clearance}[p(K : a -C-> V)] << cau"
                if index % 4 == 3:
                    # A client that sends its ask and slams the door.
                    sock = socket.create_connection((host, port))
                    sock.sendall(
                        b'{"op": "ask", "query": "%s", "clearance": "%s"}\n'
                        % (query.encode(), clearance.encode()))
                    rst_close(sock)
                else:
                    async with await ServingClient.connect(
                            host, port, clearance) as client:
                        await client.ask(query, engine="reduction")
            await wait_for(lambda: server.stats.inflight == 0)
        finally:
            await server.stop()
        return server

    server = run(main())
    events = server.audit.to_dicts() if server.audit is not None else []
    crosses = [e for e in events if e["kind"] == "cross_level_read"]
    assert crosses, "reduction asks must audit their downward reads"
    lattice = server.root.lattice
    for event in crosses:
        # Zero leaks: every audited read goes *down* the lattice.
        assert lattice.leq(event["object"], event["subject"]), event
