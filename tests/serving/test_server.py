"""Units for the asyncio MultiLog server: admission control, snapshot
reads, serialized writes, disconnects and the serving dashboard."""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading

import pytest

from repro.obs.budget import EvaluationBudget
from repro.serving import (
    MultiLogServer,
    ServerConfig,
    ServingCallError,
    ServingClient,
)
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def run(coro):
    return asyncio.run(coro)


async def started(**overrides) -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"), **overrides)
    await server.start()
    return server


async def wait_for(predicate, timeout: float = 5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


# -- basic request/response over the framed protocol -------------------

def test_hello_ping_and_ask():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                assert client.hello["server"] == "multilog-serving/1"
                assert client.hello["clearance"] == "s"
                assert set(client.hello["levels"]) == {"u", "c", "s"}
                pong = await client.ping()
                assert pong["version"] == server.root.database.version
                full = await client.ask_full(ASK)
                assert full["complete"] is True
                assert full["version"] == server.root.database.version
                assert full["answers"]
        finally:
            await server.stop()

    run(main())


def test_hello_rejects_unknown_clearance():
    async def main():
        server = await started()
        try:
            host, port = server.address
            with pytest.raises(ServingCallError) as excinfo:
                await ServingClient.connect(host, port, "cosmic")
            assert excinfo.value.code == "bad-clearance"
        finally:
            await server.stop()

    run(main())


def test_assert_bumps_version_and_is_visible_to_asks():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                before = (await client.ping())["version"]
                response = await client.assert_clause(
                    "u[p(k9 : a -u-> 42)].")
                assert response["version"] == before + 1
                answers = await client.ask("s[p(k9 : a -C-> V)] << cau")
                assert {"C": "u", "V": 42} in answers
        finally:
            await server.stop()

    run(main())


def test_error_codes_over_the_wire():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                bad_query = await client.request(
                    {"op": "ask", "query": "p(("})
                assert bad_query["code"] == "bad-query"
                bad_clearance = await client.request(
                    {"op": "ask", "query": ASK, "clearance": "galactic"})
                assert bad_clearance["code"] == "bad-clearance"
                unknown = await client.request({"op": "audittt"})
                assert unknown["code"] == "unknown-op"
                # Inadmissible clause (undeclared security label, Def
                # 5.3 cond 2): rejected, and the version must not move.
                before = (await client.ping())["version"]
                rejected = await client.request(
                    {"op": "assert", "clause": "x[p(k : a -x-> 1)]."})
                assert rejected["code"] == "rejected"
                assert (await client.ping())["version"] == before
        finally:
            await server.stop()

    run(main())


def test_oversized_line_answers_then_hangs_up():
    async def main():
        server = await started(max_line_bytes=256)
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "ask", "query": "' + b"x" * 1024 + b'"}\n')
            await writer.drain()
            line = await reader.readline()
            assert json.loads(line)["code"] == "line-too-long"
            assert await reader.read() == b""  # server closed the connection
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_peer_watch_distinguishes_overrun_from_disconnect():
    # The read-ahead overrunning on a pipelined oversized *next* line
    # means the peer is still connected -- only EOF/connection errors
    # may cancel the in-flight request.
    async def main():
        server = MultiLogServer(D1_SOURCE, clearance="s")

        async def raising(exc):
            raise exc

        async def eof():
            return b""

        for exc in (asyncio.LimitOverrunError("chunk too long", 0),
                    ValueError("line too long")):
            cancel = threading.Event()
            await server._peer_watch(asyncio.ensure_future(raising(exc)),
                                     cancel)
            assert not cancel.is_set(), f"{exc!r} is not a disconnect"
        for make in ((lambda: raising(ConnectionResetError())),
                     (lambda: raising(asyncio.IncompleteReadError(b"x", 2))),
                     eof):
            cancel = threading.Event()
            await server._peer_watch(asyncio.ensure_future(make()), cancel)
            assert cancel.is_set()
        server._threads.shutdown(wait=False)

    run(main())


def test_oversized_pipelined_line_does_not_cancel_the_inflight_request():
    async def main():
        server = await started(max_line_bytes=256)
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            # Park the ask behind the write lock so the oversized second
            # line is guaranteed to overrun the read-ahead mid-request.
            gate = server._rw.write()
            await gate.__aenter__()
            request = json.dumps({"op": "ask", "query": ASK,
                                  "clearance": "s"}).encode() + b"\n"
            writer.write(request + b"x" * 1024)
            await writer.drain()
            await wait_for(lambda: server.stats.inflight == 1)
            await asyncio.sleep(0.05)  # let the read-ahead see the junk
            await gate.__aexit__(None, None, None)
            first = json.loads(await reader.readline())
            assert first["ok"] is True, first  # served, not "cancelled"
            second = json.loads(await reader.readline())
            assert second["code"] == "line-too-long"
            assert await reader.read() == b""  # then the server hangs up
            writer.close()
        finally:
            await server.stop()

    run(main())


# -- admission control: shed and degrade --------------------------------

def test_load_shed_past_max_inflight():
    async def main():
        server = await started(max_inflight=1)
        try:
            host, port = server.address
            # Hold the write lock so an admitted ask parks deterministically.
            gate = server._rw.write()
            await gate.__aenter__()
            first = await ServingClient.connect(host, port, "s")
            inflight_task = asyncio.create_task(first.ask_full(ASK))
            await wait_for(lambda: server.stats.inflight == 1)
            second = await ServingClient.connect(host, port, "s")
            shed = await second.request({"op": "ask", "query": ASK})
            assert shed["ok"] is False
            assert shed["code"] == "shed"
            assert server.stats.shed_total == 1
            await gate.__aexit__(None, None, None)
            full = await inflight_task
            assert full["ok"] is True
            assert full["answers"]
            await first.close()
            await second.close()
        finally:
            await server.stop()

    run(main())


def test_degraded_ask_returns_partial_answers():
    async def main():
        server = await started(
            max_inflight=4, degrade_at=0.01,
            shed_budget=EvaluationBudget(max_derived_rows=1))
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                full = await client.ask_full(ASK)
                assert full["ok"] is True
                assert full["complete"] is False
                assert ":" in full["degraded"]  # "rung:reason"
            assert server.stats.degraded_total == 1
        finally:
            await server.stop()

    run(main())


def test_shed_responses_are_not_counted_completed():
    async def main():
        server = await started()
        try:
            server.stats.inflight = server.config.max_inflight  # saturate
            response = await server.dispatch({"op": "ask", "query": ASK,
                                              "clearance": "s"})
            assert response["code"] == "shed"
            assert server.stats.completed_total == 0
            server.stats.inflight = 0
        finally:
            await server.stop()

    run(main())


# -- mid-request disconnect ---------------------------------------------

def test_mid_request_disconnect_leaves_server_healthy():
    async def main():
        server = await started()
        try:
            host, port = server.address
            gate = server._rw.write()
            await gate.__aenter__()
            sock = socket.create_connection((host, port))
            sock.sendall(b'{"op": "ask", "query": "%s", "clearance": "s"}\n'
                         % ASK.encode("ascii"))
            await wait_for(lambda: server.stats.inflight == 1)
            # RST the connection while the request is mid-flight.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()
            await gate.__aexit__(None, None, None)
            await wait_for(lambda: server.stats.inflight == 0)
            await wait_for(lambda: server.stats.connections == 0)
            # The session went back to the pool and new clients are served.
            await wait_for(
                lambda: all(c["busy"] == 0 for c in server.pool.stats().values()))
            async with await ServingClient.connect(host, port, "s") as client:
                assert await client.ask(ASK)
        finally:
            await server.stop()

    run(main())


# -- dashboard -----------------------------------------------------------

def test_metrics_exposition_covers_the_dashboard():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK)
                await client.assert_clause("u[p(k7 : a -u-> 7)].")
                text = await client.metrics()
        finally:
            await server.stop()
        return text

    text = run(main())
    for needle in (
        "multilog_serving_accepted_total 2",
        "multilog_serving_asks_total 1",
        "multilog_serving_asserts_total 1",
        "multilog_serving_shed_total 0",
        "multilog_serving_inflight 0",
        'multilog_serving_pool_sessions{clearance="s",state="free"} 1',
        'multilog_serving_request_seconds_count{op="ask"} 1',
        'multilog_serving_request_seconds_bucket{op="assert",le="+Inf"} 1',
    ):
        assert needle in text, f"missing {needle!r} in:\n{text}"


def test_stats_snapshot_shape():
    stats = MultiLogServer(D1_SOURCE, clearance="s").stats.snapshot()
    assert stats["accepted_total"] == 0
    assert stats["inflight"] == 0
    assert "latency" in stats


# -- the server-wide audit trail -----------------------------------------

def test_pooled_sessions_share_one_audit_trail():
    async def main():
        server = await started()
        try:
            host, port = server.address
            # Reduction asks at two clearances: cross-level reads from
            # both must land in the *same* server-wide trail.
            async with await ServingClient.connect(host, port, "s") as high:
                await high.ask(ASK, engine="reduction")
                async with await ServingClient.connect(host, port, "c") as low:
                    await low.ask("c[p(K : a -C-> V)] << opt",
                                  engine="reduction")
                events = await high.audit()
        finally:
            await server.stop()
        return server, events

    server, events = run(main())
    crosses = [e for e in events if e["kind"] == "cross_level_read"]
    assert crosses, "reduction asks must audit their downward reads"
    subjects = {e["subject"] for e in crosses}
    assert len(subjects) >= 2, "trail must span multiple clearances"
    # Leak-free: every audited read goes *down* the lattice, never up.
    lattice = server.root.lattice
    for event in crosses:
        assert lattice.leq(event["object"], event["subject"]), event


def test_audit_disabled_when_configured_off():
    async def main():
        server = await started(audit=False)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK, engine="reduction")
                response = await client.request({"op": "audit"})
            assert response["enabled"] is False
            assert response["events"] == []
        finally:
            await server.stop()

    run(main())


# -- construction ---------------------------------------------------------

def test_unknown_config_override_rejected():
    with pytest.raises(TypeError):
        MultiLogServer(D1_SOURCE, max_infight=3)  # typo must not pass silently
