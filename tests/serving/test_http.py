"""Units for the minimal HTTP/1.1 shim over the serving dispatch."""

from __future__ import annotations

import asyncio
import json

from repro.serving import MultiLogServer, ServerConfig
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def run(coro):
    return asyncio.run(coro)


async def http_request(host: str, port: int, method: str, path: str,
                       body: bytes | None = None) -> tuple[str, dict, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    if body:
        head.append(f"Content-Length: {len(body)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii")
                 + (body or b""))
    await writer.drain()
    status_line = (await reader.readline()).decode("ascii")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("ascii").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.read()
    writer.close()
    return status_line.split(" ", 1)[1].strip(), headers, payload


async def started_http() -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"))
    await server.start()
    await server.start_http()
    return server


def test_healthz_and_metrics():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            status, _headers, body = await http_request(host, port,
                                                        "GET", "/healthz")
            assert status == "200 OK"
            assert json.loads(body)["ok"] is True
            status, headers, body = await http_request(host, port,
                                                       "GET", "/metrics")
            assert status == "200 OK"
            assert headers["content-type"].startswith("text/plain")
            assert b"multilog_serving_accepted_total" in body
        finally:
            await server.stop()

    run(main())


def test_post_ask_and_assert():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            status, _h, body = await http_request(
                host, port, "POST", "/v1/ask",
                json.dumps({"query": ASK, "clearance": "s"}).encode())
            assert status == "200 OK"
            response = json.loads(body)
            assert response["complete"] is True
            assert response["answers"]
            status, _h, body = await http_request(
                host, port, "POST", "/v1/assert",
                json.dumps({"clause": "u[p(k8 : a -u-> 8)].",
                            "clearance": "s"}).encode())
            assert status == "200 OK"
            assert json.loads(body)["version"] == server.root.database.version
        finally:
            await server.stop()

    run(main())


def test_http_error_mapping():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            # No route.
            status, _h, _b = await http_request(host, port, "GET", "/nope")
            assert status == "404 Not Found"
            # Unparseable body.
            status, _h, body = await http_request(
                host, port, "POST", "/v1/ask", b"{not json")
            assert status == "400 Bad Request"
            assert json.loads(body)["code"] == "bad-request"
            # Structurally invalid request (missing query).
            status, _h, _b = await http_request(
                host, port, "POST", "/v1/ask", b"{}")
            assert status == "400 Bad Request"
            # Engine rejection: inadmissible clause (undeclared label
            # -- Def 5.3 condition 2) -> 409.
            status, _h, body = await http_request(
                host, port, "POST", "/v1/assert",
                json.dumps({"clause": "x[p(k : a -x-> 1)].",
                            "clearance": "s"}).encode())
            assert status == "409 Conflict"
            assert json.loads(body)["code"] == "rejected"
        finally:
            await server.stop()

    run(main())


def test_http_shed_maps_to_503_with_retry_after():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            server.stats.inflight = server.config.max_inflight  # saturate
            status, headers, body = await http_request(
                host, port, "POST", "/v1/ask",
                json.dumps({"query": ASK, "clearance": "s"}).encode())
            server.stats.inflight = 0
            assert status == "503 Service Unavailable"
            assert headers.get("retry-after") == "1"
            assert json.loads(body)["code"] == "shed"
        finally:
            await server.stop()

    run(main())
