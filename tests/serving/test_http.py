"""Units for the minimal HTTP/1.1 shim over the serving dispatch."""

from __future__ import annotations

import asyncio
import json

from repro.serving import MultiLogServer, ServerConfig
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def run(coro):
    return asyncio.run(coro)


async def read_response(reader) -> tuple[str, dict, bytes]:
    """One Content-Length-framed response off a (kept-alive) stream."""
    status_line = (await reader.readline()).decode("ascii")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("ascii").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers.get("content-length", 0)))
    return status_line.split(" ", 1)[1].strip(), headers, payload


def request_bytes(method: str, path: str, body: bytes | None = None,
                  extra: tuple[str, ...] = ()) -> bytes:
    head = [f"{method} {path} HTTP/1.1", "Host: test"]
    head.extend(extra)
    if body:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + (body or b"")


async def http_request(host: str, port: int, method: str, path: str,
                       body: bytes | None = None) -> tuple[str, dict, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request_bytes(method, path, body,
                               extra=("Connection: close",)))
    await writer.drain()
    result = await read_response(reader)
    writer.close()
    return result


async def started_http() -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"))
    await server.start()
    await server.start_http()
    return server


def test_healthz_and_metrics():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            status, _headers, body = await http_request(host, port,
                                                        "GET", "/healthz")
            assert status == "200 OK"
            assert json.loads(body)["ok"] is True
            status, headers, body = await http_request(host, port,
                                                       "GET", "/metrics")
            assert status == "200 OK"
            assert headers["content-type"].startswith("text/plain")
            assert b"multilog_serving_accepted_total" in body
        finally:
            await server.stop()

    run(main())


def test_post_ask_and_assert():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            status, _h, body = await http_request(
                host, port, "POST", "/v1/ask",
                json.dumps({"query": ASK, "clearance": "s"}).encode())
            assert status == "200 OK"
            response = json.loads(body)
            assert response["complete"] is True
            assert response["answers"]
            status, _h, body = await http_request(
                host, port, "POST", "/v1/assert",
                json.dumps({"clause": "u[p(k8 : a -u-> 8)].",
                            "clearance": "s"}).encode())
            assert status == "200 OK"
            assert json.loads(body)["version"] == server.root.database.version
        finally:
            await server.stop()

    run(main())


def test_http_error_mapping():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            # No route.
            status, _h, _b = await http_request(host, port, "GET", "/nope")
            assert status == "404 Not Found"
            # Unparseable body.
            status, _h, body = await http_request(
                host, port, "POST", "/v1/ask", b"{not json")
            assert status == "400 Bad Request"
            assert json.loads(body)["code"] == "bad-request"
            # Structurally invalid request (missing query).
            status, _h, _b = await http_request(
                host, port, "POST", "/v1/ask", b"{}")
            assert status == "400 Bad Request"
            # Engine rejection: inadmissible clause (undeclared label
            # -- Def 5.3 condition 2) -> 409.
            status, _h, body = await http_request(
                host, port, "POST", "/v1/assert",
                json.dumps({"clause": "x[p(k : a -x-> 1)].",
                            "clearance": "s"}).encode())
            assert status == "409 Conflict"
            assert json.loads(body)["code"] == "rejected"
        finally:
            await server.stop()

    run(main())


def test_http_shed_maps_to_503_with_retry_after():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            server.stats.inflight = server.config.max_inflight  # saturate
            status, headers, body = await http_request(
                host, port, "POST", "/v1/ask",
                json.dumps({"query": ASK, "clearance": "s"}).encode())
            server.stats.inflight = 0
            assert status == "503 Service Unavailable"
            assert headers.get("retry-after") == "1"
            assert json.loads(body)["code"] == "shed"
        finally:
            await server.stop()

    run(main())


def test_keep_alive_serves_many_requests_on_one_connection():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            for _ in range(3):
                writer.write(request_bytes(
                    "POST", "/v1/ask",
                    json.dumps({"query": ASK, "clearance": "s"}).encode()))
                await writer.drain()
                status, headers, body = await read_response(reader)
                assert status == "200 OK"
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["complete"] is True
            writer.close()
            # All three rode one TCP connection.
            assert server.stats.connections_total == 1
        finally:
            await server.stop()

    run(main())


def test_keepalive_cap_advertises_close_on_the_last_request(monkeypatch):
    from repro.serving import http as http_shim
    monkeypatch.setattr(http_shim, "MAX_KEEPALIVE_REQUESTS", 2)

    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request_bytes("GET", "/healthz"))
            await writer.drain()
            _status, headers, _body = await read_response(reader)
            assert headers["connection"] == "keep-alive"
            writer.write(request_bytes("GET", "/healthz"))
            await writer.drain()
            _status, headers, _body = await read_response(reader)
            # The cap is reached: the final response must say close
            # instead of advertising keep-alive and then resetting a
            # client that reuses the connection as told.
            assert headers["connection"] == "close"
            assert await reader.read() == b""
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_pipelined_requests_answered_in_order():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            # Send both requests before reading either response.
            writer.write(request_bytes("GET", "/healthz")
                         + request_bytes(
                             "POST", "/v1/ask",
                             json.dumps({"query": ASK,
                                         "clearance": "s"}).encode()))
            await writer.drain()
            status, _h, body = await read_response(reader)
            assert status == "200 OK"
            assert json.loads(body)["status"] == "healthy"
            status, _h, body = await read_response(reader)
            assert status == "200 OK"
            assert json.loads(body)["answers"]
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_connection_close_is_honored():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request_bytes("GET", "/healthz",
                                       extra=("Connection: close",)))
            await writer.drain()
            _status, headers, _body = await read_response(reader)
            assert headers["connection"] == "close"
            # The server hangs up: the next read sees EOF.
            assert await reader.read() == b""
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_http10_closes_by_default():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n")
            await writer.drain()
            _status, headers, _body = await read_response(reader)
            assert headers["connection"] == "close"
            assert await reader.read() == b""
            writer.close()
        finally:
            await server.stop()

    run(main())


def test_healthz_reports_draining_as_503():
    async def main():
        server = await started_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            server._draining = True
            writer.write(request_bytes("GET", "/healthz"))
            await writer.drain()
            status, _h, body = await read_response(reader)
            assert status == "503 Service Unavailable"
            payload = json.loads(body)
            assert payload["ok"] is False
            assert payload["status"] == "draining"
            writer.close()
        finally:
            await server.stop()

    run(main())
