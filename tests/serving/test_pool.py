"""Units for the exclusive-checkout per-clearance session pool."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import LatticeError, ServingError
from repro.multilog.session import MultiLogSession
from repro.serving.pool import SessionPool
from repro.workloads.d1 import D1_SOURCE


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def root():
    return MultiLogSession(D1_SOURCE, clearance="s")


def test_checkout_creates_sibling_at_clearance(root):
    async def main():
        pool = SessionPool(root)
        session = await pool.checkout("c")
        assert str(session.clearance) == "c"
        assert session is not root
        assert session.database is root.database
        await pool.checkin(session)
        return pool.stats()

    stats = run(main())
    assert stats["c"] == {"created": 1, "busy": 0, "free": 1}


def test_checkout_defaults_to_root_clearance(root):
    async def main():
        pool = SessionPool(root)
        session = await pool.checkout()
        assert str(session.clearance) == "s"
        await pool.checkin(session)

    run(main())


def test_checkin_reuses_the_sibling(root):
    async def main():
        pool = SessionPool(root)
        first = await pool.checkout("u")
        await pool.checkin(first)
        second = await pool.checkout("u")
        await pool.checkin(second)
        assert first is second
        assert pool.stats()["u"]["created"] == 1

    run(main())


def test_concurrent_checkouts_are_exclusive(root):
    async def main():
        pool = SessionPool(root, max_per_clearance=4)
        a = await pool.checkout("s")
        b = await pool.checkout("s")
        assert a is not b  # never hand one session to two holders
        await pool.checkin(a)
        await pool.checkin(b)
        assert pool.stats()["s"] == {"created": 2, "busy": 0, "free": 2}

    run(main())


def test_checkout_blocks_at_cap_until_checkin(root):
    async def main():
        pool = SessionPool(root, max_per_clearance=1)
        held = await pool.checkout("s")
        waiter = asyncio.create_task(pool.checkout("s"))
        await asyncio.sleep(0.05)
        assert not waiter.done()  # capped: must wait for the checkin
        await pool.checkin(held)
        reused = await asyncio.wait_for(waiter, timeout=2)
        assert reused is held
        await pool.checkin(reused)

    run(main())


def test_lease_checks_back_in_on_error(root):
    async def main():
        pool = SessionPool(root, max_per_clearance=1)
        with pytest.raises(RuntimeError):
            async with pool.lease("s"):
                raise RuntimeError("boom")
        # The slot came back: the next lease must not block.
        async with pool.lease("s") as session:
            assert str(session.clearance) == "s"

    run(main())


def test_unknown_clearance_rejected_without_a_phantom_slot(root):
    async def main():
        pool = SessionPool(root)
        with pytest.raises(LatticeError):
            await pool.checkout("topsecret")
        assert pool.stats() == {}

    run(main())


def test_on_create_hook_runs_once_per_session(root):
    seen = []

    async def main():
        pool = SessionPool(root, on_create=seen.append)
        session = await pool.checkout("c")
        await pool.checkin(session)
        again = await pool.checkout("c")
        await pool.checkin(again)

    run(main())
    assert len(seen) == 1
    assert str(seen[0].clearance) == "c"


def test_backend_mixing_is_a_regression_error(root, monkeypatch):
    """A sibling resolving a different backend must fail checkout loudly."""

    def bad_sibling(clearance):
        other = "columnar" if root.backend == "dict" else "dict"
        return MultiLogSession(root.database, clearance, backend=other)

    monkeypatch.setattr(root, "with_clearance", bad_sibling)

    async def main():
        pool = SessionPool(root, max_per_clearance=1)
        with pytest.raises(ServingError, match="mix storage backends"):
            await pool.checkout("u")
        # The failed creation rolled its slot back: cap not consumed.
        assert pool.stats().get("u", {}).get("created", 0) == 0

    run(main())


def test_invalid_cap_rejected(root):
    with pytest.raises(ServingError):
        SessionPool(root, max_per_clearance=0)


def test_sessions_lists_only_free_siblings(root):
    async def main():
        pool = SessionPool(root)
        held = await pool.checkout("u")
        free = await pool.checkout("c")
        await pool.checkin(free)
        listed = pool.sessions()
        assert free in listed
        assert held not in listed
        await pool.checkin(held)

    run(main())
