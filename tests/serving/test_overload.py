"""Overload protection: deadlines, per-clearance quotas, circuit
breakers, retry hints and graceful drain."""

from __future__ import annotations

import asyncio

from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.serving.breaker import STATE_CODES, CircuitBreaker
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def run(coro):
    return asyncio.run(coro)


async def started(**overrides) -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"), **overrides)
    await server.start()
    return server


async def wait_for(predicate, timeout: float = 5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


# -- the circuit breaker state machine (fake clock: fully deterministic) -

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_breaker_trips_half_opens_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
    assert breaker.state == "closed"
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"  # one failure is not a pattern
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert 0 < breaker.retry_after() <= 5.0
    clock.now += 5.0  # reset window elapses
    assert breaker.state == "half-open"
    assert breaker.allow()  # exactly one probe gets through
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, reset_s=2.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now += 2.5
    assert breaker.allow()  # half-open probe
    breaker.record_failure()  # the probe failed
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.opened_total == 2


def test_breaker_probe_release_frees_the_slot():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, reset_s=2.0, clock=clock)
    breaker.record_failure()
    clock.now += 2.5
    assert breaker.allow()  # claim the half-open probe
    assert breaker.probing
    assert not breaker.allow()
    breaker.release_probe()  # the probe ended with no health verdict
    assert breaker.state == "half-open"
    assert not breaker.probing
    assert breaker.allow()  # the slot is free for a fresh probe
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_state_codes_cover_every_state():
    assert STATE_CODES == {"closed": 0, "half-open": 1, "open": 2}
    breaker = CircuitBreaker()
    assert breaker.state_code == 0
    assert breaker.describe().startswith("closed")


# -- deadline propagation ------------------------------------------------

def test_request_deadline_trips_with_the_deadline_code():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                response = await client.request(
                    {"op": "ask", "query": ASK, "timeout_s": 1e-9})
                assert response["ok"] is False
                assert response["code"] == "deadline"
            assert server.stats.deadline_total == 1
        finally:
            await server.stop()

    run(main())


def test_hello_timeout_is_the_connection_default_and_requests_override():
    async def main():
        server = await started()
        try:
            host, port = server.address
            client = await ServingClient.connect(host, port, "s",
                                                 timeout_s=1e-9)
            # Inherited from hello: the ask dies on the connection deadline.
            response = await client.request({"op": "ask", "query": ASK})
            assert response["code"] == "deadline"
            # A per-request deadline overrides the pinned one.
            full = await client.ask_full(ASK, timeout_s=30.0)
            assert full["complete"] is True
            await client.close()
        finally:
            await server.stop()

    run(main())


def test_server_default_timeout_applies_when_nothing_else_named_one():
    async def main():
        server = await started(default_timeout_s=1e-9)
        try:
            response = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert response["code"] == "deadline"
        finally:
            await server.stop()

    run(main())


def test_assert_deadline_fires_waiting_for_the_write_lock():
    async def main():
        server = await started()
        try:
            before = server.root.database.version
            # A held read lock parks the writer (write-preferring lock).
            gate = server._rw.read()
            await gate.__aenter__()
            task = asyncio.create_task(server.dispatch(
                {"op": "assert", "clause": "u[p(k9 : a -u-> 9)].",
                 "clearance": "s", "timeout_s": 0.01}))
            await asyncio.sleep(0.1)  # let the deadline lapse while parked
            await gate.__aexit__(None, None, None)
            response = await task
            assert response["code"] == "deadline"
            assert "clause not applied" in response["error"]
            assert server.root.database.version == before
            assert server.stats.deadline_total == 1
        finally:
            await server.stop()

    run(main())


# -- per-clearance admission quotas --------------------------------------

def test_clearance_quota_caps_one_level_without_starving_others():
    async def main():
        server = await started(clearance_quotas={"u": 1})
        try:
            # One unclassified request already in flight...
            server.stats.inflight = 1
            server.stats.inflight_by_clearance["u"] = 1
            response = await server.dispatch(
                {"op": "ask", "query": "u[p(K : a -C-> V)] << cau",
                 "clearance": "u"})
            assert response["code"] == "quota"
            assert response["retry_after"] == 1.0
            assert server.stats.quota_shed_total == 1
            # ...but other clearances still share the global cap.
            ok = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert ok["ok"] is True
            server.stats.inflight = 0
            server.stats.inflight_by_clearance.clear()
        finally:
            await server.stop()

    run(main())


def test_shed_response_carries_retry_after_on_the_json_protocol():
    async def main():
        server = await started()
        try:
            server.stats.inflight = server.config.max_inflight
            response = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            server.stats.inflight = 0
            assert response["code"] == "shed"
            assert response["retry_after"] == 1.0
        finally:
            await server.stop()

    run(main())


# -- the breaker wired into the serving path -----------------------------

def test_repeated_internal_failures_open_the_ask_breaker():
    async def main():
        server = await started(breaker_threshold=2, breaker_reset_s=60.0)
        try:
            def explode(*args, **kwargs):
                raise RuntimeError("engine crashed")

            server._run_ask = explode
            for _ in range(2):
                response = await server.dispatch(
                    {"op": "ask", "query": ASK, "clearance": "s"})
                assert response["code"] == "internal"
            rejected = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert rejected["code"] == "breaker-open"
            assert rejected["retry_after"] > 0
            assert server.stats.breaker_rejected_total == 1
            assert server.health == "degraded"
            # The assert path has its own breaker: writes still flow.
            ok = await server.dispatch(
                {"op": "assert", "clause": "u[p(k8 : a -u-> 8)].",
                 "clearance": "s"})
            assert ok["ok"] is True
        finally:
            await server.stop()

    run(main())


def test_client_attributable_errors_never_count_against_the_breaker():
    async def main():
        server = await started(breaker_threshold=1, breaker_reset_s=60.0)
        try:
            for _ in range(3):
                response = await server.dispatch(
                    {"op": "ask", "query": "p((", "clearance": "s"})
                assert response["code"] == "bad-query"
            deadline = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s",
                 "timeout_s": 1e-9})
            assert deadline["code"] == "deadline"
            assert server._breakers["ask"].state == "closed"
            ok = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert ok["ok"] is True
        finally:
            await server.stop()

    run(main())


def test_verdictless_probe_outcomes_do_not_wedge_the_breaker():
    # Regression: a half-open probe that exited without reaching a
    # server-health verdict (admission denial, client error, client
    # deadline) used to leak the probe slot, leaving the breaker
    # rejecting every request with breaker-open until restart.
    async def main():
        server = await started(breaker_threshold=1, breaker_reset_s=0.0)
        try:
            def explode(*args, **kwargs):
                raise RuntimeError("engine crashed")

            server._run_ask = explode
            failed = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert failed["code"] == "internal"
            del server._run_ask  # restore the real engine path
            breaker = server._breakers["ask"]
            assert breaker.state == "half-open"  # reset_s=0: probe allowed

            # Probe 1 dies on admission control (runs after allow()).
            server._draining = True
            denied = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert denied["code"] == "draining"
            server._draining = False

            # Probe 2 is a client error; probe 3 the client's deadline.
            bad = await server.dispatch(
                {"op": "ask", "query": "p((", "clearance": "s"})
            assert bad["code"] == "bad-query"
            late = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s",
                 "timeout_s": 1e-9})
            assert late["code"] == "deadline"

            # None of those wedged the slot: a real probe still gets
            # through, succeeds and closes the breaker.
            ok = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert ok["ok"] is True
            assert breaker.state == "closed"
        finally:
            await server.stop()

    run(main())


# -- graceful drain ------------------------------------------------------

def test_drain_stops_admission_and_takes_a_final_checkpoint(tmp_path):
    async def main():
        server = MultiLogServer(D1_SOURCE, ServerConfig(
            clearance="s", journal=str(tmp_path / "wal.jsonl"),
            checkpoint_records=None, checkpoint_bytes=None))
        await server.start()
        try:
            for key in ("k6", "k7"):
                ok = await server.dispatch(
                    {"op": "assert", "clause": f"u[p({key} : a -u-> 1)].",
                     "clearance": "s"})
                assert ok["ok"] is True
            assert await server.drain(timeout_s=1.0) is True
            assert server.health == "draining"
            assert server.stats.checkpoints_total == 1
            rejected = await server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"})
            assert rejected["code"] == "draining"
            assert rejected["retry_after"] == 1.0
            # The final checkpoint collapsed the journal to open+snapshot.
            lines = (tmp_path / "wal.jsonl").read_text().splitlines()
            assert len(lines) == 2
        finally:
            await server.stop()

    run(main())


def test_drain_reports_false_when_inflight_outlives_the_deadline():
    async def main():
        server = await started()
        try:
            gate = server._rw.write()
            await gate.__aenter__()
            task = asyncio.create_task(server.dispatch(
                {"op": "ask", "query": ASK, "clearance": "s"}))
            await wait_for(lambda: server.stats.inflight == 1)
            assert await server.drain(timeout_s=0.1) is False
            await gate.__aexit__(None, None, None)
            response = await task  # the straggler still completes
            assert response["ok"] is True
        finally:
            await server.stop()

    run(main())


# -- dashboard coverage --------------------------------------------------

def test_metrics_expose_breakers_quotas_and_new_counters():
    server = MultiLogServer(D1_SOURCE, clearance="s")
    server.stats.inflight_by_clearance["s"] = 2
    text = server.metrics_text()
    for needle in (
        'multilog_serving_breaker_state{op="ask"} 0',
        'multilog_serving_breaker_state{op="assert"} 0',
        'multilog_serving_breaker_opened_total{op="ask"} 0',
        'multilog_serving_inflight_by_clearance{clearance="s"} 2',
        "multilog_serving_quota_shed_total 0",
        "multilog_serving_deadline_total 0",
        "multilog_serving_cancelled_total 0",
        "multilog_serving_checkpoints_total 0",
    ):
        assert needle in text, f"missing {needle!r}"
