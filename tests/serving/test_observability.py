"""End-to-end request observability: distributed tracing through the
serving stack, the structured access log, lattice-redacted slow-query
capture, and the SLO burn-rate monitors."""

from __future__ import annotations

import asyncio
import json
import socket
import struct

import pytest

from repro.obs import format_traceparent, new_span_id, new_trace_id
from repro.obs.export import chrome_trace_events
from repro.resilience import FaultPlan
from repro.serving import (
    MultiLogServer,
    ServerConfig,
    ServingCallError,
    ServingClient,
    SLOTracker,
)
from repro.serving.requestlog import SlowLog
from repro.workloads.d1 import D1_SOURCE

ASK = "s[p(K : a -C-> V)] << cau"


def run(coro):
    return asyncio.run(coro)


class SpanList:
    """A trace sink that keeps every root span it is handed."""

    def __init__(self):
        self.spans = []

    def write_span(self, span) -> None:
        self.spans.append(span)


async def started(**overrides) -> MultiLogServer:
    server = MultiLogServer(D1_SOURCE, ServerConfig(clearance="s"),
                            **overrides)
    await server.start()
    return server


async def wait_for(predicate, timeout: float = 5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


def rst_close(sock: socket.socket) -> None:
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
    sock.close()


# -- trace propagation: protocol ----------------------------------------

def test_traced_ask_yields_connected_span_tree():
    sink = SpanList()

    async def main():
        server = await started(trace=True, trace_sink=sink)
        try:
            host, port = server.address
            trace_id = new_trace_id()
            parent = new_span_id()
            async with await ServingClient.connect(host, port, "s") as client:
                full = await client.ask_full(
                    ASK, traceparent=format_traceparent(trace_id, parent))
                assert full["trace_id"] == trace_id
        finally:
            await server.stop()

    run(main())
    assert len(sink.spans) == 1
    root = sink.spans[0]
    assert root.name == "request[ask]"
    assert root.attrs["trace_id"] and root.attrs["parent_span_id"]
    assert root.attrs["outcome"] == "ok"
    # The engine's per-ask span forest grafted under the request span:
    # one connected tree from the request down to the engine strata.
    assert root.children, "engine spans did not parent under the request"
    names = {span.name for child in root.children for span in [child]}
    assert "query" in names
    assert root.find("query")[0].children  # strata/evaluate below query
    # Renderable by the existing Perfetto (Chrome trace) exporter.
    events = chrome_trace_events([root])
    assert len(events) >= 3
    assert events[0]["name"] == "request[ask]"
    assert all(event["ph"] == "X" for event in events)


def test_server_mints_ids_without_client_traceparent():
    sink = SpanList()

    async def main():
        server = await started(trace=True, trace_sink=sink)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                first = await client.ask_full(ASK)
                second = await client.ask_full(ASK)
                assert first["trace_id"] != second["trace_id"]
                assert len(first["trace_id"]) == 32
        finally:
            await server.stop()

    run(main())
    roots = {span.attrs["trace_id"] for span in sink.spans}
    assert len(roots) == 2


def test_invalid_traceparent_is_bad_request():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                with pytest.raises(ServingCallError) as excinfo:
                    await client.ask_full(ASK, traceparent="00-bogus-beef-01")
                assert excinfo.value.code == "bad-request"
        finally:
            await server.stop()

    run(main())


def test_breakdown_sums_to_wall_time():
    sink = SpanList()

    async def main():
        server = await started(trace=True, trace_sink=sink)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK)
        finally:
            await server.stop()

    run(main())
    root = sink.spans[0]
    parts = [root.attrs[key] for key in ("admission_s", "lock_wait_s",
                                         "pool_wait_s", "engine_s")]
    covered = sum(parts)
    # The breakdown accounts for the request's wall time: whatever is
    # not admission/lock/pool/engine is dispatch bookkeeping, and that
    # must stay below 10% of the request (acceptance criterion).
    assert covered <= root.elapsed_s + 1e-6
    assert covered >= 0.9 * root.elapsed_s, (covered, root.elapsed_s)
    assert root.attrs["rows"] >= 0 and root.attrs["probes"] >= 0


# -- trace propagation: HTTP shim ---------------------------------------

def _http_request_bytes(method: str, path: str, body: bytes | None = None,
                        extra: tuple[str, ...] = ()) -> bytes:
    head = [f"{method} {path} HTTP/1.1", "Host: test"]
    head.extend(extra)
    if body:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + (body or b"")


async def _read_http_response(reader) -> tuple[str, dict]:
    status_line = (await reader.readline()).decode("ascii")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("ascii").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers.get("content-length", 0)))
    return status_line.split(" ", 1)[1].strip(), json.loads(payload)


def test_http_traceparent_header_joins_the_trace():
    sink = SpanList()

    async def main():
        server = await started(trace=True, trace_sink=sink)
        await server.start_http()
        try:
            host, port = server.http_address
            trace_id = new_trace_id()
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"query": ASK, "clearance": "s"}).encode()
            writer.write(_http_request_bytes(
                "POST", "/v1/ask", body,
                extra=(f"traceparent: "
                       f"{format_traceparent(trace_id, new_span_id())}",
                       "Connection: close")))
            await writer.drain()
            status, response = await _read_http_response(reader)
            writer.close()
            assert status == "200 OK"
            assert response["trace_id"] == trace_id
        finally:
            await server.stop()

    run(main())
    assert sink.spans[0].attrs["trace_id"] == sink.spans[0].attrs["trace_id"]
    assert sink.spans[0].children


def test_http_pipelined_requests_get_distinct_trace_ids():
    async def main():
        server = await started(trace=True)
        await server.start_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"query": ASK, "clearance": "s"}).encode()
            # Three requests written back-to-back on one keep-alive
            # connection; responses come back in order, each with its
            # own server-minted trace id.
            for _ in range(3):
                writer.write(_http_request_bytes("POST", "/v1/ask", body))
            await writer.drain()
            trace_ids = []
            for _ in range(3):
                status, response = await _read_http_response(reader)
                assert status == "200 OK"
                trace_ids.append(response["trace_id"])
            writer.close()
            assert len(set(trace_ids)) == 3
        finally:
            await server.stop()

    run(main())


def test_disconnect_mid_ask_closes_root_span_aborted():
    sink = SpanList()

    async def main():
        server = await started(trace=True, trace_sink=sink)
        try:
            plan = FaultPlan()
            plan.arm("query", action="delay", delay_s=0.5, times=None)

            def setup(session, _orig=server.pool._on_create):
                _orig(session)
                session.arm_faults(plan)

            server.pool._on_create = setup
            host, port = server.address
            sock = socket.create_connection((host, port))
            sock.sendall(b'{"op": "ask", "query": "%s", "clearance": "s"}\n'
                         % ASK.encode("ascii"))
            await wait_for(lambda: server.stats.inflight == 1)
            rst_close(sock)
            await wait_for(lambda: server.stats.cancelled_total == 1)
            await wait_for(lambda: len(sink.spans) == 1)
        finally:
            await server.stop()

    run(main())
    root = sink.spans[0]
    assert root.attrs["outcome"] == "cancelled"
    assert root.attrs["aborted"] is True


# -- slow-query capture and lattice redaction ----------------------------

def test_slow_log_captures_and_redacts_by_clearance():
    async def main():
        server = await started(slow_threshold_s=0.0, trace=True)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK, clearance="s")
                # Viewed at the clearance it ran at: full content.
                high = await client.slowlog(clearance="s")
                assert high["enabled"] is True
                entry = high["entries"][0]
                assert entry["redacted"] is False
                assert entry["query"] == ASK
                assert entry["spans"] and entry["explain"]
                # Viewed from below: metadata only, no content fields.
                low = await client.slowlog(clearance="u")
                shadow = low["entries"][0]
                assert shadow["redacted"] is True
                assert "query" not in shadow
                assert "spans" not in shadow
                assert "explain" not in shadow
                assert "answers" not in json.dumps(shadow)
                assert ASK not in json.dumps(shadow)
                # Operational metadata survives redaction.
                assert shadow["trace_id"] == entry["trace_id"]
                assert shadow["outcome"] == "ok"
                assert shadow["elapsed_ms"] >= 0
                # Every capture left an audit event.
                events = [event for event in await client.audit()
                          if event["kind"] == "slow_capture"]
                assert len(events) == 1
                assert events[0]["subject"] == "s"
        finally:
            await server.stop()

    run(main())


def test_slow_log_captures_errors_and_caps_the_ring():
    async def main():
        server = await started(slow_threshold_s=30.0, slow_capacity=2)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                # Fast ok asks are NOT captured (threshold is high)...
                await client.ask(ASK)
                assert (await client.slowlog(clearance="s"))["entries"] == []
                # ...but errors always are, newest first, ring-bounded.
                for index in range(3):
                    with pytest.raises(ServingCallError):
                        await client.ask_full(f"nonsense {index} <<")
                response = await client.slowlog(clearance="s")
                assert len(response["entries"]) == 2
                assert response["captured_total"] == 3
                assert all(entry["outcome"] == "bad-query"
                           for entry in response["entries"])
                assert response["entries"][0]["query"] == "nonsense 2 <<"
                limited = await client.slowlog(limit=1, clearance="s")
                assert len(limited["entries"]) == 1
        finally:
            await server.stop()

    run(main())


def test_slowlog_disabled_reports_disabled():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                response = await client.slowlog()
                assert response["enabled"] is False
                assert response["entries"] == []
        finally:
            await server.stop()

    run(main())


def test_slow_log_fails_closed_without_lattice():
    log = SlowLog(threshold_s=0.0)
    log.capture(trace_id="t", op="ask", level="s", outcome="ok",
                elapsed_s=1.0, breakdown={}, query="secret query")
    [entry] = log.view("s")  # no lattice attached: redact even for "s"
    assert entry["redacted"] is True
    assert "query" not in entry
    [entry] = log.view(None)
    assert entry["redacted"] is True


def test_http_debug_slow_route():
    async def main():
        server = await started(slow_threshold_s=0.0)
        await server.start_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"query": ASK, "clearance": "s"}).encode()
            writer.write(_http_request_bytes("POST", "/v1/ask", body))
            writer.write(_http_request_bytes(
                "GET", "/v1/debug/slow?limit=1&clearance=s",
                extra=("Connection: close",)))
            await writer.drain()
            status, _ask = await _read_http_response(reader)
            assert status == "200 OK"
            status, slow = await _read_http_response(reader)
            writer.close()
            assert status == "200 OK"
            assert slow["enabled"] is True
            assert len(slow["entries"]) == 1
            assert slow["entries"][0]["query"] == ASK
        finally:
            await server.stop()

    run(main())


# -- access log ----------------------------------------------------------

def test_access_log_schema_and_no_query_text(tmp_path):
    path = tmp_path / "access.jsonl"

    async def main():
        server = await started(access_log=str(path))
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK)
                await client.assert_clause("u[p(k9 : a -u-> 9)].")
                with pytest.raises(ServingCallError):
                    await client.ask_full("not a query <<")
        finally:
            await server.stop()

    run(main())
    lines = [json.loads(line)
             for line in path.read_text().splitlines() if line]
    assert len(lines) == 3
    by_outcome = {line["outcome"]: line for line in lines}
    ok_ask = lines[0]
    assert ok_ask["op"] == "ask" and ok_ask["outcome"] == "ok"
    assert set(ok_ask) >= {"ts", "trace_id", "op", "clearance", "outcome",
                           "elapsed_s", "breakdown", "degraded", "shed",
                           "breaker", "engine", "version", "answers"}
    assert set(ok_ask["breakdown"]) == {"admission_s", "lock_wait_s",
                                        "pool_wait_s", "engine_s"}
    assert lines[1]["op"] == "assert" and lines[1]["outcome"] == "ok"
    assert by_outcome["bad-query"]["op"] == "ask"
    # Distinct requests, distinct trace ids; never any query text.
    assert len({line["trace_id"] for line in lines}) == 3
    raw = path.read_text()
    assert ASK not in raw
    assert "not a query" not in raw


def test_access_log_rotates_and_closes(tmp_path):
    path = tmp_path / "access.jsonl"

    async def main():
        server = await started(access_log=str(path),
                               access_log_max_bytes=512,
                               access_log_max_files=2)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                for _ in range(12):
                    await client.ask(ASK)
        finally:
            await server.stop()
        assert server.access_log is not None
        assert server.access_log.closed
        assert server.access_log.rotations >= 1

    run(main())
    assert path.exists()
    assert path.with_name("access.jsonl.1").exists()


# -- SLO burn-rate monitors ----------------------------------------------

def test_slo_burn_rate_math_with_fake_clock():
    now = [0.0]
    tracker = SLOTracker(target=0.99, fast_window_s=60.0,
                         slow_window_s=3600.0, buckets=60,
                         clock=lambda: now[0])
    for _ in range(99):
        tracker.record("ask", True)
    tracker.record("ask", False)
    rates = tracker.burn_rates()["ask"]
    # 1% bad over a 1% error budget: burning at exactly 1x.
    assert rates["fast"] == pytest.approx(1.0, abs=0.01)
    assert rates["slow"] == pytest.approx(1.0, abs=0.01)
    # The fast window forgets after its 60s; the slow window remembers.
    now[0] += 120.0
    tracker.record("ask", True)
    rates = tracker.burn_rates()["ask"]
    assert rates["fast"] == 0.0
    assert rates["slow"] > 0.0
    # Untracked ops are ignored, not materialized.
    tracker.record("metrics", False)
    assert "metrics" not in tracker.burn_rates()
    detail = tracker.detail()["ask"]
    assert detail["slow"]["bad"] == 1
    assert detail["slow"]["window_s"] == 3600.0


def test_slo_latency_objective_counts_slow_oks_as_bad():
    async def main():
        # An impossible latency objective: every ok request is "bad".
        server = await started(slo_latency_s=0.0)
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK)
            assert server.stats.slo is not None
            assert server.stats.slo.burn_rates()["ask"]["fast"] > 0.0
        finally:
            await server.stop()

    run(main())


def test_metrics_exposition_has_slo_pool_and_lock_families():
    async def main():
        server = await started()
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                await client.ask(ASK)
                await client.assert_clause("u[p(k8 : a -u-> 8)].")
                text = await client.metrics()
            assert "multilog_serving_slo_target 0.99" in text
            assert ('multilog_serving_slo_burn_rate{op="ask",window="fast"}'
                    in text)
            assert "multilog_serving_pool_wait_seconds_count" in text
            assert ('multilog_serving_lock_wait_seconds_count{side="read"}'
                    in text)
            assert ('multilog_serving_lock_wait_seconds_count{side="write"}'
                    in text)
            assert "multilog_serving_write_queue_depth 0" in text
        finally:
            await server.stop()

    run(main())


def test_healthz_reports_slo_detail():
    async def main():
        server = await started()
        await server.start_http()
        try:
            host, port = server.http_address
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"query": ASK, "clearance": "s"}).encode()
            writer.write(_http_request_bytes("POST", "/v1/ask", body))
            writer.write(_http_request_bytes("GET", "/healthz",
                                             extra=("Connection: close",)))
            await writer.drain()
            status, _ask = await _read_http_response(reader)
            status, health = await _read_http_response(reader)
            writer.close()
            assert status == "200 OK"
            assert health["slo"]["target"] == 0.99
            ask_slo = health["slo"]["ops"]["ask"]
            assert ask_slo["fast"]["good"] == 1
            assert ask_slo["fast"]["burn_rate"] == 0.0
        finally:
            await server.stop()

    run(main())


# -- every error exit feeds the latency histogram ------------------------

def _serve_count(server, op: str) -> int:
    histogram = server.stats.histograms.get(f"serve[{op}]")
    return histogram.count if histogram is not None else 0


def test_shed_and_quota_exits_are_observed():
    async def main():
        server = await started(max_inflight=0)  # everything sheds
        try:
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                with pytest.raises(ServingCallError) as excinfo:
                    await client.ask_full(ASK)
                assert excinfo.value.code == "shed"
            assert _serve_count(server, "ask") == 1
        finally:
            await server.stop()

    run(main())


def test_breaker_rejections_are_observed():
    async def main():
        server = await started()
        try:
            breaker = server._breakers["ask"]
            for _ in range(breaker.threshold):
                breaker.record_failure()
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                with pytest.raises(ServingCallError) as excinfo:
                    await client.ask_full(ASK)
                assert excinfo.value.code == "breaker-open"
            assert _serve_count(server, "ask") == 1
        finally:
            await server.stop()

    run(main())


def test_undecodable_requests_are_observed_as_invalid():
    async def main():
        server = await started()
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["code"] == "bad-request"
            writer.write(b'{"op": "teleport"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["code"] == "unknown-op"
            writer.close()
            assert _serve_count(server, "invalid") >= 2
        finally:
            await server.stop()

    run(main())


def test_deadline_exits_are_observed():
    async def main():
        server = await started()
        try:
            plan = FaultPlan()
            plan.arm("query", action="delay", delay_s=0.4, times=None)

            def setup(session, _orig=server.pool._on_create):
                _orig(session)
                session.arm_faults(plan)

            server.pool._on_create = setup
            host, port = server.address
            async with await ServingClient.connect(host, port, "s") as client:
                with pytest.raises(ServingCallError) as excinfo:
                    await client.ask_full(ASK, timeout_s=0.05)
                assert excinfo.value.code == "deadline"
            assert server.stats.deadline_total == 1
            assert _serve_count(server, "ask") == 1
        finally:
            await server.stop()

    run(main())
