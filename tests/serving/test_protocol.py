"""Units for the newline-framed JSON wire protocol."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.serving.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)


def test_encode_message_is_one_framed_line():
    raw = encode_message({"id": 1, "op": "ping"})
    assert raw.endswith(b"\n")
    assert raw.count(b"\n") == 1
    assert json.loads(raw) == {"id": 1, "op": "ping"}


def test_encode_message_compact_and_utf8():
    raw = encode_message({"q": "café", "n": 2})
    assert b", " not in raw  # compact separators
    assert json.loads(raw.decode("utf-8"))["q"] == "café"


def test_encode_message_falls_back_to_repr():
    class Odd:
        def __repr__(self):
            return "<odd>"

    assert json.loads(encode_message({"x": Odd()}))["x"] == "<odd>"


def test_ok_and_error_response_shapes():
    ok = ok_response(7, answers=[], version=3)
    assert ok == {"id": 7, "ok": True, "answers": [], "version": 3}
    err = error_response(8, "shed", "busy now")
    assert err == {"id": 8, "ok": False, "code": "shed", "error": "busy now"}


def test_error_response_sanitizes_unknown_code():
    assert error_response(None, "not-a-code", "x")["code"] == "internal"


def test_decode_request_roundtrip():
    line = encode_message({"id": 1, "op": "ask", "query": "q(X)"})
    request = decode_request(line)
    assert request["op"] == "ask"
    assert request["query"] == "q(X)"


@pytest.mark.parametrize("line,code", [
    (b"not json\n", "bad-request"),
    (b"[1, 2]\n", "bad-request"),
    (b'{"no": "op"}\n', "bad-request"),
    (b'{"op": 3}\n', "bad-request"),
    (b'{"op": "frobnicate"}\n', "unknown-op"),
    (b'{"op": "ask"}\n', "bad-request"),
    (b'{"op": "ask", "query": "  "}\n', "bad-request"),
    (b'{"op": "ask", "query": "q(X)", "engine": "warp"}\n', "bad-request"),
    (b'{"op": "ask", "query": "q(X)", "clearance": 4}\n', "bad-request"),
    (b'{"op": "assert"}\n', "bad-request"),
    (b'{"op": "assert", "clause": "p.", "strict": "yes"}\n', "bad-request"),
    (b"\xff\xfe{}\n", "bad-request"),
])
def test_decode_request_rejections(line, code):
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(line)
    assert excinfo.value.code == code
    assert excinfo.value.code in ERROR_CODES


def test_decode_request_oversized_line():
    line = b'{"op": "ask", "query": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(line)
    assert excinfo.value.code == "line-too-long"


def test_every_op_documented():
    assert set(OPS) == {"hello", "ping", "ask", "assert", "metrics", "audit",
                        "slowlog"}
