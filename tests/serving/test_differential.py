"""The serving concurrency differential.

M concurrent clients drive interleaved ask/assert traces through the
server; every response must be **byte-identical** to the same trace
replayed serially on plain sessions.  The bridge is the snapshot
version each response reports: the server's read-write lock freezes
``database.version`` for the whole of every ask, so replaying asserts
in version order and re-asking each query at the version it saw must
reproduce the concurrent run exactly -- on both storage backends and
through both engines.
"""

from __future__ import annotations

import asyncio
import json
import random
from collections import defaultdict

import pytest

from repro.multilog.session import MultiLogSession
from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

CLEARANCES = ("u", "c", "s")

#: per-clearance query mix: the paper's p-queries plus the fresh t
#: predicate the traces assert into.
QUERIES = {
    "u": ("u[p(K : a -C-> V)] << fir",
          "u[p(K : a -C-> V)] << cau",
          "u[t(K : f -C-> V)] << cau"),
    "c": ("c[p(K : a -C-> V)] << opt",
          "c[p(k : a -u-> v)] << opt",
          "c[t(K : f -C-> V)] << opt"),
    "s": ("s[p(K : a -C-> V)] << cau",
          "s[p(K : a -C-> V)] << opt",
          "s[t(K : f -C-> V)] << fir"),
}

CLIENTS = 6
OPS_PER_CLIENT = 8


def canon(answers) -> str:
    """The byte-identity witness: canonical JSON of an answer list."""
    return json.dumps(answers, sort_keys=True, separators=(",", ":"),
                      default=repr)


async def drive_client(host: str, port: int, index: int) -> list[dict]:
    """One client's trace: interleaved asks and asserts, events recorded."""
    clearance = CLEARANCES[index % len(CLEARANCES)]
    rng = random.Random(2000 + index)
    events: list[dict] = []
    async with await ServingClient.connect(host, port, clearance) as client:
        for op in range(OPS_PER_CLIENT):
            if rng.random() < 0.35:
                clause = (f"{clearance}[t(k{index}_{op} : "
                          f"f -{clearance}-> {index * 100 + op})].")
                response = await client.assert_clause(clause)
                events.append({"kind": "assert", "clearance": clearance,
                               "clause": clause,
                               "version": response["version"]})
            else:
                query = rng.choice(QUERIES[clearance])
                response = await client.ask_full(query)
                assert response["complete"] is True, response
                events.append({"kind": "ask", "clearance": clearance,
                               "query": query,
                               "version": response["version"],
                               "answers": canon(response["answers"])})
    return events


def replay_serially(events: list[dict], backend: str, engine: str) -> None:
    """Replay the concurrent trace on plain sessions and compare bytes."""
    root = MultiLogSession(D1_SOURCE, clearance="s", backend=backend)
    sessions = {level: root.with_clearance(level) for level in CLEARANCES}

    asks_at: dict[int, list[dict]] = defaultdict(list)
    for event in events:
        if event["kind"] == "ask":
            asks_at[event["version"]].append(event)
    asserts = sorted((e for e in events if e["kind"] == "assert"),
                     key=lambda e: e["version"])

    replayed = 0

    def replay_asks(version: int) -> None:
        nonlocal replayed
        for event in asks_at.get(version, ()):
            serial = sessions[event["clearance"]].ask(event["query"],
                                                      engine=engine)
            assert canon(serial) == event["answers"], (
                f"divergence at version {version} for {event['query']!r} "
                f"({event['clearance']!r}/{backend}/{engine})")
            replayed += 1

    version = root.database.version
    replay_asks(version)
    for event in asserts:
        # Snapshot isolation means commits are totally ordered by the
        # version counter: each assert bumped it by exactly one.
        assert event["version"] == version + 1, (
            f"non-contiguous commit order: {event} after version {version}")
        sessions[event["clearance"]].assert_clause(event["clause"])
        version = root.database.version
        assert version == event["version"]
        replay_asks(version)

    total_asks = sum(len(bucket) for bucket in asks_at.values())
    assert replayed == total_asks, "some asks saw a version no commit produced"


@pytest.mark.parametrize("backend", ["dict", "columnar"])
@pytest.mark.parametrize("engine", ["operational", "reduction"])
def test_concurrent_traces_replay_byte_identically(backend, engine):
    async def main():
        server = MultiLogServer(
            D1_SOURCE,
            ServerConfig(clearance="s", backend=backend, engine=engine,
                         max_inflight=1000))
        await server.start()
        try:
            host, port = server.address
            traces = await asyncio.gather(*(
                drive_client(host, port, index) for index in range(CLIENTS)))
        finally:
            await server.stop()
        # The differential is only meaningful if nothing was shed or
        # served degraded: every recorded answer was a full evaluation.
        assert server.stats.shed_total == 0
        assert server.stats.degraded_total == 0
        return [event for trace in traces for event in trace]

    events = asyncio.run(main())
    assert any(e["kind"] == "assert" for e in events)
    assert any(e["kind"] == "ask" for e in events)
    replay_serially(events, backend, engine)
