from setuptools import setup

# Mirrors pyproject.toml's [project.scripts] for the legacy offline
# install path (python setup.py develop) used where the 'wheel' package
# is unavailable.
setup(entry_points={"console_scripts": ["multilog = repro.cli:main"]})
