"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems refine it:

* :class:`LatticeError` -- malformed security lattices.
* :class:`MLSError` -- MLS relational model violations (integrity,
  Bell-LaPadula access violations, schema misuse).
* :class:`DatalogError` -- engine-level problems (unsafe rules,
  unstratifiable negation).
* :class:`MultiLogError` -- language-level problems (parse errors,
  inadmissible or inconsistent databases).
* :class:`BudgetExceededError` -- an :class:`~repro.obs.EvaluationBudget`
  limit was hit mid-evaluation (any engine).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class LatticeError(ReproError):
    """A security lattice is malformed or was used incorrectly."""


class CycleError(LatticeError):
    """The declared ordering contains a cycle (violates antisymmetry)."""


class UnknownLevelError(LatticeError):
    """A security level was referenced that the lattice does not declare."""


class NotALatticeError(LatticeError):
    """The partial order lacks a required least upper / greatest lower bound."""


class MLSError(ReproError):
    """Base class for MLS relational model errors."""


class SchemaError(MLSError):
    """A relation scheme is malformed or a tuple does not match it."""


class IntegrityError(MLSError):
    """An MLS integrity property (entity/null/polyinstantiation) is violated."""


class AccessDeniedError(MLSError):
    """A subject attempted an access forbidden by Bell-LaPadula."""


class BeliefError(MLSError):
    """A belief-view computation was refused (e.g. the cautious
    maximal-cell combination count exceeds the configured cap)."""


class BudgetExceededError(ReproError):
    """An :class:`~repro.obs.EvaluationBudget` limit was hit mid-evaluation.

    Structured so callers can degrade gracefully:

    * ``reason`` -- which limit tripped: ``"rows"``, ``"rounds"`` or
      ``"timeout"``;
    * ``spent`` -- the budget spend at the point of failure
      (``{"rows": ..., "rounds": ..., "elapsed_s": ...}``);
    * ``metrics`` -- the partial :class:`~repro.obs.EngineMetrics`
      snapshot, attached by ``evaluate`` / ``MultiLogSession.ask`` when a
      metrics collector was active (``None`` otherwise).
    """

    def __init__(self, message: str, reason: str = "budget",
                 spent: dict | None = None, metrics: object | None = None):
        super().__init__(message)
        self.reason = reason
        self.spent = dict(spent or {})
        self.metrics = metrics


class DatalogError(ReproError):
    """Base class for Datalog engine errors."""


class UnsafeRuleError(DatalogError):
    """A rule is not range-restricted (unsafe head or negated variables)."""


class StratificationError(DatalogError):
    """The program has negation that cannot be stratified."""


class MultiLogError(ReproError):
    """Base class for MultiLog language errors."""


class MultiLogSyntaxError(MultiLogError):
    """The MultiLog source text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AdmissibilityError(MultiLogError):
    """The database violates Definition 5.3 (admissibility)."""


class ConsistencyError(MultiLogError):
    """The database violates Definition 5.4 (consistency)."""


class UnknownModeError(MultiLogError):
    """A belief mode was used that is not declared in the session."""


class AnalysisError(MultiLogError):
    """Static analysis rejected the program before evaluation.

    Raised by lint-gated entry points (``MultiLogSession(lint=True)``,
    ``evaluate(..., analyze=True)``) when :mod:`repro.analysis` reports
    error-severity diagnostics.  ``report`` carries the full
    :class:`~repro.analysis.AnalysisReport` so callers can render every
    finding, not just the first.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class BeliefRecursionError(MultiLogError):
    """Belief recursion is not level-stratified (the fixpoint oscillates).

    Arises from m-clauses whose heads feed back into the beliefs their own
    bodies consult (e.g. a clause at level ``l`` depending on a cautious
    belief at a level dominating ``l``) -- the non-monotonic analogue of
    recursion through negation.
    """
