"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems refine it:

* :class:`LatticeError` -- malformed security lattices.
* :class:`MLSError` -- MLS relational model violations (integrity,
  Bell-LaPadula access violations, schema misuse).
* :class:`DatalogError` -- engine-level problems (unsafe rules,
  unstratifiable negation).
* :class:`MultiLogError` -- language-level problems (parse errors,
  inadmissible or inconsistent databases).
* :class:`BudgetExceededError` -- an :class:`~repro.obs.EvaluationBudget`
  limit was hit mid-evaluation (any engine).
* :class:`ResilienceError` and friends -- the transient-vs-permanent
  taxonomy consumed by :mod:`repro.resilience` (retry transient faults,
  fall down the strategy ladder on strategy failures, propagate
  permanent errors immediately).

Transience is a property of the *class*: :func:`is_transient` consults
the ``transient`` class attribute, so user-defined errors can opt into
the retry path without touching this module.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library.

    ``transient`` classifies the error for the resilience layer: ``True``
    means a retry of the same work may succeed (the fault is not a
    property of the program), ``False`` means retrying is pointless.
    """

    #: Retryable?  Overridden by transient subclasses; see :func:`is_transient`.
    transient = False


class LatticeError(ReproError):
    """A security lattice is malformed or was used incorrectly."""


class CycleError(LatticeError):
    """The declared ordering contains a cycle (violates antisymmetry)."""


class UnknownLevelError(LatticeError):
    """A security level was referenced that the lattice does not declare."""


class NotALatticeError(LatticeError):
    """The partial order lacks a required least upper / greatest lower bound."""


class MLSError(ReproError):
    """Base class for MLS relational model errors."""


class SchemaError(MLSError):
    """A relation scheme is malformed or a tuple does not match it."""


class IntegrityError(MLSError):
    """An MLS integrity property (entity/null/polyinstantiation) is violated."""


class AccessDeniedError(MLSError):
    """A subject attempted an access forbidden by Bell-LaPadula."""


class BeliefError(MLSError):
    """A belief-view computation was refused (e.g. the cautious
    maximal-cell combination count exceeds the configured cap)."""


class BudgetExceededError(ReproError):
    """An :class:`~repro.obs.EvaluationBudget` limit was hit mid-evaluation.

    Structured so callers can degrade gracefully:

    * ``reason`` -- which limit tripped: ``"rows"``, ``"rounds"`` or
      ``"timeout"``;
    * ``spent`` -- the budget spend at the point of failure
      (``{"rows": ..., "rounds": ..., "elapsed_s": ...}``);
    * ``metrics`` -- the partial :class:`~repro.obs.EngineMetrics`
      snapshot, attached by ``evaluate`` / ``MultiLogSession.ask`` when a
      metrics collector was active (``None`` otherwise);
    * ``partial_database`` -- the facts derived before the abort, attached
      by ``evaluate`` so :class:`~repro.resilience.ResilientExecutor` can
      serve a :class:`~repro.resilience.PartialResult` (``None`` when the
      abort happened before any stratum ran).
    """

    def __init__(self, message: str, reason: str = "budget",
                 spent: dict | None = None, metrics: object | None = None):
        super().__init__(message)
        self.reason = reason
        self.spent = dict(spent or {})
        self.metrics = metrics
        self.partial_database: object | None = None


class ResilienceError(ReproError):
    """Base class for faults raised or detected by the resilience layer."""


class FaultInjectedError(ResilienceError):
    """An armed :class:`~repro.resilience.FaultPlan` fired at a span point.

    ``point`` names the span point the fault was injected at.  The base
    class is the *permanent* flavour; :class:`TransientFaultError` is the
    retryable one.
    """

    def __init__(self, message: str, point: str = ""):
        super().__init__(message)
        self.point = point


class TransientFaultError(FaultInjectedError):
    """An injected (or genuinely transient) fault; a retry may succeed."""

    transient = True


class DataCorruptionError(ResilienceError):
    """Corrupted state was *detected* (checksum mismatch, torn record).

    Transient for evaluation (recomputing from clean inputs may succeed);
    the journal layer raises it for torn non-final records, where replay
    stops instead of retrying.
    """

    transient = True


class StrategyFailureError(ResilienceError):
    """One evaluation strategy failed in a strategy-specific way.

    Signals the :class:`~repro.resilience.ResilientExecutor` to fall down
    the degradation ladder (``compiled -> seminaive -> naive``) rather
    than retry the same rung or give up.
    """

    def __init__(self, message: str, strategy: str = ""):
        super().__init__(message)
        self.strategy = strategy


class JournalError(ResilienceError):
    """The write-ahead journal could not be written, read or parsed."""


class ServingError(ResilienceError):
    """Base class for errors raised by the serving layer."""


class ProtocolError(ServingError):
    """A malformed request on the wire (bad framing, JSON, or fields).

    ``code`` is the stable machine-readable error code the server echoes
    back in the response (``bad-request``, ``line-too-long``, ...).
    """

    def __init__(self, message: str, code: str = "bad-request"):
        super().__init__(message)
        self.code = code


class OverloadedError(ServingError):
    """Admission control shed the request (server at capacity).

    Transient by design: the client may retry after backoff -- load
    shedding is a statement about *now*, not about the request.
    """

    transient = True


class RecoveryError(JournalError):
    """Journal replay produced a database that fails Def 5.3/5.4 checks."""

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


def is_transient(exc: BaseException) -> bool:
    """True when retrying the failed work may succeed.

    Library errors carry a ``transient`` class attribute; outside the
    hierarchy, interrupted system calls and timeouts (``InterruptedError``,
    ``TimeoutError``) are the only OS-level faults worth a retry.
    """
    flagged = getattr(exc, "transient", None)
    if flagged is not None:
        return bool(flagged)
    return isinstance(exc, (InterruptedError, TimeoutError))


class DatalogError(ReproError):
    """Base class for Datalog engine errors."""


class UnsafeRuleError(DatalogError):
    """A rule is not range-restricted (unsafe head or negated variables)."""


class PlanVerificationError(DatalogError):
    """A codegen'd join/batch plan failed static verification before exec.

    Raised by :mod:`repro.datalog.plan` when the plan verifier
    (:mod:`repro.analysis.planverify`) finds error-severity diagnostics
    (ML014/ML015) in a generated plan -- the compiled source never runs.
    ``report`` carries the full :class:`~repro.analysis.AnalysisReport`.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class StratificationError(DatalogError):
    """The program has negation that cannot be stratified."""


class MultiLogError(ReproError):
    """Base class for MultiLog language errors."""


class MultiLogSyntaxError(MultiLogError):
    """The MultiLog source text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AdmissibilityError(MultiLogError):
    """The database violates Definition 5.3 (admissibility)."""


class ConsistencyError(MultiLogError):
    """The database violates Definition 5.4 (consistency)."""


class UnknownModeError(MultiLogError):
    """A belief mode was used that is not declared in the session."""


class SessionBusyError(MultiLogError):
    """Concurrent use of one non-reentrant :class:`MultiLogSession`.

    A session carries per-ask state (trace recorder, metrics snapshot,
    engine caches mid-revalidation), so ``ask``/``assert_clause`` are
    single-flight: a second caller entering while one is in progress gets
    this error instead of silently corrupting the first caller's state.
    Concurrent callers should hold sessions exclusively -- the serving
    layer's :class:`~repro.serving.SessionPool` checkout discipline, or
    one :meth:`MultiLogSession.with_clearance` sibling per worker.
    """


class AnalysisError(MultiLogError):
    """Static analysis rejected the program before evaluation.

    Raised by lint-gated entry points (``MultiLogSession(lint=True)``,
    ``evaluate(..., analyze=True)``) when :mod:`repro.analysis` reports
    error-severity diagnostics.  ``report`` carries the full
    :class:`~repro.analysis.AnalysisReport` so callers can render every
    finding, not just the first.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class BeliefRecursionError(MultiLogError):
    """Belief recursion is not level-stratified (the fixpoint oscillates).

    Arises from m-clauses whose heads feed back into the beliefs their own
    bodies consult (e.g. a clause at level ``l`` depending on a cautious
    belief at a level dominating ``l``) -- the non-monotonic analogue of
    recursion through negation.
    """
