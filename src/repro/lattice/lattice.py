"""Finite security lattices (access-class partial orders).

The paper (Section 2) models access classes as a partial order -- in full
generality a lattice whose elements combine a hierarchy level with a
category set.  MultiLog (Section 5) only needs the abstract structure: a
finite set of labels ``S`` with a partial order induced by immediate
``order(l, h)`` cover edges (h-atoms) and ``level(s)`` declarations
(l-atoms).

:class:`SecurityLattice` is that structure.  It is immutable after
construction; dominance queries are answered from a precomputed transitive
closure, so ``leq`` is O(1).

Conventions (matching the paper):

* ``order(l, h)`` declares that ``l`` is *immediately below* ``h``.
* ``leq(a, b)`` is the paper's ``a`` :math:`\\preceq` ``b``;
  ``dominates(b, a)`` is the same fact viewed from above.
* ``lub``/``glb`` raise :class:`~repro.errors.NotALatticeError` when the
  bound does not exist or is not unique; use
  :meth:`minimal_upper_bounds` for partial orders that are not lattices.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import CycleError, NotALatticeError, UnknownLevelError

Level = str


class SecurityLattice:
    """A finite partial order of security levels.

    Parameters
    ----------
    levels:
        Every declared level (the paper's l-atoms).  Levels mentioned in
        ``orders`` are added implicitly.
    orders:
        Immediate ``(lower, higher)`` cover pairs (the paper's h-atoms).

    The declared order must be acyclic; reflexivity and transitivity are
    computed, not declared (the REFLEXIVITY / TRANSITIVITY proof rules of
    Figure 9).
    """

    __slots__ = ("_levels", "_covers", "_cover_pairs", "_descendants", "_frozen_key")

    def __init__(self, levels: Iterable[Level] = (), orders: Iterable[tuple[Level, Level]] = ()):
        self._levels: frozenset[Level] = frozenset()
        self._covers: dict[Level, frozenset[Level]] = {}
        self._cover_pairs: frozenset[tuple[Level, Level]] = frozenset()
        self._descendants: dict[Level, frozenset[Level]] = {}
        self._build(levels, orders)

    def _build(self, levels: Iterable[Level], orders: Iterable[tuple[Level, Level]]) -> None:
        order_pairs = [(str(lo), str(hi)) for lo, hi in orders]
        all_levels = set(str(level) for level in levels)
        for lo, hi in order_pairs:
            all_levels.add(lo)
            all_levels.add(hi)
        covers: dict[Level, set[Level]] = {level: set() for level in all_levels}
        for lo, hi in order_pairs:
            if lo == hi:
                raise CycleError(f"order({lo}, {hi}) relates a level to itself")
            covers[lo].add(hi)
        self._levels = frozenset(all_levels)
        self._covers = {level: frozenset(ups) for level, ups in covers.items()}
        self._cover_pairs = frozenset((lo, hi) for lo in covers for hi in covers[lo])
        self._descendants = self._transitive_closure()
        self._frozen_key = (self._levels, self._cover_pairs)

    def _transitive_closure(self) -> dict[Level, frozenset[Level]]:
        """Compute, for each level, the set of levels it is ``<=`` to.

        The result maps ``l`` to its principal up-set (including ``l``).
        A cycle in the cover graph is detected during the traversal.
        """
        up_sets: dict[Level, frozenset[Level]] = {}
        state: dict[Level, int] = {}  # 0 absent, 1 in progress, 2 done

        def visit(level: Level) -> frozenset[Level]:
            if state.get(level) == 2:
                return up_sets[level]
            if state.get(level) == 1:
                raise CycleError(f"level ordering contains a cycle through {level!r}")
            state[level] = 1
            reached = {level}
            for parent in self._covers[level]:
                reached.update(visit(parent))
            state[level] = 2
            up_sets[level] = frozenset(reached)
            return up_sets[level]

        for level in self._levels:
            visit(level)
        return up_sets

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def levels(self) -> frozenset[Level]:
        """All declared security levels."""
        return self._levels

    @property
    def cover_pairs(self) -> frozenset[tuple[Level, Level]]:
        """The immediate ``(lower, higher)`` pairs (paper's ``order/2`` facts)."""
        return self._cover_pairs

    def __contains__(self, level: object) -> bool:
        return level in self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[Level]:
        return iter(sorted(self._levels))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SecurityLattice):
            return NotImplemented
        return self._frozen_key == other._frozen_key

    def __hash__(self) -> int:
        return hash(self._frozen_key)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{lo}<{hi}" for lo, hi in sorted(self._cover_pairs))
        return f"SecurityLattice(levels={sorted(self._levels)}, orders=[{pairs}])"

    def check_level(self, level: Level) -> Level:
        """Return ``level`` if declared, else raise :class:`UnknownLevelError`."""
        if level not in self._levels:
            raise UnknownLevelError(f"security level {level!r} is not declared in the lattice")
        return level

    # ------------------------------------------------------------------
    # Order queries
    # ------------------------------------------------------------------
    def leq(self, low: Level, high: Level) -> bool:
        """The paper's ``low`` :math:`\\preceq` ``high`` (reflexive, transitive)."""
        self.check_level(low)
        self.check_level(high)
        return high in self._descendants[low]

    def lt(self, low: Level, high: Level) -> bool:
        """Strict dominance: ``low`` :math:`\\prec` ``high``."""
        return low != high and self.leq(low, high)

    def dominates(self, high: Level, low: Level) -> bool:
        """True when ``high`` dominates ``low`` (``low`` :math:`\\preceq` ``high``)."""
        return self.leq(low, high)

    def comparable(self, a: Level, b: Level) -> bool:
        """True when the two levels are related either way."""
        return self.leq(a, b) or self.leq(b, a)

    def up_set(self, level: Level) -> frozenset[Level]:
        """Every level that dominates ``level`` (including itself)."""
        self.check_level(level)
        return self._descendants[level]

    def down_set(self, level: Level) -> frozenset[Level]:
        """Every level dominated by ``level`` (including itself).

        This is exactly the set of tuple classes visible to a subject
        cleared at ``level`` under the simple security property.
        """
        self.check_level(level)
        return frozenset(lo for lo in self._levels if level in self._descendants[lo])

    def strict_down_set(self, level: Level) -> frozenset[Level]:
        """Every level strictly dominated by ``level``."""
        return self.down_set(level) - {level}

    # ------------------------------------------------------------------
    # Extremes and bounds
    # ------------------------------------------------------------------
    def maximal(self, subset: Iterable[Level]) -> frozenset[Level]:
        """The maximal elements of ``subset`` under the lattice order."""
        members = [self.check_level(level) for level in set(subset)]
        return frozenset(
            a for a in members if not any(self.lt(a, b) for b in members if b != a)
        )

    def minimal(self, subset: Iterable[Level]) -> frozenset[Level]:
        """The minimal elements of ``subset`` under the lattice order."""
        members = [self.check_level(level) for level in set(subset)]
        return frozenset(
            a for a in members if not any(self.lt(b, a) for b in members if b != a)
        )

    def tops(self) -> frozenset[Level]:
        """The maximal levels of the whole order."""
        return self.maximal(self._levels)

    def bottoms(self) -> frozenset[Level]:
        """The minimal levels of the whole order."""
        return self.minimal(self._levels)

    def minimal_upper_bounds(self, levels: Iterable[Level]) -> frozenset[Level]:
        """Minimal common upper bounds of ``levels`` (may be several)."""
        members = [self.check_level(level) for level in levels]
        if not members:
            return self.bottoms()
        common: set[Level] = set(self._descendants[members[0]])
        for level in members[1:]:
            common &= self._descendants[level]
        return self.minimal(common)

    def maximal_lower_bounds(self, levels: Iterable[Level]) -> frozenset[Level]:
        """Maximal common lower bounds of ``levels`` (may be several)."""
        members = [self.check_level(level) for level in levels]
        if not members:
            return self.tops()
        common: set[Level] = set(self.down_set(members[0]))
        for level in members[1:]:
            common &= self.down_set(level)
        return self.maximal(common)

    def lub(self, *levels: Level) -> Level:
        """The least upper bound (the paper's ``lub``); raises if non-unique."""
        bounds = self.minimal_upper_bounds(levels)
        if len(bounds) != 1:
            raise NotALatticeError(
                f"levels {sorted(levels)} have {len(bounds)} minimal upper bounds: "
                f"{sorted(bounds)}"
            )
        return next(iter(bounds))

    def glb(self, *levels: Level) -> Level:
        """The greatest lower bound; raises if non-unique."""
        bounds = self.maximal_lower_bounds(levels)
        if len(bounds) != 1:
            raise NotALatticeError(
                f"levels {sorted(levels)} have {len(bounds)} maximal lower bounds: "
                f"{sorted(bounds)}"
            )
        return next(iter(bounds))

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    def is_chain(self) -> bool:
        """True when the order is total (every pair comparable)."""
        ordered = sorted(self._levels)
        return all(
            self.comparable(a, b)
            for i, a in enumerate(ordered)
            for b in ordered[i + 1:]
        )

    def is_lattice(self) -> bool:
        """True when every pair has a unique lub and a unique glb."""
        ordered = sorted(self._levels)
        for i, a in enumerate(ordered):
            for b in ordered[i:]:
                if len(self.minimal_upper_bounds((a, b))) != 1:
                    return False
                if len(self.maximal_lower_bounds((a, b))) != 1:
                    return False
        return bool(ordered)

    def incomparable_pairs(self) -> frozenset[tuple[Level, Level]]:
        """All unordered incomparable pairs, each reported as a sorted tuple."""
        ordered = sorted(self._levels)
        pairs = set()
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if not self.comparable(a, b):
                    pairs.add((a, b))
        return frozenset(pairs)

    def topological(self) -> list[Level]:
        """Levels ordered bottom-up (every level after all it dominates).

        Ties are broken alphabetically so the result is deterministic.
        """
        indegree = {level: 0 for level in self._levels}
        for _lo, hi in self._cover_pairs:
            indegree[hi] += 1
        ready = deque(sorted(level for level, deg in indegree.items() if deg == 0))
        result: list[Level] = []
        while ready:
            level = ready.popleft()
            result.append(level)
            newly_ready = []
            for parent in self._covers[level]:
                indegree[parent] -= 1
                if indegree[parent] == 0:
                    newly_ready.append(parent)
            for parent in sorted(newly_ready):
                ready.append(parent)
        return result

    def interval(self, low: Level, high: Level) -> frozenset[Level]:
        """The sub-lattice range ``[low, high]`` used for attribute domains."""
        if not self.leq(low, high):
            raise NotALatticeError(f"[{low}, {high}] is empty: {low!r} is not below {high!r}")
        return self.up_set(low) & self.down_set(high)
