"""Constructors for the lattice shapes used throughout the paper and benches.

The paper works with the military chain U < C < S < T (Section 2) and
repeatedly notes that everything generalizes to partial orders; categories
turn the chain into a product lattice.  The benchmark workloads sweep over
chains, diamonds, powerset-of-categories products, and random lattices.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Sequence

from repro.lattice.lattice import Level, SecurityLattice


def chain(levels: Sequence[Level]) -> SecurityLattice:
    """A totally ordered lattice, lowest level first.

    >>> chain(["u", "c", "s", "t"]).leq("u", "t")
    True
    """
    if not levels:
        raise ValueError("a chain needs at least one level")
    orders = [(levels[i], levels[i + 1]) for i in range(len(levels) - 1)]
    return SecurityLattice(levels, orders)


def military_chain() -> SecurityLattice:
    """The paper's running lattice: Unclassified < Classified < Secret < TopSecret."""
    return chain(["u", "c", "s", "t"])


def diamond(bottom: Level = "lo", left: Level = "a", right: Level = "b", top: Level = "hi") -> SecurityLattice:
    """The four-point diamond: the smallest order with incomparable levels.

    Cautious belief over a diamond exercises the paper's "multiple
    incomparable sources" case (Section 3.1).
    """
    return SecurityLattice(
        [bottom, left, right, top],
        [(bottom, left), (bottom, right), (left, top), (right, top)],
    )


def antichain_with_bounds(middles: Sequence[Level], bottom: Level = "lo", top: Level = "hi") -> SecurityLattice:
    """``bottom`` below ``len(middles)`` mutually incomparable levels below ``top``."""
    if not middles:
        raise ValueError("need at least one middle level")
    orders = [(bottom, m) for m in middles] + [(m, top) for m in middles]
    return SecurityLattice([bottom, top, *middles], orders)


def product(left: SecurityLattice, right: SecurityLattice, sep: str = "*") -> SecurityLattice:
    """The product order; labels are ``f"{a}{sep}{b}"``.

    ``(a1, b1) <= (a2, b2)`` iff ``a1 <= a2`` and ``b1 <= b2`` -- exactly
    the access-class order of Section 2 when the right factor is a
    powerset-of-categories lattice.
    """
    labels = {
        (a, b): f"{a}{sep}{b}" for a in left.levels for b in right.levels
    }
    orders = []
    for (a, b), label in labels.items():
        for a2 in left.levels:
            if (a, a2) in left.cover_pairs:
                orders.append((label, labels[(a2, b)]))
        for b2 in right.levels:
            if (b, b2) in right.cover_pairs:
                orders.append((label, labels[(a, b2)]))
    return SecurityLattice(labels.values(), orders)


def category_lattice(categories: Iterable[str], empty_label: str = "none", sep: str = "+") -> SecurityLattice:
    """The powerset of ``categories`` ordered by inclusion.

    The empty set is labelled ``empty_label``; other sets join their sorted
    members with ``sep`` (e.g. ``army+navy``).
    """
    cats = sorted(set(categories))

    def label(subset: tuple[str, ...]) -> str:
        return sep.join(subset) if subset else empty_label

    subsets = [
        tuple(sorted(combo))
        for size in range(len(cats) + 1)
        for combo in itertools.combinations(cats, size)
    ]
    orders = []
    for subset in subsets:
        present = set(subset)
        for extra in cats:
            if extra not in present:
                bigger = tuple(sorted(present | {extra}))
                orders.append((label(subset), label(bigger)))
    return SecurityLattice([label(s) for s in subsets], orders)


def access_class_lattice(hierarchy: Sequence[Level], categories: Iterable[str]) -> SecurityLattice:
    """Full Bell-LaPadula access classes: hierarchy level x category set."""
    return product(chain(hierarchy), category_lattice(categories), sep="/")


def random_lattice(n_levels: int, edge_probability: float = 0.3, seed: int | None = None,
                   prefix: str = "l") -> SecurityLattice:
    """A random partial order on ``n_levels`` levels with a guaranteed bottom.

    Levels are ``l0 .. l{n-1}``; edges only go from lower to higher index,
    so the result is always acyclic.  ``l0`` is placed below every other
    level so the order is connected (mirrors "system low").
    """
    if n_levels < 1:
        raise ValueError("need at least one level")
    rng = random.Random(seed)
    names = [f"{prefix}{i}" for i in range(n_levels)]
    orders: list[tuple[Level, Level]] = []
    for j in range(1, n_levels):
        parents = [i for i in range(j) if rng.random() < edge_probability]
        if not parents:
            parents = [0]
        orders.extend((names[i], names[j]) for i in parents)
    return SecurityLattice(names, orders)
