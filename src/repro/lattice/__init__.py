"""Security lattices: the access-class partial orders of Section 2.

Public surface:

* :class:`~repro.lattice.lattice.SecurityLattice` -- the order itself.
* :mod:`~repro.lattice.builders` -- chains, diamonds, products,
  category powersets, random orders.
* :mod:`~repro.lattice.parse` -- ``"u < c < s"`` / ``order(u, c).`` parsing.
"""

from repro.lattice.builders import (
    access_class_lattice,
    antichain_with_bounds,
    category_lattice,
    chain,
    diamond,
    military_chain,
    product,
    random_lattice,
)
from repro.lattice.lattice import Level, SecurityLattice
from repro.lattice.parse import format_facts, parse_chain_spec, parse_fact_spec, parse_lattice

__all__ = [
    "Level",
    "SecurityLattice",
    "access_class_lattice",
    "antichain_with_bounds",
    "category_lattice",
    "chain",
    "diamond",
    "format_facts",
    "military_chain",
    "parse_chain_spec",
    "parse_fact_spec",
    "parse_lattice",
    "product",
    "random_lattice",
]
