"""Textual lattice specifications.

Two small formats are supported:

* **chain syntax** -- ``"u < c < s < t"`` declares a total order; several
  chains may be separated by ``;`` and share levels, which is enough to
  draw any finite Hasse diagram:

  ``"lo < a < hi; lo < b < hi"`` is the diamond.

* **fact syntax** -- the paper's own l-/h-atom notation, one fact per
  line or separated by ``.``: ``level(u). order(u, c).``

:func:`parse_lattice` auto-detects the format.
"""

from __future__ import annotations

import re

from repro.errors import LatticeError
from repro.lattice.lattice import Level, SecurityLattice

_NAME = r"[A-Za-z_][A-Za-z0-9_+/*-]*"
_LEVEL_FACT = re.compile(rf"level\(\s*({_NAME})\s*\)")
_ORDER_FACT = re.compile(rf"order\(\s*({_NAME})\s*,\s*({_NAME})\s*\)")


def parse_chain_spec(text: str) -> SecurityLattice:
    """Parse ``"a < b < c; a < d < c"`` into a lattice."""
    levels: set[Level] = set()
    orders: list[tuple[Level, Level]] = []
    for chain_text in text.split(";"):
        chain_text = chain_text.strip()
        if not chain_text:
            continue
        names = [name.strip() for name in chain_text.split("<")]
        if any(not re.fullmatch(_NAME, name) for name in names):
            raise LatticeError(f"bad level name in chain spec: {chain_text!r}")
        levels.update(names)
        orders.extend((names[i], names[i + 1]) for i in range(len(names) - 1))
    if not levels:
        raise LatticeError("empty lattice specification")
    return SecurityLattice(levels, orders)


def parse_fact_spec(text: str) -> SecurityLattice:
    """Parse ``level(u). order(u, c).`` style declarations into a lattice."""
    levels = [match.group(1) for match in _LEVEL_FACT.finditer(text)]
    orders = [(m.group(1), m.group(2)) for m in _ORDER_FACT.finditer(text)]
    if not levels and not orders:
        raise LatticeError("no level/order facts found in specification")
    return SecurityLattice(levels, orders)


def parse_lattice(text: str) -> SecurityLattice:
    """Parse either supported lattice syntax (auto-detected)."""
    if "level(" in text or "order(" in text:
        return parse_fact_spec(text)
    return parse_chain_spec(text)


def format_facts(lattice: SecurityLattice) -> str:
    """Render a lattice back into the paper's l-/h-atom fact syntax."""
    lines = [f"level({level})." for level in sorted(lattice.levels)]
    lines += [f"order({lo}, {hi})." for lo, hi in sorted(lattice.cover_pairs)]
    return "\n".join(lines)
