"""A minimal HTTP/1.1 shim over the MultiLog server.

Some callers (dashboards, load balancers, ``curl``) prefer HTTP to a
framed socket protocol.  This module serves the same dispatch as the
framed protocol over a deliberately tiny, dependency-free HTTP/1.1
subset -- enough for request/response JSON with ``Content-Length``
bodies, nothing more (no chunked encoding, no keep-alive)::

    POST /v1/ask      {"query": "...", "engine": "...", "clearance": "..."}
    POST /v1/assert   {"clause": "...", "strict": false, "clearance": "..."}
    GET  /metrics     Prometheus text exposition (the serving dashboard)
    GET  /v1/audit    the server-wide audit trail as JSON
    GET  /healthz     liveness: {"ok": true, "version": N}

Error codes map onto HTTP status: ``shed`` -> 503 (with ``Retry-After``),
``bad-request``/``bad-query``/``bad-clearance``/``unknown-op`` -> 400,
``rejected`` -> 409, ``busy`` -> 503, ``internal`` -> 500.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ProtocolError
from repro.serving.protocol import decode_request

#: protocol error code -> HTTP status line.
STATUS_FOR_CODE = {
    "bad-request": "400 Bad Request",
    "line-too-long": "413 Payload Too Large",
    "unknown-op": "400 Bad Request",
    "bad-clearance": "400 Bad Request",
    "bad-query": "400 Bad Request",
    "rejected": "409 Conflict",
    "shed": "503 Service Unavailable",
    "busy": "503 Service Unavailable",
    "internal": "500 Internal Server Error",
}

#: route table: (method, path) -> the protocol op the body parameterizes.
ROUTES = {
    ("POST", "/v1/ask"): "ask",
    ("POST", "/v1/assert"): "assert",
    ("GET", "/v1/audit"): "audit",
    ("GET", "/v1/hello"): "hello",
}

_MAX_HEADER_BYTES = 16 * 1024


def _response_bytes(status: str, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: tuple[tuple[str, str], ...] = ()) -> bytes:
    head = [f"HTTP/1.1 {status}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, default=repr) + "\n").encode("utf-8")


async def _read_request(reader: asyncio.StreamReader):
    """Parse request line, headers and (length-framed) body."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 3:
        raise ProtocolError(f"malformed HTTP request line: {request_line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError("HTTP headers too large", code="line-too-long")
        if not line.strip():
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def handle_http_connection(server, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
    """Serve one HTTP request on a fresh connection, then close it."""
    server.stats.connections_total += 1
    server.stats.connections += 1
    try:
        try:
            parsed = await _read_request(reader)
        except ProtocolError as exc:
            writer.write(_response_bytes(
                STATUS_FOR_CODE.get(exc.code, "400 Bad Request"),
                _json_body({"ok": False, "code": exc.code, "error": str(exc)})))
            await writer.drain()
            return
        except (asyncio.IncompleteReadError, ValueError) as exc:
            writer.write(_response_bytes(
                "400 Bad Request",
                _json_body({"ok": False, "code": "bad-request",
                            "error": f"malformed HTTP request: {exc}"})))
            await writer.drain()
            return
        if parsed is None:
            return
        method, path, _headers, body = parsed
        writer.write(await _route(server, method, path, body))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        server.stats.disconnects_total += 1
    finally:
        server.stats.connections -= 1
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            pass


async def _route(server, method: str, path: str, body: bytes) -> bytes:
    if (method, path) == ("GET", "/healthz"):
        return _response_bytes("200 OK", _json_body(
            {"ok": True, "version": server.root.database.version}))
    if (method, path) == ("GET", "/metrics"):
        return _response_bytes("200 OK", server.metrics_text().encode("utf-8"),
                               content_type="text/plain; version=0.0.4")
    op = ROUTES.get((method, path))
    if op is None:
        return _response_bytes("404 Not Found", _json_body(
            {"ok": False, "code": "bad-request",
             "error": f"no route for {method} {path}"}))
    payload: dict = {"op": op}
    if body:
        try:
            fields = json.loads(body)
        except ValueError as exc:
            return _response_bytes("400 Bad Request", _json_body(
                {"ok": False, "code": "bad-request",
                 "error": f"body is not valid JSON: {exc}"}))
        if not isinstance(fields, dict):
            return _response_bytes("400 Bad Request", _json_body(
                {"ok": False, "code": "bad-request",
                 "error": "body must be a JSON object"}))
        fields.pop("op", None)
        payload.update(fields)
    try:
        request = decode_request(json.dumps(payload))
    except ProtocolError as exc:
        return _response_bytes(
            STATUS_FOR_CODE.get(exc.code, "400 Bad Request"),
            _json_body({"ok": False, "code": exc.code, "error": str(exc)}))
    response = await server.dispatch(request)
    if response.get("ok"):
        return _response_bytes("200 OK", _json_body(response))
    status = STATUS_FOR_CODE.get(response.get("code", "internal"),
                                 "500 Internal Server Error")
    extra = (("Retry-After", "1"),) if response.get("code") == "shed" else ()
    return _response_bytes(status, _json_body(response), extra_headers=extra)
