"""A minimal HTTP/1.1 shim over the MultiLog server.

Some callers (dashboards, load balancers, ``curl``) prefer HTTP to a
framed socket protocol.  This module serves the same dispatch as the
framed protocol over a deliberately tiny, dependency-free HTTP/1.1
subset -- request/response JSON with ``Content-Length`` bodies and
**persistent connections**: HTTP/1.1 keep-alive is the default, and
because requests are read back-to-back off one stream, a client that
pipelines several requests gets its responses in order.  ``Connection:
close`` (or HTTP/1.0 without ``Connection: keep-alive``) is honored and
closes after the response.  No chunked encoding::

    POST /v1/ask      {"query": "...", "engine": "...", "timeout_s": 1.5}
    POST /v1/assert   {"clause": "...", "strict": false, "clearance": "..."}
    GET  /metrics     Prometheus text exposition (the serving dashboard)
    GET  /v1/audit    the server-wide audit trail as JSON
    GET  /v1/debug/slow?limit=N   captured slow/errored requests, redacted
                      at the requesting clearance (docs/OBSERVABILITY.md)
    GET  /healthz     {"ok": true, "status": "healthy|degraded|draining",
                       "slo": {...burn rates...}, ...}

A ``traceparent`` request header on ``/v1/ask`` and ``/v1/assert`` is
forwarded into the protocol request, so HTTP callers join server-side
traces exactly like framed-protocol callers; the response echoes the
adopted ``trace_id``.

Error codes map onto HTTP status: ``shed``/``quota`` -> 503/429 (with
``Retry-After``), ``deadline`` -> 504, ``cancelled`` -> 499,
``breaker-open``/``draining``/``busy`` -> 503, ``bad-*`` -> 400,
``rejected`` -> 409, ``internal`` -> 500.  ``/healthz`` answers 200
while ``healthy``/``degraded`` and 503 once the server is draining, so
load balancers stop routing to a replica that is shutting down.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import unquote_plus

from repro.errors import ProtocolError
from repro.serving.protocol import decode_request

#: protocol error code -> HTTP status line.
STATUS_FOR_CODE = {
    "bad-request": "400 Bad Request",
    "line-too-long": "413 Payload Too Large",
    "unknown-op": "400 Bad Request",
    "bad-clearance": "400 Bad Request",
    "bad-query": "400 Bad Request",
    "rejected": "409 Conflict",
    "shed": "503 Service Unavailable",
    "quota": "429 Too Many Requests",
    "deadline": "504 Gateway Timeout",
    "cancelled": "499 Client Closed Request",
    "breaker-open": "503 Service Unavailable",
    "draining": "503 Service Unavailable",
    "busy": "503 Service Unavailable",
    "internal": "500 Internal Server Error",
}

#: route table: (method, path) -> the protocol op the body parameterizes.
ROUTES = {
    ("POST", "/v1/ask"): "ask",
    ("POST", "/v1/assert"): "assert",
    ("GET", "/v1/audit"): "audit",
    ("GET", "/v1/hello"): "hello",
    ("GET", "/v1/debug/slow"): "slowlog",
}

_MAX_HEADER_BYTES = 16 * 1024

#: requests served on one keep-alive connection before the server closes
#: it anyway (bounds how long a slow-loris client can pin a handler).
MAX_KEEPALIVE_REQUESTS = 1000


def _response_bytes(status: str, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: tuple[tuple[str, str], ...] = (),
                    close: bool = False) -> bytes:
    head = [f"HTTP/1.1 {status}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}"]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, default=repr) + "\n").encode("utf-8")


async def _read_request(reader: asyncio.StreamReader):
    """Parse request line, headers and (length-framed) body."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 3:
        raise ProtocolError(f"malformed HTTP request line: {request_line!r}")
    method, path, version = parts[0].upper(), parts[1], parts[2].upper()
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError("HTTP headers too large", code="line-too-long")
        if not line.strip():
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return method, path, version, headers, body


def _wants_close(version: str, headers: dict[str, str]) -> bool:
    """Honor ``Connection: close``; HTTP/1.0 closes unless asked not to."""
    connection = headers.get("connection", "").lower()
    if "close" in connection:
        return True
    if version == "HTTP/1.0":
        return "keep-alive" not in connection
    return False


async def handle_http_connection(server, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
    """Serve HTTP requests on one connection until it closes.

    Keep-alive by default: the loop reads the next request off the same
    stream after each response.  A protocol error, ``Connection:
    close``, EOF or the keep-alive cap ends the connection.
    """
    server.stats.connections_total += 1
    server.stats.connections += 1
    try:
        for _served in range(MAX_KEEPALIVE_REQUESTS):
            try:
                parsed = await _read_request(reader)
            except ProtocolError as exc:
                writer.write(_response_bytes(
                    STATUS_FOR_CODE.get(exc.code, "400 Bad Request"),
                    _json_body({"ok": False, "code": exc.code,
                                "error": str(exc)}),
                    close=True))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ValueError) as exc:
                writer.write(_response_bytes(
                    "400 Bad Request",
                    _json_body({"ok": False, "code": "bad-request",
                                "error": f"malformed HTTP request: {exc}"}),
                    close=True))
                await writer.drain()
                return
            if parsed is None:
                return  # peer closed (or sent a bare blank line)
            method, path, version, headers, body = parsed
            # The last permitted request must *advertise* the close: a
            # keep-alive header followed by a silent hangup would reset
            # clients that pipeline or reuse the connection as told.
            close = (_wants_close(version, headers)
                     or _served == MAX_KEEPALIVE_REQUESTS - 1)
            writer.write(await _route(server, method, path, body,
                                      headers=headers, close=close))
            await writer.drain()
            if close:
                return
    except (ConnectionResetError, BrokenPipeError):
        server.stats.disconnects_total += 1
    finally:
        server.stats.connections -= 1
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            pass


async def _route(server, method: str, path: str, body: bytes,
                 headers: dict[str, str] | None = None,
                 close: bool = False) -> bytes:
    headers = headers if headers is not None else {}
    path, _, query_string = path.partition("?")
    if (method, path) == ("GET", "/healthz"):
        health = server.health
        status = "200 OK" if health != "draining" else "503 Service Unavailable"
        body_fields = {"ok": health != "draining", "status": health,
                       "version": server.root.database.version}
        if server.stats.slo is not None:
            body_fields["slo"] = {"target": server.stats.slo.target,
                                  "ops": server.stats.slo.detail()}
        return _response_bytes(status, _json_body(body_fields), close=close)
    if (method, path) == ("GET", "/metrics"):
        return _response_bytes("200 OK", server.metrics_text().encode("utf-8"),
                               content_type="text/plain; version=0.0.4",
                               close=close)
    op = ROUTES.get((method, path))
    if op is None:
        return _response_bytes("404 Not Found", _json_body(
            {"ok": False, "code": "bad-request",
             "error": f"no route for {method} {path}"}), close=close)
    payload: dict = {"op": op}
    if query_string:
        for pair in query_string.split("&"):
            if not pair:
                continue
            name, _, value = pair.partition("=")
            name = unquote_plus(name)
            value = unquote_plus(value)
            # limit is the one integer query parameter; everything else
            # (clearance, engine) rides through as a string.
            payload[name] = int(value) if (name == "limit"
                                           and value.isdigit()) else value
    traceparent = headers.get("traceparent")
    if traceparent is not None and op in ("ask", "assert"):
        payload["traceparent"] = traceparent
    if body:
        try:
            fields = json.loads(body)
        except ValueError as exc:
            return _response_bytes("400 Bad Request", _json_body(
                {"ok": False, "code": "bad-request",
                 "error": f"body is not valid JSON: {exc}"}), close=close)
        if not isinstance(fields, dict):
            return _response_bytes("400 Bad Request", _json_body(
                {"ok": False, "code": "bad-request",
                 "error": "body must be a JSON object"}), close=close)
        fields.pop("op", None)
        payload.update(fields)
    try:
        request = decode_request(json.dumps(payload))
    except ProtocolError as exc:
        return _response_bytes(
            STATUS_FOR_CODE.get(exc.code, "400 Bad Request"),
            _json_body({"ok": False, "code": exc.code, "error": str(exc)}),
            close=close)
    response = await server.dispatch(request)
    if response.get("ok"):
        return _response_bytes("200 OK", _json_body(response), close=close)
    status = STATUS_FOR_CODE.get(response.get("code", "internal"),
                                 "500 Internal Server Error")
    retry_after = response.get("retry_after")
    extra = ((("Retry-After", f"{max(1, round(retry_after))}"),)
             if retry_after is not None else ())
    return _response_bytes(status, _json_body(response), extra_headers=extra,
                           close=close)
