"""Per-operation circuit breakers for the serving layer.

A :class:`CircuitBreaker` tracks consecutive *server-side* failures of
one operation family (``ask`` or ``assert``) and fails fast once the
operation is evidently broken -- a journal on a full disk, an engine
bug tripping on every request -- instead of letting every client burn
an admission slot, a pooled session and a worker thread to rediscover
the same failure.

Classic three-state machine:

* **closed** -- requests flow; ``failures`` counts the current run of
  consecutive failures, any success resets it.  At ``threshold``
  consecutive failures the breaker opens.
* **open** -- requests are rejected immediately with ``breaker-open``
  (clients retry after ``retry_after``); after ``reset_s`` seconds the
  breaker moves to half-open.
* **half-open** -- exactly one probe request is admitted.  Success
  closes the breaker; failure reopens it for another ``reset_s``; a
  probe that ends without a verdict on the server's health (shed,
  client error, client deadline/disconnect) **releases** the slot so
  the next request can probe -- otherwise the slot would leak and the
  breaker would reject everything forever.

Client-caused errors (bad query, bad clearance, budget/deadline of the
*request*) never count: they say nothing about the server's health.
The server decides what to record -- see ``MultiLogServer._breaker_for``.

The breaker lives on the event loop (single-threaded by construction),
so there are no locks; state transitions happen in ``allow()`` /
``record_*``, and the ``state`` property computes open->half-open lazily
from the injected clock (tests pass a fake clock, no sleeps).
"""

from __future__ import annotations

from time import monotonic
from typing import Callable

#: stable gauge encoding for Prometheus: closed=0, half-open=1, open=2.
STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes."""

    def __init__(self, threshold: int = 8, reset_s: float = 5.0,
                 clock: Callable[[], float] = monotonic):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self.failures = 0  # current consecutive-failure run
        self.opened_total = 0  # times the breaker tripped open (ever)
        self._opened_at: float | None = None  # None = closed
        self._probing = False  # the single half-open probe is out

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing or self._clock() - self._opened_at >= self.reset_s:
            return "half-open"
        return "open"

    @property
    def probing(self) -> bool:
        """Is the single half-open probe currently out?

        Read right after a successful :meth:`allow` this tells the caller
        whether *it* holds the probe slot -- the caller must then resolve
        the probe on every exit path (``record_success`` /
        ``record_failure`` / :meth:`release_probe`).
        """
        return self._probing

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def retry_after(self) -> float:
        """Seconds until the breaker will admit a probe (0 when it would)."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.reset_s - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """May one request proceed right now?

        In half-open state the first ``allow()`` claims the single probe
        slot; further requests are rejected until the probe reports back.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """The admitted request succeeded: close (or stay closed)."""
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def release_probe(self) -> None:
        """Return the probe slot without a verdict on the server's health.

        The probe request can end in ways that say nothing about the
        server -- shed by admission control, a bad query, the client's
        own deadline or disconnect.  Counting those as success would
        close the breaker on no evidence; counting them as failure would
        punish the server for its clients; recording *nothing* would
        leak the probe slot and wedge the breaker in half-open forever.
        Releasing keeps the breaker half-open and lets the next request
        claim a fresh probe.  No-op unless a probe is out.
        """
        self._probing = False

    def record_failure(self) -> None:
        """The admitted request failed server-side: count, maybe trip."""
        if self._probing:
            # The half-open probe failed: reopen for a fresh reset window.
            self._probing = False
            self._opened_at = self._clock()
            self.opened_total += 1
            return
        self.failures += 1
        if self._opened_at is None and self.failures >= self.threshold:
            self._opened_at = self._clock()
            self.opened_total += 1

    def describe(self) -> str:
        return (f"{self.state} (failures={self.failures}/{self.threshold}, "
                f"opened {self.opened_total}x)")
