"""The wire protocol of the MultiLog server: newline-framed JSON.

One request per line, one response per line, UTF-8 JSON objects framed
by ``\\n`` -- the simplest protocol a shell script, ``nc`` or any
language's socket library can speak::

    -> {"id": 1, "op": "hello", "clearance": "s"}
    <- {"id": 1, "ok": true, "server": "multilog-serving/1", ...}
    -> {"id": 2, "op": "ask", "query": "s[p(K : a -C-> V)] << cau"}
    <- {"id": 2, "ok": true, "answers": [...], "version": 4, "complete": true}
    -> {"id": 3, "op": "assert", "clause": "u[p(k2 : a -u-> 7)]."}
    <- {"id": 3, "ok": true, "version": 5}

Requests
--------

Every request is a JSON object with an ``op`` from :data:`OPS` and an
optional client-chosen ``id`` echoed verbatim in the response (so
pipelined requests can be matched up).  Optional ``clearance`` selects
the security level the operation runs at; ``hello`` pins a default for
the connection.

========  ===========================================================
op        fields
========  ===========================================================
hello     ``clearance?`` -- set the connection's default clearance;
          ``timeout_s?`` -- default deadline for this connection
ping      liveness probe; echoes the server version counter + health
ask       ``query`` (required), ``engine?`` (operational|reduction),
          ``clearance?``, ``timeout_s?`` (per-request deadline),
          ``traceparent?`` (W3C trace context to join)
assert    ``clause`` (required), ``strict?`` (Def 5.4 gate),
          ``clearance?``, ``timeout_s?``, ``traceparent?``
metrics   Prometheus text exposition of the serving dashboard
audit     the server-wide MLS audit trail as structured events
slowlog   ``limit?`` -- newest captured slow/errored requests, redacted
          at the requesting clearance (docs/OBSERVABILITY.md)
========  ===========================================================

Deadlines: ``timeout_s`` on ``hello`` pins a per-connection default;
``timeout_s`` on an individual ``ask``/``assert`` overrides it for that
request.  The deadline propagates into the evaluation budget, so an
overrunning ask is aborted *inside* the engine and answered with code
``deadline``; a client that disconnects mid-ask gets its evaluation
cancelled (``cancelled``) instead of burning a worker thread.

Trace context: ``traceparent`` on ``ask``/``assert`` carries a W3C-style
``00-<trace id>-<span id>-<flags>`` header value; the server adopts the
trace id for its per-request root span and echoes it as ``trace_id`` in
the response, so a client span tree and the server-side capture join up.
A structurally invalid ``traceparent`` is a ``bad-request`` -- tracing
headers are validated like any other field, not silently dropped.

Responses
---------

``{"id": ..., "ok": true, ...}`` on success.  On failure ``ok`` is
false and ``code`` carries a stable machine-readable error code from
:data:`ERROR_CODES`; ``error`` is the human-readable message.  An ask
served degraded under load keeps ``ok: true`` but reports
``complete: false`` and ``degraded`` (the rung/reason that served it)
-- partial answers are an answer, not an error (docs/SERVING.md).
Transient rejections (``shed``, ``quota``, ``breaker-open``,
``draining``) carry a ``retry_after`` hint in seconds, mirroring the
HTTP shim's ``Retry-After`` header.

Framing limits: a request line longer than :data:`MAX_LINE_BYTES` is
rejected with ``line-too-long`` and the connection is closed (an
unframed peer would otherwise stall the reader forever).
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError
from repro.obs.trace import parse_traceparent

#: protocol identifier sent in every ``hello`` response.
PROTOCOL_VERSION = "multilog-serving/1"

#: request operations the server understands.
OPS = ("hello", "ping", "ask", "assert", "metrics", "audit", "slowlog")

#: stable machine-readable error codes.
#:
#: ==============  ====================================================
#: bad-request     unparseable or structurally invalid request
#: line-too-long   request line exceeded :data:`MAX_LINE_BYTES`
#: unknown-op      ``op`` not in :data:`OPS`
#: bad-clearance   ``clearance`` is not a level of the lattice
#: bad-query       the query/clause text failed to parse
#: rejected        the engine refused the operation (inadmissible
#:                 clause, unknown mode, budget exhausted, ...)
#: shed            admission control dropped the request (overload);
#:                 transient -- retry after ``retry_after`` seconds
#: quota           the per-clearance admission quota is exhausted;
#:                 transient -- retry after ``retry_after`` seconds
#: deadline        the request's ``timeout_s`` deadline passed before
#:                 the evaluation finished
#: cancelled       the client disconnected (or abandoned the request)
#:                 mid-evaluation, so the server cancelled it
#: breaker-open    the per-op circuit breaker is open after repeated
#:                 failures; transient -- retry after ``retry_after``
#: draining        the server is shutting down gracefully and no longer
#:                 admits work; retry against another replica
#: busy            the session layer reported concurrent use (should
#:                 not escape the pool; a report is a server bug)
#: internal        unexpected server-side failure
#: ==============  ====================================================
ERROR_CODES = ("bad-request", "line-too-long", "unknown-op", "bad-clearance",
               "bad-query", "rejected", "shed", "quota", "deadline",
               "cancelled", "breaker-open", "draining", "busy", "internal")

#: hard cap on one framed request line (1 MiB).
MAX_LINE_BYTES = 1 << 20

#: engines an ``ask`` may name.
ENGINES = ("operational", "reduction")


def encode_message(payload: dict) -> bytes:
    """One framed protocol message: compact JSON plus the newline."""
    return (json.dumps(payload, separators=(",", ":"), default=repr)
            + "\n").encode("utf-8")


def ok_response(request_id, **fields) -> dict:
    """A success response echoing ``request_id``."""
    out: dict = {"id": request_id, "ok": True}
    out.update(fields)
    return out


def error_response(request_id, code: str, message: str, **fields) -> dict:
    """A failure response with a stable ``code`` from :data:`ERROR_CODES`.

    Extra ``fields`` ride along verbatim -- transient rejections use
    this for the ``retry_after`` backoff hint.
    """
    if code not in ERROR_CODES:
        code = "internal"
    out = {"id": request_id, "ok": False, "code": code, "error": message}
    out.update(fields)
    return out


def decode_request(line: bytes | str) -> dict:
    """Parse and validate one framed request line.

    Raises :class:`~repro.errors.ProtocolError` (with the matching
    ``code``) on malformed input; the server turns that into an error
    response without touching the engine.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte frame limit", code="line-too-long")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        request = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}")
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; one of {', '.join(OPS)}",
                            code="unknown-op")
    clearance = request.get("clearance")
    if clearance is not None and not isinstance(clearance, str):
        raise ProtocolError("'clearance' must be a string level name")
    if op in ("hello", "ask", "assert"):
        timeout = request.get("timeout_s")
        if timeout is not None:
            # bool is an int subclass; reject it explicitly.
            if (isinstance(timeout, bool)
                    or not isinstance(timeout, (int, float))
                    or timeout <= 0):
                raise ProtocolError(
                    "'timeout_s' must be a positive number of seconds")
    if op in ("ask", "assert"):
        traceparent = request.get("traceparent")
        if traceparent is not None:
            if not isinstance(traceparent, str):
                raise ProtocolError("'traceparent' must be a string")
            try:
                parse_traceparent(traceparent)
            except ValueError as exc:
                raise ProtocolError(f"invalid traceparent: {exc}") from exc
    if op == "slowlog":
        limit = request.get("limit")
        if limit is not None:
            if (isinstance(limit, bool) or not isinstance(limit, int)
                    or limit <= 0):
                raise ProtocolError("'limit' must be a positive integer")
    if op == "ask":
        query = request.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ProtocolError("'ask' requires a non-empty 'query' string")
        engine = request.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ProtocolError(
                f"unknown engine {engine!r}; one of {', '.join(ENGINES)}")
    elif op == "assert":
        clause = request.get("clause")
        if not isinstance(clause, str) or not clause.strip():
            raise ProtocolError("'assert' requires a non-empty 'clause' string")
        strict = request.get("strict")
        if strict is not None and not isinstance(strict, bool):
            raise ProtocolError("'strict' must be a boolean")
    return request
