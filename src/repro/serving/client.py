"""An asyncio client for the framed MultiLog serving protocol.

Used by the test suite, the serving benchmark and the CI smoke driver;
it is also the reference implementation for anyone writing a client in
another language (the protocol is one JSON object per line in each
direction -- see :mod:`repro.serving.protocol`).

>>> client = await ServingClient.connect(host, port, clearance="s")
>>> answers = await client.ask("s[acct(K : balance -C-> V)] << cau")
>>> await client.assert_clause("u[acct(k2 : balance -u-> 7)].")
>>> await client.close()

``ask``/``assert_clause`` raise :class:`ServingCallError` on an error
response (carrying the machine-readable ``code``); ``request`` returns
the raw response dict for callers that want to handle shedding or
degradation themselves.
"""

from __future__ import annotations

import asyncio

from repro.errors import ProtocolError, ServingError
from repro.serving.protocol import MAX_LINE_BYTES, encode_message

import json


class ServingCallError(ServingError):
    """The server answered with an error response."""

    def __init__(self, message: str, code: str = "internal",
                 response: dict | None = None):
        super().__init__(message)
        self.code = code
        self.response = response if response is not None else {}


class ServingClient:
    """One framed-protocol connection to a :class:`MultiLogServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, clearance: str | None = None):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self.clearance = clearance
        self.hello: dict = {}

    @classmethod
    async def connect(cls, host: str, port: int,
                      clearance: str | None = None,
                      timeout_s: float | None = None) -> "ServingClient":
        """Open a connection and complete the ``hello`` handshake.

        ``timeout_s`` pins the connection's default deadline: every
        ask/assert on this connection inherits it unless the call names
        its own.
        """
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES + 2)
        client = cls(reader, writer, clearance)
        payload: dict = {"op": "hello"}
        if clearance is not None:
            payload["clearance"] = clearance
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        client.hello = await client.request(payload)
        if not client.hello.get("ok"):
            await client.close()
            raise ServingCallError(
                client.hello.get("error", "hello rejected"),
                code=client.hello.get("code", "internal"),
                response=client.hello)
        return client

    # ------------------------------------------------------------------
    async def request(self, payload: dict) -> dict:
        """Send one request, await its response (raw dict)."""
        if "id" not in payload:
            self._next_id += 1
            payload = {"id": self._next_id, **payload}
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection mid-request")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ProtocolError(f"non-object response: {response!r}")
        return response

    def _checked(self, response: dict) -> dict:
        if not response.get("ok"):
            raise ServingCallError(
                response.get("error", "server error"),
                code=response.get("code", "internal"), response=response)
        return response

    # ------------------------------------------------------------------
    async def ask(self, query: str, engine: str | None = None,
                  clearance: str | None = None,
                  timeout_s: float | None = None,
                  traceparent: str | None = None) -> list[dict]:
        """The answers of one ask (degraded partial answers included --
        check :meth:`ask_full` for the ``complete`` flag)."""
        return (await self.ask_full(query, engine, clearance,
                                    timeout_s, traceparent))["answers"]

    async def ask_full(self, query: str, engine: str | None = None,
                       clearance: str | None = None,
                       timeout_s: float | None = None,
                       traceparent: str | None = None) -> dict:
        """The full ask response (``answers``/``version``/``complete``).

        ``traceparent`` joins the request to a client-side trace: mint
        one with :func:`repro.obs.format_traceparent` and the server
        parents its request span under it, echoing ``trace_id``.
        """
        payload: dict = {"op": "ask", "query": query}
        if engine is not None:
            payload["engine"] = engine
        if clearance is not None:
            payload["clearance"] = clearance
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if traceparent is not None:
            payload["traceparent"] = traceparent
        return self._checked(await self.request(payload))

    async def assert_clause(self, clause: str, strict: bool = False,
                            clearance: str | None = None,
                            timeout_s: float | None = None,
                            traceparent: str | None = None) -> dict:
        payload: dict = {"op": "assert", "clause": clause, "strict": strict}
        if clearance is not None:
            payload["clearance"] = clearance
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if traceparent is not None:
            payload["traceparent"] = traceparent
        return self._checked(await self.request(payload))

    async def ping(self) -> dict:
        return self._checked(await self.request({"op": "ping"}))

    async def metrics(self) -> str:
        return self._checked(await self.request({"op": "metrics"}))["text"]

    async def audit(self) -> list[dict]:
        return self._checked(await self.request({"op": "audit"}))["events"]

    async def slowlog(self, limit: int | None = None,
                      clearance: str | None = None) -> dict:
        """The server's slow-query captures, redacted at ``clearance``
        (default: the connection's) -- ``{"enabled", "entries", ...}``."""
        payload: dict = {"op": "slowlog"}
        if limit is not None:
            payload["limit"] = limit
        if clearance is not None:
            payload["clearance"] = clearance
        return self._checked(await self.request(payload))

    # ------------------------------------------------------------------
    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
