"""The asyncio MultiLog server: thousands of clients, one database.

Architecture (docs/SERVING.md has the full walkthrough)::

    clients --newline-framed JSON--> MultiLogServer
                                        |  admission control (shed / degrade)
                                        |  read-write lock (snapshot isolation)
                                        v
                     SessionPool -- exclusive with_clearance() siblings
                                        |
                                        v
                        one shared MultiLogDatabase (+ journal)

* **Reads** (``ask``) take the read side of an asyncio read-write lock
  and run on a thread pool; any number proceed concurrently.  Because
  writers are excluded while any read is in flight, ``database.version``
  is frozen for the whole ask -- every answer is computed against exactly
  one version, which the response reports (snapshot isolation riding the
  existing version counter; the engine caches are already keyed on it).
* **Writes** (``assert``) take the write side -- they wait for in-flight
  reads to drain, run one at a time, and go through
  ``MultiLogSession.assert_clause`` so Definition 5.3 validation,
  atomic rollback and the PR 4 write-ahead journal all apply unchanged.
  The lock is write-preferring: a waiting writer blocks new readers, so
  sustained ask traffic cannot starve asserts.
* **Admission control** keeps the queue bounded instead of letting load
  build unboundedly: past ``max_inflight`` requests are **shed** with a
  ``shed`` error (transient -- clients retry after backoff); past
  ``degrade_at * max_inflight`` asks are served **degraded** through the
  :class:`~repro.resilience.ResilientExecutor` under ``shed_budget``,
  returning partial answers flagged ``complete: false`` rather than
  queuing for a full evaluation (the PR 2 budget + PR 4 PartialResult
  ladder, promoted to a serving policy).
* **Observability**: every request feeds a per-op latency histogram and
  the ``multilog_serving_*`` Prometheus counters
  (accepted/shed/degraded/inflight/...); with ``audit=True`` every
  pooled session funnels into one server-wide
  :class:`~repro.obs.audit.AuditLog`, so cross-clearance leak checks see
  all levels at once (the CI smoke job asserts the trail is leak-free
  under 200 concurrent clients).
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import dataclasses
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.errors import (
    BudgetExceededError,
    JournalError,
    LatticeError,
    MultiLogSyntaxError,
    ProtocolError,
    ReproError,
    SessionBusyError,
)
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.session import MultiLogSession
from repro.obs.audit import AuditLog
from repro.obs.budget import EvaluationBudget
from repro.obs.context import ObsContext
from repro.obs.context import use as use_obs
from repro.obs.histogram import HistogramSet
from repro.obs.trace import (
    Span,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.resilience.checkpoint import CheckpointPolicy
from repro.serving.breaker import CircuitBreaker
from repro.serving.pool import SessionPool
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)
from repro.serving.requestlog import AccessLog, SlowLog, SLOTracker

#: backoff hint (seconds) sent with transient rejections (shed/quota/
#: draining) -- matches the HTTP shim's ``Retry-After: 1``.
RETRY_AFTER_S = 1.0

#: budget applied to degraded asks when the config leaves it unset: deep
#: enough for the paper-scale workloads, shallow enough that an overload
#: cannot pin a worker thread for long.
DEFAULT_SHED_BUDGET = EvaluationBudget(max_derived_rows=200_000,
                                       max_rounds=500, timeout_s=2.0)


@dataclass
class ServerConfig:
    """Tunables of one :class:`MultiLogServer` (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off ``server.address``
    clearance: str | None = None
    backend: str | None = None
    journal: str | None = None
    engine: str = "operational"
    #: hard admission cap: requests past this many in flight are shed.
    max_inflight: int = 64
    #: fraction of ``max_inflight`` past which asks run degraded
    #: (budgeted, partial answers allowed) instead of full evaluations.
    degrade_at: float = 0.75
    #: budget for degraded asks (``None`` -> :data:`DEFAULT_SHED_BUDGET`).
    shed_budget: EvaluationBudget | None = None
    max_sessions_per_clearance: int = 32
    #: worker threads the blocking engine calls run on.  The engine is
    #: pure Python (GIL-bound), so a handful is plenty; more threads buy
    #: fairness between requests, not throughput.
    workers: int = 8
    audit: bool = True
    max_line_bytes: int = MAX_LINE_BYTES
    #: server-side default deadline applied when neither the request nor
    #: the connection ``hello`` named one (``None`` = no deadline).
    default_timeout_s: float | None = None
    #: per-clearance admission quotas layered *under* ``max_inflight``:
    #: ``{"u": 16}`` caps unclassified traffic at 16 in flight while
    #: other levels still share the global cap.  ``None``/missing level
    #: = no per-level cap.
    clearance_quotas: dict[str, int] | None = None
    #: consecutive server-side failures of one op before its circuit
    #: breaker opens.
    breaker_threshold: int = 8
    #: seconds an open breaker waits before admitting a half-open probe.
    breaker_reset_s: float = 5.0
    #: checkpoint the journal after this many clause records since the
    #: last snapshot (``None`` disables the record threshold).
    checkpoint_records: int | None = 1000
    #: ... or once the journal file exceeds this many bytes.
    checkpoint_bytes: int | None = 4 * 1024 * 1024
    #: cadence of the background checkpointer's threshold poll.
    checkpoint_poll_s: float = 0.25
    #: how long :meth:`MultiLogServer.drain` waits for inflight requests.
    drain_timeout_s: float = 10.0
    #: request-scoped tracing: every ask/assert runs under a root span
    #: (``request[op]``) carrying the client's ``traceparent`` ids, with
    #: the engine's span tree grafted beneath it.  Off by default -- the
    #: serving bench gates the overhead at <5% p95.
    trace: bool = False
    #: sink each request's root span streams to as it closes (a
    #: :class:`~repro.obs.export.TelemetrySink`: ``JsonlSpanSink`` for
    #: disk, ``ListSink`` for tests).  Only consulted when ``trace``.
    trace_sink: object | None = None
    #: structured JSONL access log path (one line per request; ``None``
    #: disables).  Implies per-request breakdown accounting.
    access_log: str | None = None
    access_log_max_bytes: int = 8 * 1024 * 1024
    access_log_max_files: int = 3
    #: slow-query capture: ok requests slower than this (seconds) -- and
    #: every errored request -- keep their span tree + EXPLAIN sketch in
    #: a bounded ring.  ``None`` disables capture entirely.
    slow_threshold_s: float | None = None
    #: ring-buffer capacity of the slow log.
    slow_capacity: int = 64
    #: SLO target (good-request fraction) behind the per-op burn-rate
    #: gauges; 0.99 = a 1% error budget.
    slo_target: float = 0.99
    #: the burn-rate window pair (seconds): fast shows "bleeding now",
    #: slow shows "budget spent over the period".
    slo_fast_window_s: float = 60.0
    slo_slow_window_s: float = 3600.0
    #: latency objective: an ok answer slower than this still counts
    #: *bad* for the SLO (``None`` = outcome-only SLO).
    slo_latency_s: float | None = None
    #: injectable clock for the SLO windows (tests); ``None`` = monotonic.
    slo_clock: Callable[[], float] | None = None

    def degrade_threshold(self) -> int:
        return max(1, int(self.max_inflight * self.degrade_at))

    def checkpoint_policy(self) -> CheckpointPolicy:
        return CheckpointPolicy(max_records=self.checkpoint_records,
                                max_bytes=self.checkpoint_bytes)


class ServingStats:
    """The serving dashboard: counters + per-op latency histograms."""

    COUNTERS = (
        ("accepted_total", "Requests admitted past admission control."),
        ("completed_total", "Requests finished with an ok response."),
        ("shed_total", "Requests dropped by admission control (overload)."),
        ("quota_shed_total", "Requests dropped by a per-clearance quota."),
        ("degraded_total", "Asks served degraded (budgeted partial answers)."),
        ("deadline_total", "Requests aborted by their timeout_s deadline."),
        ("cancelled_total", "Asks cancelled after the client disconnected."),
        ("breaker_rejected_total", "Requests rejected by an open breaker."),
        ("errors_total", "Requests answered with an error response."),
        ("asks_total", "Ask operations served."),
        ("asserts_total", "Assert operations applied."),
        ("connections_total", "Client connections accepted."),
        ("disconnects_total", "Connections dropped mid-request by the peer."),
        ("checkpoints_total", "Journal checkpoints taken."),
        ("checkpoint_failures_total", "Journal checkpoints that failed."),
    )

    # counter slots (one per COUNTERS row, created in __init__); declared
    # so incrementing them as plain attributes typechecks
    accepted_total: int
    completed_total: int
    shed_total: int
    quota_shed_total: int
    degraded_total: int
    deadline_total: int
    cancelled_total: int
    breaker_rejected_total: int
    errors_total: int
    asks_total: int
    asserts_total: int
    connections_total: int
    disconnects_total: int
    checkpoints_total: int
    checkpoint_failures_total: int

    def __init__(self) -> None:
        for name, _help in self.COUNTERS:
            setattr(self, name, 0)
        self.inflight = 0
        self.connections = 0
        self.inflight_by_clearance: dict[str, int] = {}
        self.histograms = HistogramSet()
        #: per-op SLO monitors (attached by the server when configured).
        self.slo: SLOTracker | None = None

    def observe(self, op: str, seconds: float) -> None:
        """Feed the per-op latency histogram.

        ``op`` must be a protocol op or the ``invalid`` pseudo-op the
        server files undecodable requests under -- anything else is
        normalized to ``invalid`` so attacker-chosen op strings cannot
        mint unbounded histogram families (label-cardinality hygiene).
        """
        if op not in OPS and op != "invalid":
            op = "invalid"
        self.histograms.observe(f"serve[{op}]", seconds)

    def observe_pool_wait(self, seconds: float) -> None:
        """Session-pool checkout wait (blocked on the per-clearance cap)."""
        self.histograms.observe("pool[wait]", seconds)

    def observe_lock_wait(self, side: str, seconds: float) -> None:
        """RW-lock acquisition wait (``side`` is ``read`` or ``write``)."""
        self.histograms.observe(f"lock[{side}]", seconds)

    def snapshot(self) -> dict:
        out = {name: getattr(self, name) for name, _help in self.COUNTERS}
        out["inflight"] = self.inflight
        out["connections"] = self.connections
        out["inflight_by_clearance"] = dict(self.inflight_by_clearance)
        out["latency"] = self.histograms.to_dict()
        return out

    def render_prometheus(self, namespace: str = "multilog_serving",
                          pool: SessionPool | None = None,
                          breakers: dict[str, CircuitBreaker] | None = None,
                          write_queue_depth: int | None = None,
                          ) -> str:
        """Prometheus text exposition of the serving dashboard."""
        from repro.obs.export import _fmt_bound, _labels

        def histogram_block(full: str, help_text: str,
                            rows: list[tuple[dict, object]]) -> None:
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} histogram")
            for label_args, hist in rows:
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    lines.append(f"{full}_bucket{_labels(**dict(label_args, le=_fmt_bound(bound)))} "
                                 f"{cumulative}")
                lines.append(f"{full}_bucket{_labels(**dict(label_args, le='+Inf'))} {hist.count}")
                lines.append(f"{full}_sum{_labels(**label_args)} {hist.sum:.6f}")
                lines.append(f"{full}_count{_labels(**label_args)} {hist.count}")

        lines: list[str] = []
        for name, help_text in self.COUNTERS:
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {getattr(self, name)}")
        for name, help_text in (("inflight", "Requests currently in flight."),
                                ("connections", "Open client connections.")):
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {getattr(self, name)}")
        if self.inflight_by_clearance:
            full = f"{namespace}_inflight_by_clearance"
            lines.append(f"# HELP {full} Requests in flight per clearance.")
            lines.append(f"# TYPE {full} gauge")
            for level in sorted(self.inflight_by_clearance):
                labels = _labels(clearance=level)
                lines.append(
                    f"{full}{labels} {self.inflight_by_clearance[level]}")
        if breakers:
            full = f"{namespace}_breaker_state"
            lines.append(f"# HELP {full} Circuit breaker state per op "
                         "(0=closed, 1=half-open, 2=open).")
            lines.append(f"# TYPE {full} gauge")
            for op in sorted(breakers):
                lines.append(f"{full}{_labels(op=op)} "
                             f"{breakers[op].state_code}")
            full = f"{namespace}_breaker_opened_total"
            lines.append(f"# HELP {full} Times each breaker tripped open.")
            lines.append(f"# TYPE {full} counter")
            for op in sorted(breakers):
                lines.append(f"{full}{_labels(op=op)} "
                             f"{breakers[op].opened_total}")
        if pool is not None:
            full = f"{namespace}_pool_sessions"
            lines.append(f"# HELP {full} Pooled sessions per clearance and state.")
            lines.append(f"# TYPE {full} gauge")
            for level, counts in pool.stats().items():
                for state in ("busy", "free"):
                    labels = _labels(clearance=level, state=state)
                    lines.append(f"{full}{labels} {counts[state]}")
        if write_queue_depth is not None:
            full = f"{namespace}_write_queue_depth"
            lines.append(f"# HELP {full} Writers waiting on the RW lock.")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {write_queue_depth}")
        if self.histograms.histograms:
            serve_rows: list[tuple[dict, object]] = []
            pool_rows: list[tuple[dict, object]] = []
            lock_rows: list[tuple[dict, object]] = []
            for family in self.histograms.families():
                hist = self.histograms.histograms[family]
                if family.startswith("serve["):
                    serve_rows.append(({"op": family[len("serve["):-1]}, hist))
                elif family == "pool[wait]":
                    pool_rows.append(({}, hist))
                elif family.startswith("lock["):
                    lock_rows.append(({"side": family[len("lock["):-1]}, hist))
                else:  # pragma: no cover - no other families are fed
                    serve_rows.append(({"op": family}, hist))
            if serve_rows:
                histogram_block(f"{namespace}_request_seconds",
                                "Request latency per operation.", serve_rows)
            if pool_rows:
                histogram_block(f"{namespace}_pool_wait_seconds",
                                "Session-pool checkout wait.", pool_rows)
            if lock_rows:
                histogram_block(f"{namespace}_lock_wait_seconds",
                                "RW-lock acquisition wait per side.",
                                lock_rows)
        if self.slo is not None:
            rates = self.slo.burn_rates()
            full = f"{namespace}_slo_target"
            lines.append(f"# HELP {full} Good-request fraction the SLO "
                         "monitors aim for.")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {self.slo.target}")
            if rates:
                full = f"{namespace}_slo_burn_rate"
                lines.append(f"# HELP {full} Error-budget burn rate per op "
                             "and window (1.0 = spending the budget "
                             "exactly).")
                lines.append(f"# TYPE {full} gauge")
                for op, windows in rates.items():
                    for window, rate in sorted(windows.items()):
                        lines.append(
                            f"{full}{_labels(op=op, window=window)} {rate}")
        return "\n".join(lines) + "\n"


class _ReadWriteLock:
    """Write-preferring asyncio read-write lock.

    Any number of readers proceed together; a writer waits for in-flight
    readers to drain and excludes everything while it runs.  A *waiting*
    writer blocks new readers, so sustained reads cannot starve writes.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._cond = asyncio.Condition()

    @property
    def waiting_writers(self) -> int:
        """Writers parked behind readers right now (queue-depth gauge)."""
        return self._waiting_writers

    @asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writer or self._waiting_writers:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        async with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _Connection:
    """Per-connection state (the ``hello``-pinned defaults)."""

    clearance: str | None = None
    peer: str = ""
    requests: int = 0
    closing: bool = field(default=False)
    #: default deadline pinned by ``hello`` (per-request override wins).
    timeout_s: float | None = None


class _RequestScope:
    """Per-request observability state: trace ids, root span, breakdown.

    Built by :meth:`MultiLogServer._begin_scope` when tracing, the
    access log or the slow log is enabled -- ``None`` otherwise, so the
    bare serving hot path allocates nothing per request.  The breakdown
    dict accrues the resource waits (``admission_s``, ``lock_wait_s``,
    ``pool_wait_s``, ``engine_s``) the data paths measure around their
    awaits; :meth:`MultiLogServer._finish_scope` folds everything into
    the root span, the access log and (when it qualifies) the slow log.
    """

    __slots__ = ("op", "level", "started", "trace_id", "span_id",
                 "parent_span_id", "root", "breakdown",
                 "query", "engine", "run_stats")

    def __init__(self, op: str, level: str) -> None:
        self.op = op
        self.level = level
        self.started = perf_counter()
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_span_id: str | None = None
        self.root: Span | None = None
        self.breakdown: dict[str, float] = {}
        self.query: str | None = None
        self.engine: str | None = None
        self.run_stats: dict | None = None

    def mark(self, key: str, since: float) -> None:
        self.breakdown[key] = perf_counter() - since


def _ask_run_stats(session, before, want_explain: bool) -> dict | None:
    """Per-request engine deltas + EXPLAIN sketch for the slow log.

    ``before`` is the session's cumulative EngineMetrics snapshot taken
    just before the ask (``None`` on a fresh session); each ask publishes
    a *fresh* snapshot object, so ``before`` is stable and the delta
    against the post-ask snapshot isolates this request's rows/probes/
    firings.  The firings scan and the EXPLAIN sketch (top five rules by
    firing count -- enough to see which join went quadratic without
    retaining the whole derivation) are only consumed by the slow log,
    so ``want_explain=False`` keeps the traced hot path down to four
    integer reads.
    """
    after = session.last_stats()
    if after is None:
        return None
    rows0 = before.total_rows_derived if before is not None else 0
    probes0 = ((before.join_probes + before.batch_probes)
               if before is not None else 0)
    rows = after.total_rows_derived - rows0
    probes = (after.join_probes + after.batch_probes) - probes0
    if not want_explain:
        return {"rows": rows, "probes": probes}
    firings0 = before.rule_firings if before is not None else {}
    fired = sorted(
        ((count - firings0.get(label, 0), label)
         for label, count in after.rule_firings.items()
         if count - firings0.get(label, 0) > 0),
        reverse=True)
    lines = [f"{count}x {label if len(label) <= 96 else label[:93] + '...'}"
             for count, label in fired[:5]]
    lines.append(f"rows={rows} probes={probes}")
    return {"rows": rows, "probes": probes, "explain": "\n".join(lines)}


class MultiLogServer:
    """Serve one shared MultiLog database to many concurrent clients."""

    def __init__(self, source: str | MultiLogDatabase | MultiLogSession,
                 config: ServerConfig | None = None, **overrides):
        self.config = config if config is not None else ServerConfig()
        for key, value in overrides.items():
            if not hasattr(self.config, key):
                raise TypeError(f"unknown server config field {key!r}")
            setattr(self.config, key, value)
        if isinstance(source, MultiLogSession):
            self.root = source
        else:
            self.root = MultiLogSession(source, self.config.clearance,
                                        backend=self.config.backend)
        if self.config.journal is not None and self.root.journal is None:
            self.root.attach_journal(self.config.journal)
        self.audit: AuditLog | None = None
        if self.config.audit:
            self.audit = self.root.enable_audit()
        self.stats = ServingStats()
        self.stats.slo = SLOTracker(
            target=self.config.slo_target,
            fast_window_s=self.config.slo_fast_window_s,
            slow_window_s=self.config.slo_slow_window_s,
            clock=(self.config.slo_clock
                   if self.config.slo_clock is not None else time.monotonic))
        self.access_log: AccessLog | None = None
        if self.config.access_log is not None:
            self.access_log = AccessLog(
                self.config.access_log,
                max_bytes=self.config.access_log_max_bytes,
                max_files=self.config.access_log_max_files)
        self.slow_log: SlowLog | None = None
        if self.config.slow_threshold_s is not None:
            self.slow_log = SlowLog(
                capacity=self.config.slow_capacity,
                threshold_s=self.config.slow_threshold_s,
                lattice=self.root.lattice, audit=self.audit)
        #: request scopes exist when any per-request surface is on; the
        #: plain hot path (no tracing, no logs) allocates none of it.
        self._scoped = (self.config.trace or self.access_log is not None
                        or self.slow_log is not None)
        self.pool = SessionPool(
            self.root,
            max_per_clearance=self.config.max_sessions_per_clearance,
            on_create=self._setup_session,
            on_wait=self._observe_pool_wait)
        self._rw = _ReadWriteLock()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="multilog-serve")
        self._shed_budget = (self.config.shed_budget
                             if self.config.shed_budget is not None
                             else DEFAULT_SHED_BUDGET)
        self._server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        #: open connection-handler tasks; ``stop()`` drains them so no
        #: handler is left to be cancelled noisily at loop shutdown.
        self._conn_tasks: set[asyncio.Task] = set()
        #: per-op circuit breakers (consecutive server-side failures).
        self._breakers: dict[str, CircuitBreaker] = {
            op: CircuitBreaker(threshold=self.config.breaker_threshold,
                               reset_s=self.config.breaker_reset_s)
            for op in ("ask", "assert")}
        #: graceful-shutdown flag: set by :meth:`drain`, checked by
        #: admission control and ``/healthz``.
        self._draining = False
        self._checkpoint_task: asyncio.Task | None = None

    def _setup_session(self, session: MultiLogSession) -> None:
        """Wire a fresh pooled sibling into the server-wide observability."""
        if self.audit is not None:
            session.enable_audit(self.audit)

    def _observe_pool_wait(self, level: str, seconds: float) -> None:
        """Pool ``on_wait`` hook: checkout wait into the stats histogram."""
        self.stats.observe_pool_wait(seconds)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting framed-protocol connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes + 2)
        if (self.root.journal is not None
                and self.config.checkpoint_policy().enabled
                and self._checkpoint_task is None):
            self._checkpoint_task = asyncio.ensure_future(
                self._checkpoint_loop())
        return self.address

    async def start_http(self, host: str | None = None,
                         port: int = 0) -> tuple[str, int]:
        """Additionally serve the HTTP shim (see :mod:`repro.serving.http`)."""
        from repro.serving.http import handle_http_connection

        async def handler(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._conn_tasks.add(task)
            try:
                await handle_http_connection(self, reader, writer)
            except asyncio.CancelledError:
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

        self._http_server = await asyncio.start_server(
            handler, host if host is not None else self.config.host, port,
            limit=self.config.max_line_bytes + 2)
        return self.http_address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def http_address(self) -> tuple[str, int]:
        if self._http_server is None:
            raise RuntimeError("HTTP shim not started")
        sock = self._http_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - start() always binds
            raise RuntimeError("server not started")
        await server.serve_forever()

    async def stop(self) -> None:
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._http_server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._threads.shutdown(wait=False, cancel_futures=True)
        if self.access_log is not None:
            self.access_log.close()

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: stop admitting, drain inflight, checkpoint.

        Sets the server ``draining`` (new requests are rejected with the
        ``draining`` code, ``/healthz`` turns 503), closes the listening
        sockets, waits up to ``timeout_s`` (default
        ``config.drain_timeout_s``) for inflight requests to finish, and
        takes a final journal checkpoint so a restart replays one
        snapshot instead of the whole history.  Returns ``True`` when
        everything in flight completed within the deadline.  The caller
        still owns :meth:`stop` for closing connections and threads.
        """
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        self._draining = True
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while self.stats.inflight and loop.time() < deadline:
            await asyncio.sleep(0.02)
        drained = self.stats.inflight == 0
        if self.root.journal is not None:
            await self.checkpoint()
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def health(self) -> str:
        """``healthy``, ``degraded`` or ``draining`` (for ``/healthz``)."""
        if self._draining:
            return "draining"
        if self.stats.inflight >= self.config.degrade_threshold():
            return "degraded"
        if any(breaker.state != "closed"
               for breaker in self._breakers.values()):
            return "degraded"
        return "healthy"

    # -- background checkpointing --------------------------------------
    async def _checkpoint_loop(self) -> None:
        """Poll the journal's accumulation; compact when the policy says.

        Runs as a background task for the server's lifetime.  The
        threshold check runs on a worker thread (it stats the file); the
        compaction itself runs under the write lock so no assert is
        mid-flight while the journal is replaced -- SIGKILL at any
        instant leaves either the old journal or the new snapshot.
        """
        journal = self.root.journal
        if journal is None:
            return
        policy = self.config.checkpoint_policy()
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.checkpoint_poll_s)
            due = await loop.run_in_executor(
                self._threads,
                functools.partial(self._checkpoint_due, journal, policy))
            if due:
                await self.checkpoint()

    def _checkpoint_due(self, journal, policy: CheckpointPolicy) -> bool:
        records, size = journal.checkpoint_stats()
        return policy.due(records, size)

    def _checkpoint_sync(self, journal) -> None:
        journal.compact(self.root.database)

    async def checkpoint(self) -> bool:
        """Compact the journal now (under the write lock); True on success."""
        journal = self.root.journal
        if journal is None:
            return False
        loop = asyncio.get_running_loop()
        async with self._rw.write():
            try:
                await loop.run_in_executor(
                    self._threads,
                    functools.partial(self._checkpoint_sync, journal))
            except Exception:  # noqa: BLE001 -- checkpointing must not kill
                self.stats.checkpoint_failures_total += 1
                return False
        self.stats.checkpoints_total += 1
        return True

    # -- framed-protocol connection handling ---------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # A task that *ends* cancelled trips asyncio.streams' done-callback
        # into logging a spurious "Exception in callback" on 3.11; ``stop``
        # cancels handlers on shutdown, so absorb that cancellation here.
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.stats.connections_total += 1
        self.stats.connections += 1
        conn = _Connection(peer=str(writer.get_extra_info("peername", "")))
        next_line: asyncio.Task | None = None
        try:
            while True:
                if next_line is None:
                    next_line = asyncio.ensure_future(reader.readline())
                try:
                    line = await next_line
                except (asyncio.LimitOverrunError, ValueError):
                    # Unframed or oversized input: answer once, hang up.
                    next_line = None
                    writer.write(encode_message(error_response(
                        None, "line-too-long",
                        f"request line exceeds {self.config.max_line_bytes} bytes")))
                    await writer.drain()
                    break
                next_line = None
                if not line:
                    break  # peer closed cleanly
                if not line.strip():
                    continue
                # Read ahead before serving: the pending readline is both
                # the pipelining queue (a client may send its next request
                # without waiting) and the disconnect probe -- it resolving
                # to EOF mid-request means the peer is gone, so the
                # watcher flips the cancel event and the evaluation aborts
                # inside the engine instead of burning a worker thread.
                next_line = asyncio.ensure_future(reader.readline())
                cancel = threading.Event()
                watcher = asyncio.ensure_future(
                    self._peer_watch(next_line, cancel))
                try:
                    response = await self.handle_line(line, conn, cancel)
                finally:
                    watcher.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await watcher
                writer.write(encode_message(response))
                await writer.drain()
                if conn.closing:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            # Mid-request disconnect: the request (if any) already ran to
            # completion and its session went back to the pool; all that
            # is lost is the response bytes.
            self.stats.disconnects_total += 1
        finally:
            if next_line is not None:
                next_line.cancel()
                await asyncio.gather(next_line, return_exceptions=True)
            if task is not None:
                self._conn_tasks.discard(task)
            self.stats.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _peer_watch(self, read_task: "asyncio.Task[bytes]",
                          cancel: threading.Event) -> None:
        """Flip ``cancel`` if the pending read resolves to EOF/error.

        ``read_task`` is the connection loop's read-ahead for the *next*
        request; it completing empty while the current request is being
        served means the client hung up.  Shielded so cancelling the
        watcher (the normal end of every request) leaves the read-ahead
        running.
        """
        try:
            line = await asyncio.shield(read_task)
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, EOFError, OSError):
            # IncompleteReadError is an EOFError; Connection*/BrokenPipe
            # are OSErrors -- all mean the peer is gone.
            cancel.set()
            return
        except Exception:  # noqa: BLE001
            # LimitOverrunError/ValueError: the *next* pipelined line is
            # oversized or unframed.  The peer is still connected and
            # still owed the current response, so don't cancel; the
            # connection loop answers line-too-long and hangs up after
            # the in-flight request completes.
            return
        if not line:
            cancel.set()

    async def handle_line(self, line: bytes, conn: _Connection | None = None,
                          cancel: threading.Event | None = None) -> dict:
        """Decode one framed request line and dispatch it."""
        started = perf_counter()
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.stats.errors_total += 1
            # Undecodable requests must not be invisible in latency data:
            # they are filed under the ``invalid`` pseudo-op (a real op
            # label would let attackers mint histogram families).
            self.stats.observe("invalid", perf_counter() - started)
            return error_response(None, exc.code, str(exc))
        return await self.dispatch(request, conn, cancel)

    # -- dispatch ------------------------------------------------------
    def _request_timeout(self, request: dict,
                         conn: _Connection | None) -> float | None:
        """Effective deadline: request > connection hello > server default."""
        timeout = request.get("timeout_s")
        if timeout is None and conn is not None:
            timeout = conn.timeout_s
        if timeout is None:
            timeout = self.config.default_timeout_s
        return timeout

    async def dispatch(self, request: dict, conn: _Connection | None = None,
                       cancel: threading.Event | None = None) -> dict:
        """Serve one validated request (shared by framed and HTTP paths).

        Every path through here -- success, shed, quota, breaker,
        deadline, client error -- feeds the per-op latency histogram
        (the ``finally``) and, for the data ops, the SLO windows: error
        responses must not be invisible in latency or burn-rate data.
        """
        op = request["op"]
        request_id = request.get("id")
        if conn is not None:
            conn.requests += 1
        clearance = request.get("clearance")
        if clearance is None and conn is not None:
            clearance = conn.clearance
        started = perf_counter()
        response: dict | None = None
        try:
            response = await self._dispatch_op(op, request, request_id,
                                               clearance, conn, cancel)
            return response
        finally:
            elapsed = perf_counter() - started
            self.stats.observe(op, elapsed)
            slo = self.stats.slo
            if slo is not None and slo.tracks(op):
                ok = bool(response and response.get("ok"))
                objective = self.config.slo_latency_s
                slo.record(op, ok and (objective is None
                                       or elapsed <= objective))

    async def _dispatch_op(self, op: str, request: dict, request_id,
                           clearance, conn: _Connection | None,
                           cancel: threading.Event | None) -> dict:
        if op == "hello":
            if request.get("clearance") is not None and conn is not None:
                try:
                    self.root.lattice.check_level(request["clearance"])
                except LatticeError as exc:
                    self.stats.errors_total += 1
                    return error_response(request_id, "bad-clearance", str(exc))
                conn.clearance = request["clearance"]
            if request.get("timeout_s") is not None and conn is not None:
                conn.timeout_s = float(request["timeout_s"])
            return ok_response(
                request_id, server=PROTOCOL_VERSION,
                clearance=str(clearance or self.root.clearance),
                backend=self.root.backend,
                version=self.root.database.version,
                status=self.health,
                levels=sorted(str(level) for level
                              in self.root.lattice.levels))
        if op == "ping":
            return ok_response(request_id,
                               version=self.root.database.version,
                               status=self.health)
        if op == "metrics":
            return ok_response(request_id, text=self.metrics_text())
        if op == "audit":
            events = self.audit.to_dicts() if self.audit is not None else []
            return ok_response(request_id, events=events,
                               enabled=self.audit is not None)
        if op == "slowlog":
            return self._serve_slowlog(request, request_id, clearance)
        if op == "ask":
            return await self._serve_ask(request, request_id, clearance,
                                         conn, cancel)
        if op == "assert":
            return await self._serve_assert(request, request_id,
                                            clearance, conn)
        self.stats.errors_total += 1
        return error_response(request_id, "unknown-op", f"unknown op {op!r}")

    def _serve_slowlog(self, request: dict, request_id, clearance) -> dict:
        """The slow-query ring, redacted at the requester's clearance."""
        if self.slow_log is None:
            return ok_response(request_id, enabled=False, entries=[],
                               captured_total=0)
        entries = self.slow_log.view(self._level_of(clearance))
        limit = request.get("limit")
        if isinstance(limit, int) and limit > 0:
            entries = entries[:limit]
        return ok_response(request_id, enabled=True, entries=entries,
                           threshold_s=self.slow_log.threshold_s,
                           captured_total=self.slow_log.captured_total)

    # -- request scopes (tracing / access log / slow log) ---------------
    def _begin_scope(self, op: str, request: dict,
                     level: str) -> _RequestScope | None:
        """Open the per-request observability scope (or ``None`` when off).

        The trace id comes from the client's ``traceparent`` when one
        rode the request (protocol field or HTTP header, already
        validated by the protocol layer) and is minted fresh otherwise;
        either way every request on a connection gets its own ids.  With
        ``config.trace`` the scope also opens the ``request[op]`` root
        span that the engine's span tree will graft under.
        """
        if not self._scoped:
            return None
        scope = _RequestScope(op, level)
        traceparent = request.get("traceparent")
        if isinstance(traceparent, str):
            try:
                scope.trace_id, scope.parent_span_id, _ = parse_traceparent(
                    traceparent)
            except ValueError:
                scope.trace_id = new_trace_id()
        else:
            scope.trace_id = new_trace_id()
        scope.span_id = new_span_id()
        if self.config.trace:
            # The root span is managed by hand (no per-request recorder):
            # nothing ever nests through a recorder stack here -- the
            # engine's span tree grafts in via ``parent.children`` from
            # the worker thread -- so a recorder would only add two
            # allocations and a push/pop to the hot path.
            attrs = {"op": op, "clearance": level,
                     "trace_id": scope.trace_id, "span_id": scope.span_id}
            if scope.parent_span_id is not None:
                attrs["parent_span_id"] = scope.parent_span_id
            root = Span(None, f"request[{op}]", attrs)
            root.started = perf_counter()
            scope.root = root
        return scope

    def _finish_scope(self, scope: _RequestScope | None,
                      response: dict) -> None:
        """Close the request scope: root span, access log, slow log.

        One exit point for every outcome of a data path -- ok, shed,
        quota, breaker, deadline, cancelled, internal -- so no error
        path can dodge the access log the way unobserved returns once
        dodged the latency histogram.
        """
        if scope is None:
            return
        elapsed = perf_counter() - scope.started
        ok = bool(response.get("ok"))
        outcome = "ok" if ok else str(response.get("code", "internal"))
        degraded = bool(response.get("degraded"))
        breakdown = {key: round(value, 6)
                     for key, value in scope.breakdown.items()}
        root = scope.root
        if root is not None:
            root.elapsed_s = elapsed - (root.started - scope.started)
            attrs = root.attrs
            attrs["outcome"] = outcome
            attrs.update(breakdown)
            if degraded:
                attrs["degraded"] = True
            if scope.run_stats is not None:
                attrs["rows"] = scope.run_stats["rows"]
                attrs["probes"] = scope.run_stats["probes"]
            answers = response.get("answers")
            if isinstance(answers, list):
                attrs["answers"] = len(answers)
            if outcome in ("cancelled", "deadline"):
                # The evaluation was aborted mid-flight; the exception
                # was already caught (it became the response), so stamp
                # the abort on the root explicitly.
                attrs["aborted"] = True
            sink = self.config.trace_sink
            if sink is not None:
                sink.write_span(root)
        if scope.trace_id is not None:
            response.setdefault("trace_id", scope.trace_id)
        if self.access_log is not None:
            answers = response.get("answers")
            self.access_log.record({
                "ts": round(time.time(), 3),
                "trace_id": scope.trace_id,
                "op": scope.op,
                "clearance": scope.level,
                "outcome": outcome,
                "elapsed_s": round(elapsed, 6),
                "breakdown": breakdown,
                "degraded": degraded,
                "shed": outcome in ("shed", "quota"),
                "breaker": outcome == "breaker-open",
                "engine": scope.engine,
                "version": response.get("version"),
                "answers": len(answers) if isinstance(answers, list) else None,
            })
        if (self.slow_log is not None
                and self.slow_log.should_capture(elapsed, ok)):
            spans = [scope.root.to_dict()] if scope.root is not None else []
            run_stats = scope.run_stats or {}
            self.slow_log.capture(
                trace_id=scope.trace_id, op=scope.op, level=scope.level,
                outcome=outcome, elapsed_s=elapsed, breakdown=breakdown,
                query=scope.query, engine=scope.engine,
                explain=run_stats.get("explain"), spans=spans,
                degraded=degraded)

    # -- the two data paths --------------------------------------------
    def _level_of(self, clearance) -> str:
        return str(clearance if clearance is not None else self.root.clearance)

    def _admit(self, level: str) -> dict | None:
        """Admission control: count the request in, or explain the drop.

        Returns ``None`` on admission (caller owns :meth:`_release`) or
        ``{"code", "message", "retry_after"}`` describing the rejection.
        Order: draining beats the global cap beats per-clearance quotas,
        so a drained server reports *why* uniformly.
        """
        if self._draining:
            return {"code": "draining",
                    "message": "server is draining for shutdown; "
                               "retry against another replica",
                    "retry_after": RETRY_AFTER_S}
        if self.stats.inflight >= self.config.max_inflight:
            self.stats.shed_total += 1
            return {"code": "shed",
                    "message": f"server at capacity "
                               f"({self.config.max_inflight} in flight); "
                               "retry after backoff",
                    "retry_after": RETRY_AFTER_S}
        quotas = self.config.clearance_quotas
        if quotas is not None:
            cap = quotas.get(level)
            if (cap is not None
                    and self.stats.inflight_by_clearance.get(level, 0) >= cap):
                self.stats.quota_shed_total += 1
                return {"code": "quota",
                        "message": f"clearance {level!r} at its admission "
                                   f"quota ({cap} in flight); retry after "
                                   "backoff",
                        "retry_after": RETRY_AFTER_S}
        self.stats.inflight += 1
        self.stats.inflight_by_clearance[level] = (
            self.stats.inflight_by_clearance.get(level, 0) + 1)
        self.stats.accepted_total += 1
        return None

    def _release(self, level: str) -> None:
        self.stats.inflight -= 1
        left = self.stats.inflight_by_clearance.get(level, 0) - 1
        if left > 0:
            self.stats.inflight_by_clearance[level] = left
        else:
            self.stats.inflight_by_clearance.pop(level, None)

    def _combine_budget(self, base: EvaluationBudget | None,
                        timeout_s: float | None,
                        cancel: threading.Event | None,
                        ) -> EvaluationBudget | None:
        """The request's effective budget: base caps + deadline + cancel."""
        if base is None:
            if timeout_s is None and cancel is None:
                return None
            base = EvaluationBudget()
        limit = base.timeout_s
        if timeout_s is not None:
            limit = timeout_s if limit is None else min(limit, timeout_s)
        return dataclasses.replace(
            base, timeout_s=limit,
            cancelled=cancel.is_set if cancel is not None else base.cancelled)

    async def _serve_ask(self, request: dict, request_id, clearance,
                         conn: _Connection | None = None,
                         cancel: threading.Event | None = None) -> dict:
        level = self._level_of(clearance)
        scope = self._begin_scope("ask", request, level)
        response = await self._ask_path(request, request_id, clearance,
                                        level, conn, cancel, scope)
        self._finish_scope(scope, response)
        return response

    async def _ask_path(self, request: dict, request_id, clearance,
                        level: str, conn: _Connection | None,
                        cancel: threading.Event | None,
                        scope: _RequestScope | None) -> dict:
        breaker = self._breakers["ask"]
        if not breaker.allow():
            self.stats.breaker_rejected_total += 1
            return error_response(
                request_id, "breaker-open",
                f"ask circuit breaker is {breaker.state} after "
                f"{breaker.threshold} consecutive failures",
                retry_after=round(breaker.retry_after(), 3))
        # If allow() just claimed the half-open probe slot, every exit
        # below must resolve it: record_success/record_failure do, and
        # the finally releases it on verdict-less paths (admission
        # denial, client errors, deadlines) so the slot cannot leak and
        # wedge the breaker half-open forever.
        probe = breaker.probing
        denied = self._admit(level)
        if denied is not None:
            if probe:
                breaker.release_probe()
            return error_response(request_id, denied["code"],
                                  denied["message"],
                                  retry_after=denied["retry_after"])
        engine = request.get("engine") or self.config.engine
        if scope is not None:
            scope.mark("admission_s", scope.started)
            scope.query = request["query"]
            scope.engine = engine
        timeout_s = self._request_timeout(request, conn)
        degrade = self.stats.inflight >= self.config.degrade_threshold()
        loop = asyncio.get_running_loop()
        try:
            lock_started = perf_counter()
            async with self._rw.read():
                self.stats.observe_lock_wait(
                    "read", perf_counter() - lock_started)
                if scope is not None:
                    scope.mark("lock_wait_s", lock_started)
                # Writers are excluded while we hold the read side, so the
                # version is the snapshot every answer is computed at.
                version = self.root.database.version
                pool_started = perf_counter()
                async with self.pool.lease(clearance) as session:
                    if scope is not None:
                        scope.mark("pool_wait_s", pool_started)
                    run = functools.partial(self._run_ask, session,
                                            request["query"], engine, degrade,
                                            timeout_s, cancel, scope)
                    if scope is not None and scope.root is not None:
                        # run_in_executor does NOT copy contextvars: copy
                        # the context holding the request's parent span
                        # here, so the session's per-ask recorder grafts
                        # its engine spans under our root.
                        with use_obs(ObsContext(parent_span=scope.root)):
                            run_ctx = contextvars.copy_context()
                        run = functools.partial(run_ctx.run, run)
                    engine_started = perf_counter()
                    answers, degraded = await loop.run_in_executor(
                        self._threads, run)
                    if scope is not None:
                        scope.mark("engine_s", engine_started)
            self.stats.asks_total += 1
            self.stats.completed_total += 1
            breaker.record_success()
            if degraded is not None:
                self.stats.degraded_total += 1
                return ok_response(request_id, answers=answers, version=version,
                                   complete=False, degraded=degraded,
                                   engine=engine)
            return ok_response(request_id, answers=answers, version=version,
                               complete=True, engine=engine)
        except BudgetExceededError as exc:
            # The request's own budget tripping is client-attributable:
            # it never counts against the breaker.
            self.stats.errors_total += 1
            if exc.reason == "cancelled":
                self.stats.cancelled_total += 1
                return error_response(request_id, "cancelled",
                                      "client disconnected mid-ask; "
                                      "evaluation cancelled")
            if exc.reason == "timeout" and timeout_s is not None:
                self.stats.deadline_total += 1
                return error_response(
                    request_id, "deadline",
                    f"deadline of {timeout_s}s passed: {exc}")
            return error_response(request_id, "rejected", str(exc))
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            # Should be impossible behind the pool's exclusive checkout;
            # if it surfaces, report it as its own code so it is visible.
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001 -- server must not die
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self._release(level)
            if probe:
                breaker.release_probe()

    def _run_ask(self, session, query: str, engine: str, degrade: bool,
                 timeout_s: float | None, cancel: threading.Event | None,
                 scope: _RequestScope | None = None):
        """One ask on a worker thread, under the request's budget.

        Returns ``(answers, degraded)``: ``degraded`` is ``None`` for a
        complete result, the ``rung:reason`` string for a partial one
        served under overload.  The session's budget is swapped for the
        combined request budget (deadline + disconnect probe) for the
        duration -- the pool's exclusive checkout makes that safe.

        With a ``scope``, per-request engine deltas (rows, probes, top
        rule firings) are computed from the session's cumulative
        EngineMetrics snapshots and stashed on the scope for the slow
        log's EXPLAIN sketch.  Writing to the scope from this worker
        thread is safe: the serving coroutine is parked on the executor
        future until we return.
        """
        from repro.resilience import PartialResult, ResilientExecutor

        saved = session.budget
        base = self._shed_budget if degrade else saved
        budget = self._combine_budget(base, timeout_s, cancel)
        session.budget = budget
        before = session.last_stats() if scope is not None else None
        try:
            if degrade:
                executor = ResilientExecutor(allow_partial=True, budget=budget)
                result = executor.ask(session, query, engine=engine)
                if isinstance(result, PartialResult):
                    answers, degraded = (result.answers or [],
                                         f"{result.rung}:{result.reason}")
                else:
                    answers, degraded = result, None
            else:
                answers, degraded = session.ask(query, engine=engine), None
            if scope is not None:
                scope.run_stats = _ask_run_stats(
                    session, before, want_explain=self.slow_log is not None)
            return answers, degraded
        finally:
            session.budget = saved

    async def _serve_assert(self, request: dict, request_id, clearance,
                            conn: _Connection | None = None) -> dict:
        level = self._level_of(clearance)
        scope = self._begin_scope("assert", request, level)
        response = await self._assert_path(request, request_id, clearance,
                                           level, conn, scope)
        self._finish_scope(scope, response)
        return response

    async def _assert_path(self, request: dict, request_id, clearance,
                           level: str, conn: _Connection | None,
                           scope: _RequestScope | None) -> dict:
        breaker = self._breakers["assert"]
        if not breaker.allow():
            self.stats.breaker_rejected_total += 1
            return error_response(
                request_id, "breaker-open",
                f"assert circuit breaker is {breaker.state} after "
                f"{breaker.threshold} consecutive failures",
                retry_after=round(breaker.retry_after(), 3))
        # Same probe contract as _serve_ask: a claimed half-open probe
        # is resolved on every path -- verdict-less exits release it.
        probe = breaker.probing
        denied = self._admit(level)
        if denied is not None:
            if probe:
                breaker.release_probe()
            return error_response(request_id, denied["code"],
                                  denied["message"],
                                  retry_after=denied["retry_after"])
        if scope is not None:
            scope.mark("admission_s", scope.started)
            scope.query = request["clause"]
        timeout_s = self._request_timeout(request, conn)
        started = perf_counter()
        loop = asyncio.get_running_loop()
        try:
            async with self._rw.write():
                self.stats.observe_lock_wait(
                    "write", perf_counter() - started)
                if scope is not None:
                    scope.mark("lock_wait_s", started)
                # The write side drained every reader: no ask is mid-flight
                # over the database while the clause lands, and the version
                # bump below is the next snapshot readers will see.
                #
                # Deadlines gate asserts only *before* the engine runs: an
                # assert is never cancelled mid-flight, because by the time
                # the deadline could trip, the journal may already hold the
                # record -- and an acknowledged-on-disk but
                # reported-dead-to-the-client write is the worst outcome.
                if (timeout_s is not None
                        and perf_counter() - started > timeout_s):
                    self.stats.errors_total += 1
                    self.stats.deadline_total += 1
                    return error_response(
                        request_id, "deadline",
                        f"deadline of {timeout_s}s passed while waiting "
                        "for the write lock; clause not applied")
                pool_started = perf_counter()
                async with self.pool.lease(clearance) as session:
                    if scope is not None:
                        scope.mark("pool_wait_s", pool_started)
                    engine_started = perf_counter()
                    await loop.run_in_executor(
                        self._threads,
                        functools.partial(session.assert_clause,
                                          request["clause"],
                                          strict=bool(request.get("strict"))))
                    if scope is not None:
                        scope.mark("engine_s", engine_started)
                version = self.root.database.version
            self.stats.asserts_total += 1
            self.stats.completed_total += 1
            breaker.record_success()
            return ok_response(request_id, version=version)
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except JournalError as exc:
            # Durability failing (full disk, fsync fault) is a server
            # problem, not a client one: it counts against the breaker so
            # repeated failures start failing fast instead of grinding
            # every client through the same broken disk.
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self._release(level)
            if probe:
                breaker.release_probe()

    # -- dashboard -----------------------------------------------------
    def metrics_text(self) -> str:
        """The serving dashboard in Prometheus text exposition format."""
        return self.stats.render_prometheus(
            pool=self.pool, breakers=self._breakers,
            write_queue_depth=self._rw.waiting_writers)


async def serve(source, config: ServerConfig | None = None,
                http: bool = False, **overrides) -> MultiLogServer:
    """Convenience: build and start a server; caller owns ``stop()``."""
    server = MultiLogServer(source, config, **overrides)
    await server.start()
    if http:
        await server.start_http()
    return server
