"""The asyncio MultiLog server: thousands of clients, one database.

Architecture (docs/SERVING.md has the full walkthrough)::

    clients --newline-framed JSON--> MultiLogServer
                                        |  admission control (shed / degrade)
                                        |  read-write lock (snapshot isolation)
                                        v
                     SessionPool -- exclusive with_clearance() siblings
                                        |
                                        v
                        one shared MultiLogDatabase (+ journal)

* **Reads** (``ask``) take the read side of an asyncio read-write lock
  and run on a thread pool; any number proceed concurrently.  Because
  writers are excluded while any read is in flight, ``database.version``
  is frozen for the whole ask -- every answer is computed against exactly
  one version, which the response reports (snapshot isolation riding the
  existing version counter; the engine caches are already keyed on it).
* **Writes** (``assert``) take the write side -- they wait for in-flight
  reads to drain, run one at a time, and go through
  ``MultiLogSession.assert_clause`` so Definition 5.3 validation,
  atomic rollback and the PR 4 write-ahead journal all apply unchanged.
  The lock is write-preferring: a waiting writer blocks new readers, so
  sustained ask traffic cannot starve asserts.
* **Admission control** keeps the queue bounded instead of letting load
  build unboundedly: past ``max_inflight`` requests are **shed** with a
  ``shed`` error (transient -- clients retry after backoff); past
  ``degrade_at * max_inflight`` asks are served **degraded** through the
  :class:`~repro.resilience.ResilientExecutor` under ``shed_budget``,
  returning partial answers flagged ``complete: false`` rather than
  queuing for a full evaluation (the PR 2 budget + PR 4 PartialResult
  ladder, promoted to a serving policy).
* **Observability**: every request feeds a per-op latency histogram and
  the ``multilog_serving_*`` Prometheus counters
  (accepted/shed/degraded/inflight/...); with ``audit=True`` every
  pooled session funnels into one server-wide
  :class:`~repro.obs.audit.AuditLog`, so cross-clearance leak checks see
  all levels at once (the CI smoke job asserts the trail is leak-free
  under 200 concurrent clients).
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import (
    LatticeError,
    MultiLogSyntaxError,
    ProtocolError,
    ReproError,
    SessionBusyError,
)
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.session import MultiLogSession
from repro.obs.audit import AuditLog
from repro.obs.budget import EvaluationBudget
from repro.obs.histogram import HistogramSet
from repro.serving.pool import SessionPool
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)

#: budget applied to degraded asks when the config leaves it unset: deep
#: enough for the paper-scale workloads, shallow enough that an overload
#: cannot pin a worker thread for long.
DEFAULT_SHED_BUDGET = EvaluationBudget(max_derived_rows=200_000,
                                       max_rounds=500, timeout_s=2.0)


@dataclass
class ServerConfig:
    """Tunables of one :class:`MultiLogServer` (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off ``server.address``
    clearance: str | None = None
    backend: str | None = None
    journal: str | None = None
    engine: str = "operational"
    #: hard admission cap: requests past this many in flight are shed.
    max_inflight: int = 64
    #: fraction of ``max_inflight`` past which asks run degraded
    #: (budgeted, partial answers allowed) instead of full evaluations.
    degrade_at: float = 0.75
    #: budget for degraded asks (``None`` -> :data:`DEFAULT_SHED_BUDGET`).
    shed_budget: EvaluationBudget | None = None
    max_sessions_per_clearance: int = 32
    #: worker threads the blocking engine calls run on.  The engine is
    #: pure Python (GIL-bound), so a handful is plenty; more threads buy
    #: fairness between requests, not throughput.
    workers: int = 8
    audit: bool = True
    max_line_bytes: int = MAX_LINE_BYTES

    def degrade_threshold(self) -> int:
        return max(1, int(self.max_inflight * self.degrade_at))


class ServingStats:
    """The serving dashboard: counters + per-op latency histograms."""

    COUNTERS = (
        ("accepted_total", "Requests admitted past admission control."),
        ("completed_total", "Requests finished with an ok response."),
        ("shed_total", "Requests dropped by admission control (overload)."),
        ("degraded_total", "Asks served degraded (budgeted partial answers)."),
        ("errors_total", "Requests answered with an error response."),
        ("asks_total", "Ask operations served."),
        ("asserts_total", "Assert operations applied."),
        ("connections_total", "Client connections accepted."),
        ("disconnects_total", "Connections dropped mid-request by the peer."),
    )

    # counter slots (one per COUNTERS row, created in __init__); declared
    # so incrementing them as plain attributes typechecks
    accepted_total: int
    completed_total: int
    shed_total: int
    degraded_total: int
    errors_total: int
    asks_total: int
    asserts_total: int
    connections_total: int
    disconnects_total: int

    def __init__(self) -> None:
        for name, _help in self.COUNTERS:
            setattr(self, name, 0)
        self.inflight = 0
        self.connections = 0
        self.histograms = HistogramSet()

    def observe(self, op: str, seconds: float) -> None:
        self.histograms.observe(f"serve[{op}]", seconds)

    def snapshot(self) -> dict:
        out = {name: getattr(self, name) for name, _help in self.COUNTERS}
        out["inflight"] = self.inflight
        out["connections"] = self.connections
        out["latency"] = self.histograms.to_dict()
        return out

    def render_prometheus(self, namespace: str = "multilog_serving",
                          pool: SessionPool | None = None) -> str:
        """Prometheus text exposition of the serving dashboard."""
        from repro.obs.export import _fmt_bound, _labels

        lines: list[str] = []
        for name, help_text in self.COUNTERS:
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {getattr(self, name)}")
        for name, help_text in (("inflight", "Requests currently in flight."),
                                ("connections", "Open client connections.")):
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {getattr(self, name)}")
        if pool is not None:
            full = f"{namespace}_pool_sessions"
            lines.append(f"# HELP {full} Pooled sessions per clearance and state.")
            lines.append(f"# TYPE {full} gauge")
            for level, counts in pool.stats().items():
                for state in ("busy", "free"):
                    labels = _labels(clearance=level, state=state)
                    lines.append(f"{full}{labels} {counts[state]}")
        if self.histograms.histograms:
            full = f"{namespace}_request_seconds"
            lines.append(f"# HELP {full} Request latency per operation.")
            lines.append(f"# TYPE {full} histogram")
            for family in self.histograms.families():
                hist = self.histograms.histograms[family]
                op = family[len("serve["):-1] if family.startswith("serve[") else family
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    labels = _labels(op=op, le=_fmt_bound(bound))
                    lines.append(f"{full}_bucket{labels} {cumulative}")
                lines.append(f"{full}_bucket{_labels(op=op, le='+Inf')} {hist.count}")
                lines.append(f"{full}_sum{_labels(op=op)} {hist.sum:.6f}")
                lines.append(f"{full}_count{_labels(op=op)} {hist.count}")
        return "\n".join(lines) + "\n"


class _ReadWriteLock:
    """Write-preferring asyncio read-write lock.

    Any number of readers proceed together; a writer waits for in-flight
    readers to drain and excludes everything while it runs.  A *waiting*
    writer blocks new readers, so sustained reads cannot starve writes.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writer or self._waiting_writers:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        async with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _Connection:
    """Per-connection state (the ``hello``-pinned default clearance)."""

    clearance: str | None = None
    peer: str = ""
    requests: int = 0
    closing: bool = field(default=False)


class MultiLogServer:
    """Serve one shared MultiLog database to many concurrent clients."""

    def __init__(self, source: str | MultiLogDatabase | MultiLogSession,
                 config: ServerConfig | None = None, **overrides):
        self.config = config if config is not None else ServerConfig()
        for key, value in overrides.items():
            if not hasattr(self.config, key):
                raise TypeError(f"unknown server config field {key!r}")
            setattr(self.config, key, value)
        if isinstance(source, MultiLogSession):
            self.root = source
        else:
            self.root = MultiLogSession(source, self.config.clearance,
                                        backend=self.config.backend)
        if self.config.journal is not None and self.root.journal is None:
            self.root.attach_journal(self.config.journal)
        self.audit: AuditLog | None = None
        if self.config.audit:
            self.audit = self.root.enable_audit()
        self.stats = ServingStats()
        self.pool = SessionPool(
            self.root,
            max_per_clearance=self.config.max_sessions_per_clearance,
            on_create=self._setup_session)
        self._rw = _ReadWriteLock()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="multilog-serve")
        self._shed_budget = (self.config.shed_budget
                             if self.config.shed_budget is not None
                             else DEFAULT_SHED_BUDGET)
        self._server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        #: open connection-handler tasks; ``stop()`` drains them so no
        #: handler is left to be cancelled noisily at loop shutdown.
        self._conn_tasks: set[asyncio.Task] = set()

    def _setup_session(self, session: MultiLogSession) -> None:
        """Wire a fresh pooled sibling into the server-wide observability."""
        if self.audit is not None:
            session.enable_audit(self.audit)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting framed-protocol connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes + 2)
        return self.address

    async def start_http(self, host: str | None = None,
                         port: int = 0) -> tuple[str, int]:
        """Additionally serve the HTTP shim (see :mod:`repro.serving.http`)."""
        from repro.serving.http import handle_http_connection

        async def handler(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._conn_tasks.add(task)
            try:
                await handle_http_connection(self, reader, writer)
            except asyncio.CancelledError:
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

        self._http_server = await asyncio.start_server(
            handler, host if host is not None else self.config.host, port,
            limit=self.config.max_line_bytes + 2)
        return self.http_address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def http_address(self) -> tuple[str, int]:
        if self._http_server is None:
            raise RuntimeError("HTTP shim not started")
        sock = self._http_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - start() always binds
            raise RuntimeError("server not started")
        await server.serve_forever()

    async def stop(self) -> None:
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._http_server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._threads.shutdown(wait=False, cancel_futures=True)

    # -- framed-protocol connection handling ---------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # A task that *ends* cancelled trips asyncio.streams' done-callback
        # into logging a spurious "Exception in callback" on 3.11; ``stop``
        # cancels handlers on shutdown, so absorb that cancellation here.
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.stats.connections_total += 1
        self.stats.connections += 1
        conn = _Connection(peer=str(writer.get_extra_info("peername", "")))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Unframed or oversized input: answer once, hang up.
                    writer.write(encode_message(error_response(
                        None, "line-too-long",
                        f"request line exceeds {self.config.max_line_bytes} bytes")))
                    await writer.drain()
                    break
                if not line:
                    break  # peer closed cleanly
                if not line.strip():
                    continue
                response = await self.handle_line(line, conn)
                writer.write(encode_message(response))
                await writer.drain()
                if conn.closing:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            # Mid-request disconnect: the request (if any) already ran to
            # completion and its session went back to the pool; all that
            # is lost is the response bytes.
            self.stats.disconnects_total += 1
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self.stats.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def handle_line(self, line: bytes, conn: _Connection | None = None) -> dict:
        """Decode one framed request line and dispatch it."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.stats.errors_total += 1
            return error_response(None, exc.code, str(exc))
        return await self.dispatch(request, conn)

    # -- dispatch ------------------------------------------------------
    async def dispatch(self, request: dict, conn: _Connection | None = None) -> dict:
        """Serve one validated request (shared by framed and HTTP paths)."""
        op = request["op"]
        request_id = request.get("id")
        if conn is not None:
            conn.requests += 1
        clearance = request.get("clearance")
        if clearance is None and conn is not None:
            clearance = conn.clearance
        started = perf_counter()
        try:
            if op == "hello":
                if request.get("clearance") is not None and conn is not None:
                    try:
                        self.root.lattice.check_level(request["clearance"])
                    except LatticeError as exc:
                        self.stats.errors_total += 1
                        return error_response(request_id, "bad-clearance", str(exc))
                    conn.clearance = request["clearance"]
                return ok_response(
                    request_id, server=PROTOCOL_VERSION,
                    clearance=str(clearance or self.root.clearance),
                    backend=self.root.backend,
                    version=self.root.database.version,
                    levels=sorted(str(level) for level
                                  in self.root.lattice.levels))
            if op == "ping":
                return ok_response(request_id,
                                   version=self.root.database.version)
            if op == "metrics":
                return ok_response(request_id, text=self.metrics_text())
            if op == "audit":
                events = self.audit.to_dicts() if self.audit is not None else []
                return ok_response(request_id, events=events,
                                   enabled=self.audit is not None)
            if op == "ask":
                return await self._serve_ask(request, request_id, clearance)
            if op == "assert":
                return await self._serve_assert(request, request_id, clearance)
            self.stats.errors_total += 1
            return error_response(request_id, "unknown-op", f"unknown op {op!r}")
        finally:
            self.stats.observe(op, perf_counter() - started)

    # -- the two data paths --------------------------------------------
    def _admit(self) -> bool:
        """Admission control: count the request in, or shed it."""
        if self.stats.inflight >= self.config.max_inflight:
            self.stats.shed_total += 1
            return False
        self.stats.inflight += 1
        self.stats.accepted_total += 1
        return True

    async def _serve_ask(self, request: dict, request_id, clearance) -> dict:
        if not self._admit():
            return error_response(
                request_id, "shed",
                f"server at capacity ({self.config.max_inflight} in flight); "
                "retry after backoff")
        engine = request.get("engine") or self.config.engine
        degrade = self.stats.inflight >= self.config.degrade_threshold()
        loop = asyncio.get_running_loop()
        try:
            async with self._rw.read():
                # Writers are excluded while we hold the read side, so the
                # version is the snapshot every answer is computed at.
                version = self.root.database.version
                async with self.pool.lease(clearance) as session:
                    if degrade:
                        answers, degraded = await loop.run_in_executor(
                            self._threads,
                            functools.partial(self._degraded_ask, session,
                                              request["query"], engine))
                    else:
                        answers = await loop.run_in_executor(
                            self._threads,
                            functools.partial(session.ask, request["query"],
                                              engine=engine))
                        degraded = None
            self.stats.asks_total += 1
            self.stats.completed_total += 1
            if degraded is not None:
                self.stats.degraded_total += 1
                return ok_response(request_id, answers=answers, version=version,
                                   complete=False, degraded=degraded,
                                   engine=engine)
            return ok_response(request_id, answers=answers, version=version,
                               complete=True, engine=engine)
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            # Should be impossible behind the pool's exclusive checkout;
            # if it surfaces, report it as its own code so it is visible.
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001 -- server must not die
            self.stats.errors_total += 1
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self.stats.inflight -= 1

    def _degraded_ask(self, session, query: str, engine: str):
        """One budgeted ask that prefers partial answers over queueing.

        Runs on a worker thread.  Returns ``(answers, degraded)`` where
        ``degraded`` is ``None`` for a complete result and the
        ``rung:reason`` string for a salvaged partial one.
        """
        from repro.resilience import PartialResult, ResilientExecutor

        executor = ResilientExecutor(allow_partial=True,
                                     budget=self._shed_budget)
        saved = session.budget
        session.budget = self._shed_budget
        try:
            result = executor.ask(session, query, engine=engine)
        finally:
            session.budget = saved
        if isinstance(result, PartialResult):
            return result.answers or [], f"{result.rung}:{result.reason}"
        return result, None

    async def _serve_assert(self, request: dict, request_id, clearance) -> dict:
        if not self._admit():
            return error_response(
                request_id, "shed",
                f"server at capacity ({self.config.max_inflight} in flight); "
                "retry after backoff")
        loop = asyncio.get_running_loop()
        try:
            async with self._rw.write():
                # The write side drained every reader: no ask is mid-flight
                # over the database while the clause lands, and the version
                # bump below is the next snapshot readers will see.
                async with self.pool.lease(clearance) as session:
                    await loop.run_in_executor(
                        self._threads,
                        functools.partial(session.assert_clause,
                                          request["clause"],
                                          strict=bool(request.get("strict"))))
                version = self.root.database.version
            self.stats.asserts_total += 1
            self.stats.completed_total += 1
            return ok_response(request_id, version=version)
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001
            self.stats.errors_total += 1
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self.stats.inflight -= 1

    # -- dashboard -----------------------------------------------------
    def metrics_text(self) -> str:
        """The serving dashboard in Prometheus text exposition format."""
        return self.stats.render_prometheus(pool=self.pool)


async def serve(source, config: ServerConfig | None = None,
                http: bool = False, **overrides) -> MultiLogServer:
    """Convenience: build and start a server; caller owns ``stop()``."""
    server = MultiLogServer(source, config, **overrides)
    await server.start()
    if http:
        await server.start_http()
    return server
