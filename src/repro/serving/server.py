"""The asyncio MultiLog server: thousands of clients, one database.

Architecture (docs/SERVING.md has the full walkthrough)::

    clients --newline-framed JSON--> MultiLogServer
                                        |  admission control (shed / degrade)
                                        |  read-write lock (snapshot isolation)
                                        v
                     SessionPool -- exclusive with_clearance() siblings
                                        |
                                        v
                        one shared MultiLogDatabase (+ journal)

* **Reads** (``ask``) take the read side of an asyncio read-write lock
  and run on a thread pool; any number proceed concurrently.  Because
  writers are excluded while any read is in flight, ``database.version``
  is frozen for the whole ask -- every answer is computed against exactly
  one version, which the response reports (snapshot isolation riding the
  existing version counter; the engine caches are already keyed on it).
* **Writes** (``assert``) take the write side -- they wait for in-flight
  reads to drain, run one at a time, and go through
  ``MultiLogSession.assert_clause`` so Definition 5.3 validation,
  atomic rollback and the PR 4 write-ahead journal all apply unchanged.
  The lock is write-preferring: a waiting writer blocks new readers, so
  sustained ask traffic cannot starve asserts.
* **Admission control** keeps the queue bounded instead of letting load
  build unboundedly: past ``max_inflight`` requests are **shed** with a
  ``shed`` error (transient -- clients retry after backoff); past
  ``degrade_at * max_inflight`` asks are served **degraded** through the
  :class:`~repro.resilience.ResilientExecutor` under ``shed_budget``,
  returning partial answers flagged ``complete: false`` rather than
  queuing for a full evaluation (the PR 2 budget + PR 4 PartialResult
  ladder, promoted to a serving policy).
* **Observability**: every request feeds a per-op latency histogram and
  the ``multilog_serving_*`` Prometheus counters
  (accepted/shed/degraded/inflight/...); with ``audit=True`` every
  pooled session funnels into one server-wide
  :class:`~repro.obs.audit.AuditLog`, so cross-clearance leak checks see
  all levels at once (the CI smoke job asserts the trail is leak-free
  under 200 concurrent clients).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import (
    BudgetExceededError,
    JournalError,
    LatticeError,
    MultiLogSyntaxError,
    ProtocolError,
    ReproError,
    SessionBusyError,
)
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.session import MultiLogSession
from repro.obs.audit import AuditLog
from repro.obs.budget import EvaluationBudget
from repro.obs.histogram import HistogramSet
from repro.resilience.checkpoint import CheckpointPolicy
from repro.serving.breaker import CircuitBreaker
from repro.serving.pool import SessionPool
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)

#: backoff hint (seconds) sent with transient rejections (shed/quota/
#: draining) -- matches the HTTP shim's ``Retry-After: 1``.
RETRY_AFTER_S = 1.0

#: budget applied to degraded asks when the config leaves it unset: deep
#: enough for the paper-scale workloads, shallow enough that an overload
#: cannot pin a worker thread for long.
DEFAULT_SHED_BUDGET = EvaluationBudget(max_derived_rows=200_000,
                                       max_rounds=500, timeout_s=2.0)


@dataclass
class ServerConfig:
    """Tunables of one :class:`MultiLogServer` (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off ``server.address``
    clearance: str | None = None
    backend: str | None = None
    journal: str | None = None
    engine: str = "operational"
    #: hard admission cap: requests past this many in flight are shed.
    max_inflight: int = 64
    #: fraction of ``max_inflight`` past which asks run degraded
    #: (budgeted, partial answers allowed) instead of full evaluations.
    degrade_at: float = 0.75
    #: budget for degraded asks (``None`` -> :data:`DEFAULT_SHED_BUDGET`).
    shed_budget: EvaluationBudget | None = None
    max_sessions_per_clearance: int = 32
    #: worker threads the blocking engine calls run on.  The engine is
    #: pure Python (GIL-bound), so a handful is plenty; more threads buy
    #: fairness between requests, not throughput.
    workers: int = 8
    audit: bool = True
    max_line_bytes: int = MAX_LINE_BYTES
    #: server-side default deadline applied when neither the request nor
    #: the connection ``hello`` named one (``None`` = no deadline).
    default_timeout_s: float | None = None
    #: per-clearance admission quotas layered *under* ``max_inflight``:
    #: ``{"u": 16}`` caps unclassified traffic at 16 in flight while
    #: other levels still share the global cap.  ``None``/missing level
    #: = no per-level cap.
    clearance_quotas: dict[str, int] | None = None
    #: consecutive server-side failures of one op before its circuit
    #: breaker opens.
    breaker_threshold: int = 8
    #: seconds an open breaker waits before admitting a half-open probe.
    breaker_reset_s: float = 5.0
    #: checkpoint the journal after this many clause records since the
    #: last snapshot (``None`` disables the record threshold).
    checkpoint_records: int | None = 1000
    #: ... or once the journal file exceeds this many bytes.
    checkpoint_bytes: int | None = 4 * 1024 * 1024
    #: cadence of the background checkpointer's threshold poll.
    checkpoint_poll_s: float = 0.25
    #: how long :meth:`MultiLogServer.drain` waits for inflight requests.
    drain_timeout_s: float = 10.0

    def degrade_threshold(self) -> int:
        return max(1, int(self.max_inflight * self.degrade_at))

    def checkpoint_policy(self) -> CheckpointPolicy:
        return CheckpointPolicy(max_records=self.checkpoint_records,
                                max_bytes=self.checkpoint_bytes)


class ServingStats:
    """The serving dashboard: counters + per-op latency histograms."""

    COUNTERS = (
        ("accepted_total", "Requests admitted past admission control."),
        ("completed_total", "Requests finished with an ok response."),
        ("shed_total", "Requests dropped by admission control (overload)."),
        ("quota_shed_total", "Requests dropped by a per-clearance quota."),
        ("degraded_total", "Asks served degraded (budgeted partial answers)."),
        ("deadline_total", "Requests aborted by their timeout_s deadline."),
        ("cancelled_total", "Asks cancelled after the client disconnected."),
        ("breaker_rejected_total", "Requests rejected by an open breaker."),
        ("errors_total", "Requests answered with an error response."),
        ("asks_total", "Ask operations served."),
        ("asserts_total", "Assert operations applied."),
        ("connections_total", "Client connections accepted."),
        ("disconnects_total", "Connections dropped mid-request by the peer."),
        ("checkpoints_total", "Journal checkpoints taken."),
        ("checkpoint_failures_total", "Journal checkpoints that failed."),
    )

    # counter slots (one per COUNTERS row, created in __init__); declared
    # so incrementing them as plain attributes typechecks
    accepted_total: int
    completed_total: int
    shed_total: int
    quota_shed_total: int
    degraded_total: int
    deadline_total: int
    cancelled_total: int
    breaker_rejected_total: int
    errors_total: int
    asks_total: int
    asserts_total: int
    connections_total: int
    disconnects_total: int
    checkpoints_total: int
    checkpoint_failures_total: int

    def __init__(self) -> None:
        for name, _help in self.COUNTERS:
            setattr(self, name, 0)
        self.inflight = 0
        self.connections = 0
        self.inflight_by_clearance: dict[str, int] = {}
        self.histograms = HistogramSet()

    def observe(self, op: str, seconds: float) -> None:
        self.histograms.observe(f"serve[{op}]", seconds)

    def snapshot(self) -> dict:
        out = {name: getattr(self, name) for name, _help in self.COUNTERS}
        out["inflight"] = self.inflight
        out["connections"] = self.connections
        out["inflight_by_clearance"] = dict(self.inflight_by_clearance)
        out["latency"] = self.histograms.to_dict()
        return out

    def render_prometheus(self, namespace: str = "multilog_serving",
                          pool: SessionPool | None = None,
                          breakers: dict[str, CircuitBreaker] | None = None,
                          ) -> str:
        """Prometheus text exposition of the serving dashboard."""
        from repro.obs.export import _fmt_bound, _labels

        lines: list[str] = []
        for name, help_text in self.COUNTERS:
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {getattr(self, name)}")
        for name, help_text in (("inflight", "Requests currently in flight."),
                                ("connections", "Open client connections.")):
            full = f"{namespace}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {getattr(self, name)}")
        if self.inflight_by_clearance:
            full = f"{namespace}_inflight_by_clearance"
            lines.append(f"# HELP {full} Requests in flight per clearance.")
            lines.append(f"# TYPE {full} gauge")
            for level in sorted(self.inflight_by_clearance):
                labels = _labels(clearance=level)
                lines.append(
                    f"{full}{labels} {self.inflight_by_clearance[level]}")
        if breakers:
            full = f"{namespace}_breaker_state"
            lines.append(f"# HELP {full} Circuit breaker state per op "
                         "(0=closed, 1=half-open, 2=open).")
            lines.append(f"# TYPE {full} gauge")
            for op in sorted(breakers):
                lines.append(f"{full}{_labels(op=op)} "
                             f"{breakers[op].state_code}")
            full = f"{namespace}_breaker_opened_total"
            lines.append(f"# HELP {full} Times each breaker tripped open.")
            lines.append(f"# TYPE {full} counter")
            for op in sorted(breakers):
                lines.append(f"{full}{_labels(op=op)} "
                             f"{breakers[op].opened_total}")
        if pool is not None:
            full = f"{namespace}_pool_sessions"
            lines.append(f"# HELP {full} Pooled sessions per clearance and state.")
            lines.append(f"# TYPE {full} gauge")
            for level, counts in pool.stats().items():
                for state in ("busy", "free"):
                    labels = _labels(clearance=level, state=state)
                    lines.append(f"{full}{labels} {counts[state]}")
        if self.histograms.histograms:
            full = f"{namespace}_request_seconds"
            lines.append(f"# HELP {full} Request latency per operation.")
            lines.append(f"# TYPE {full} histogram")
            for family in self.histograms.families():
                hist = self.histograms.histograms[family]
                op = family[len("serve["):-1] if family.startswith("serve[") else family
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    labels = _labels(op=op, le=_fmt_bound(bound))
                    lines.append(f"{full}_bucket{labels} {cumulative}")
                lines.append(f"{full}_bucket{_labels(op=op, le='+Inf')} {hist.count}")
                lines.append(f"{full}_sum{_labels(op=op)} {hist.sum:.6f}")
                lines.append(f"{full}_count{_labels(op=op)} {hist.count}")
        return "\n".join(lines) + "\n"


class _ReadWriteLock:
    """Write-preferring asyncio read-write lock.

    Any number of readers proceed together; a writer waits for in-flight
    readers to drain and excludes everything while it runs.  A *waiting*
    writer blocks new readers, so sustained reads cannot starve writes.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writer or self._waiting_writers:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        async with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _Connection:
    """Per-connection state (the ``hello``-pinned defaults)."""

    clearance: str | None = None
    peer: str = ""
    requests: int = 0
    closing: bool = field(default=False)
    #: default deadline pinned by ``hello`` (per-request override wins).
    timeout_s: float | None = None


class MultiLogServer:
    """Serve one shared MultiLog database to many concurrent clients."""

    def __init__(self, source: str | MultiLogDatabase | MultiLogSession,
                 config: ServerConfig | None = None, **overrides):
        self.config = config if config is not None else ServerConfig()
        for key, value in overrides.items():
            if not hasattr(self.config, key):
                raise TypeError(f"unknown server config field {key!r}")
            setattr(self.config, key, value)
        if isinstance(source, MultiLogSession):
            self.root = source
        else:
            self.root = MultiLogSession(source, self.config.clearance,
                                        backend=self.config.backend)
        if self.config.journal is not None and self.root.journal is None:
            self.root.attach_journal(self.config.journal)
        self.audit: AuditLog | None = None
        if self.config.audit:
            self.audit = self.root.enable_audit()
        self.stats = ServingStats()
        self.pool = SessionPool(
            self.root,
            max_per_clearance=self.config.max_sessions_per_clearance,
            on_create=self._setup_session)
        self._rw = _ReadWriteLock()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="multilog-serve")
        self._shed_budget = (self.config.shed_budget
                             if self.config.shed_budget is not None
                             else DEFAULT_SHED_BUDGET)
        self._server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        #: open connection-handler tasks; ``stop()`` drains them so no
        #: handler is left to be cancelled noisily at loop shutdown.
        self._conn_tasks: set[asyncio.Task] = set()
        #: per-op circuit breakers (consecutive server-side failures).
        self._breakers: dict[str, CircuitBreaker] = {
            op: CircuitBreaker(threshold=self.config.breaker_threshold,
                               reset_s=self.config.breaker_reset_s)
            for op in ("ask", "assert")}
        #: graceful-shutdown flag: set by :meth:`drain`, checked by
        #: admission control and ``/healthz``.
        self._draining = False
        self._checkpoint_task: asyncio.Task | None = None

    def _setup_session(self, session: MultiLogSession) -> None:
        """Wire a fresh pooled sibling into the server-wide observability."""
        if self.audit is not None:
            session.enable_audit(self.audit)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting framed-protocol connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes + 2)
        if (self.root.journal is not None
                and self.config.checkpoint_policy().enabled
                and self._checkpoint_task is None):
            self._checkpoint_task = asyncio.ensure_future(
                self._checkpoint_loop())
        return self.address

    async def start_http(self, host: str | None = None,
                         port: int = 0) -> tuple[str, int]:
        """Additionally serve the HTTP shim (see :mod:`repro.serving.http`)."""
        from repro.serving.http import handle_http_connection

        async def handler(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._conn_tasks.add(task)
            try:
                await handle_http_connection(self, reader, writer)
            except asyncio.CancelledError:
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

        self._http_server = await asyncio.start_server(
            handler, host if host is not None else self.config.host, port,
            limit=self.config.max_line_bytes + 2)
        return self.http_address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def http_address(self) -> tuple[str, int]:
        if self._http_server is None:
            raise RuntimeError("HTTP shim not started")
        sock = self._http_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - start() always binds
            raise RuntimeError("server not started")
        await server.serve_forever()

    async def stop(self) -> None:
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._http_server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._threads.shutdown(wait=False, cancel_futures=True)

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: stop admitting, drain inflight, checkpoint.

        Sets the server ``draining`` (new requests are rejected with the
        ``draining`` code, ``/healthz`` turns 503), closes the listening
        sockets, waits up to ``timeout_s`` (default
        ``config.drain_timeout_s``) for inflight requests to finish, and
        takes a final journal checkpoint so a restart replays one
        snapshot instead of the whole history.  Returns ``True`` when
        everything in flight completed within the deadline.  The caller
        still owns :meth:`stop` for closing connections and threads.
        """
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        self._draining = True
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while self.stats.inflight and loop.time() < deadline:
            await asyncio.sleep(0.02)
        drained = self.stats.inflight == 0
        if self.root.journal is not None:
            await self.checkpoint()
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def health(self) -> str:
        """``healthy``, ``degraded`` or ``draining`` (for ``/healthz``)."""
        if self._draining:
            return "draining"
        if self.stats.inflight >= self.config.degrade_threshold():
            return "degraded"
        if any(breaker.state != "closed"
               for breaker in self._breakers.values()):
            return "degraded"
        return "healthy"

    # -- background checkpointing --------------------------------------
    async def _checkpoint_loop(self) -> None:
        """Poll the journal's accumulation; compact when the policy says.

        Runs as a background task for the server's lifetime.  The
        threshold check runs on a worker thread (it stats the file); the
        compaction itself runs under the write lock so no assert is
        mid-flight while the journal is replaced -- SIGKILL at any
        instant leaves either the old journal or the new snapshot.
        """
        journal = self.root.journal
        if journal is None:
            return
        policy = self.config.checkpoint_policy()
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.checkpoint_poll_s)
            due = await loop.run_in_executor(
                self._threads,
                functools.partial(self._checkpoint_due, journal, policy))
            if due:
                await self.checkpoint()

    def _checkpoint_due(self, journal, policy: CheckpointPolicy) -> bool:
        records, size = journal.checkpoint_stats()
        return policy.due(records, size)

    def _checkpoint_sync(self, journal) -> None:
        journal.compact(self.root.database)

    async def checkpoint(self) -> bool:
        """Compact the journal now (under the write lock); True on success."""
        journal = self.root.journal
        if journal is None:
            return False
        loop = asyncio.get_running_loop()
        async with self._rw.write():
            try:
                await loop.run_in_executor(
                    self._threads,
                    functools.partial(self._checkpoint_sync, journal))
            except Exception:  # noqa: BLE001 -- checkpointing must not kill
                self.stats.checkpoint_failures_total += 1
                return False
        self.stats.checkpoints_total += 1
        return True

    # -- framed-protocol connection handling ---------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # A task that *ends* cancelled trips asyncio.streams' done-callback
        # into logging a spurious "Exception in callback" on 3.11; ``stop``
        # cancels handlers on shutdown, so absorb that cancellation here.
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.stats.connections_total += 1
        self.stats.connections += 1
        conn = _Connection(peer=str(writer.get_extra_info("peername", "")))
        next_line: asyncio.Task | None = None
        try:
            while True:
                if next_line is None:
                    next_line = asyncio.ensure_future(reader.readline())
                try:
                    line = await next_line
                except (asyncio.LimitOverrunError, ValueError):
                    # Unframed or oversized input: answer once, hang up.
                    next_line = None
                    writer.write(encode_message(error_response(
                        None, "line-too-long",
                        f"request line exceeds {self.config.max_line_bytes} bytes")))
                    await writer.drain()
                    break
                next_line = None
                if not line:
                    break  # peer closed cleanly
                if not line.strip():
                    continue
                # Read ahead before serving: the pending readline is both
                # the pipelining queue (a client may send its next request
                # without waiting) and the disconnect probe -- it resolving
                # to EOF mid-request means the peer is gone, so the
                # watcher flips the cancel event and the evaluation aborts
                # inside the engine instead of burning a worker thread.
                next_line = asyncio.ensure_future(reader.readline())
                cancel = threading.Event()
                watcher = asyncio.ensure_future(
                    self._peer_watch(next_line, cancel))
                try:
                    response = await self.handle_line(line, conn, cancel)
                finally:
                    watcher.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await watcher
                writer.write(encode_message(response))
                await writer.drain()
                if conn.closing:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            # Mid-request disconnect: the request (if any) already ran to
            # completion and its session went back to the pool; all that
            # is lost is the response bytes.
            self.stats.disconnects_total += 1
        finally:
            if next_line is not None:
                next_line.cancel()
                await asyncio.gather(next_line, return_exceptions=True)
            if task is not None:
                self._conn_tasks.discard(task)
            self.stats.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _peer_watch(self, read_task: "asyncio.Task[bytes]",
                          cancel: threading.Event) -> None:
        """Flip ``cancel`` if the pending read resolves to EOF/error.

        ``read_task`` is the connection loop's read-ahead for the *next*
        request; it completing empty while the current request is being
        served means the client hung up.  Shielded so cancelling the
        watcher (the normal end of every request) leaves the read-ahead
        running.
        """
        try:
            line = await asyncio.shield(read_task)
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, EOFError, OSError):
            # IncompleteReadError is an EOFError; Connection*/BrokenPipe
            # are OSErrors -- all mean the peer is gone.
            cancel.set()
            return
        except Exception:  # noqa: BLE001
            # LimitOverrunError/ValueError: the *next* pipelined line is
            # oversized or unframed.  The peer is still connected and
            # still owed the current response, so don't cancel; the
            # connection loop answers line-too-long and hangs up after
            # the in-flight request completes.
            return
        if not line:
            cancel.set()

    async def handle_line(self, line: bytes, conn: _Connection | None = None,
                          cancel: threading.Event | None = None) -> dict:
        """Decode one framed request line and dispatch it."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.stats.errors_total += 1
            return error_response(None, exc.code, str(exc))
        return await self.dispatch(request, conn, cancel)

    # -- dispatch ------------------------------------------------------
    def _request_timeout(self, request: dict,
                         conn: _Connection | None) -> float | None:
        """Effective deadline: request > connection hello > server default."""
        timeout = request.get("timeout_s")
        if timeout is None and conn is not None:
            timeout = conn.timeout_s
        if timeout is None:
            timeout = self.config.default_timeout_s
        return timeout

    async def dispatch(self, request: dict, conn: _Connection | None = None,
                       cancel: threading.Event | None = None) -> dict:
        """Serve one validated request (shared by framed and HTTP paths)."""
        op = request["op"]
        request_id = request.get("id")
        if conn is not None:
            conn.requests += 1
        clearance = request.get("clearance")
        if clearance is None and conn is not None:
            clearance = conn.clearance
        started = perf_counter()
        try:
            if op == "hello":
                if request.get("clearance") is not None and conn is not None:
                    try:
                        self.root.lattice.check_level(request["clearance"])
                    except LatticeError as exc:
                        self.stats.errors_total += 1
                        return error_response(request_id, "bad-clearance", str(exc))
                    conn.clearance = request["clearance"]
                if request.get("timeout_s") is not None and conn is not None:
                    conn.timeout_s = float(request["timeout_s"])
                return ok_response(
                    request_id, server=PROTOCOL_VERSION,
                    clearance=str(clearance or self.root.clearance),
                    backend=self.root.backend,
                    version=self.root.database.version,
                    status=self.health,
                    levels=sorted(str(level) for level
                                  in self.root.lattice.levels))
            if op == "ping":
                return ok_response(request_id,
                                   version=self.root.database.version,
                                   status=self.health)
            if op == "metrics":
                return ok_response(request_id, text=self.metrics_text())
            if op == "audit":
                events = self.audit.to_dicts() if self.audit is not None else []
                return ok_response(request_id, events=events,
                                   enabled=self.audit is not None)
            if op == "ask":
                return await self._serve_ask(request, request_id, clearance,
                                             conn, cancel)
            if op == "assert":
                return await self._serve_assert(request, request_id,
                                                clearance, conn)
            self.stats.errors_total += 1
            return error_response(request_id, "unknown-op", f"unknown op {op!r}")
        finally:
            self.stats.observe(op, perf_counter() - started)

    # -- the two data paths --------------------------------------------
    def _level_of(self, clearance) -> str:
        return str(clearance if clearance is not None else self.root.clearance)

    def _admit(self, level: str) -> dict | None:
        """Admission control: count the request in, or explain the drop.

        Returns ``None`` on admission (caller owns :meth:`_release`) or
        ``{"code", "message", "retry_after"}`` describing the rejection.
        Order: draining beats the global cap beats per-clearance quotas,
        so a drained server reports *why* uniformly.
        """
        if self._draining:
            return {"code": "draining",
                    "message": "server is draining for shutdown; "
                               "retry against another replica",
                    "retry_after": RETRY_AFTER_S}
        if self.stats.inflight >= self.config.max_inflight:
            self.stats.shed_total += 1
            return {"code": "shed",
                    "message": f"server at capacity "
                               f"({self.config.max_inflight} in flight); "
                               "retry after backoff",
                    "retry_after": RETRY_AFTER_S}
        quotas = self.config.clearance_quotas
        if quotas is not None:
            cap = quotas.get(level)
            if (cap is not None
                    and self.stats.inflight_by_clearance.get(level, 0) >= cap):
                self.stats.quota_shed_total += 1
                return {"code": "quota",
                        "message": f"clearance {level!r} at its admission "
                                   f"quota ({cap} in flight); retry after "
                                   "backoff",
                        "retry_after": RETRY_AFTER_S}
        self.stats.inflight += 1
        self.stats.inflight_by_clearance[level] = (
            self.stats.inflight_by_clearance.get(level, 0) + 1)
        self.stats.accepted_total += 1
        return None

    def _release(self, level: str) -> None:
        self.stats.inflight -= 1
        left = self.stats.inflight_by_clearance.get(level, 0) - 1
        if left > 0:
            self.stats.inflight_by_clearance[level] = left
        else:
            self.stats.inflight_by_clearance.pop(level, None)

    def _combine_budget(self, base: EvaluationBudget | None,
                        timeout_s: float | None,
                        cancel: threading.Event | None,
                        ) -> EvaluationBudget | None:
        """The request's effective budget: base caps + deadline + cancel."""
        if base is None:
            if timeout_s is None and cancel is None:
                return None
            base = EvaluationBudget()
        limit = base.timeout_s
        if timeout_s is not None:
            limit = timeout_s if limit is None else min(limit, timeout_s)
        return dataclasses.replace(
            base, timeout_s=limit,
            cancelled=cancel.is_set if cancel is not None else base.cancelled)

    async def _serve_ask(self, request: dict, request_id, clearance,
                         conn: _Connection | None = None,
                         cancel: threading.Event | None = None) -> dict:
        breaker = self._breakers["ask"]
        if not breaker.allow():
            self.stats.breaker_rejected_total += 1
            return error_response(
                request_id, "breaker-open",
                f"ask circuit breaker is {breaker.state} after "
                f"{breaker.threshold} consecutive failures",
                retry_after=round(breaker.retry_after(), 3))
        # If allow() just claimed the half-open probe slot, every exit
        # below must resolve it: record_success/record_failure do, and
        # the finally releases it on verdict-less paths (admission
        # denial, client errors, deadlines) so the slot cannot leak and
        # wedge the breaker half-open forever.
        probe = breaker.probing
        level = self._level_of(clearance)
        denied = self._admit(level)
        if denied is not None:
            if probe:
                breaker.release_probe()
            return error_response(request_id, denied["code"],
                                  denied["message"],
                                  retry_after=denied["retry_after"])
        engine = request.get("engine") or self.config.engine
        timeout_s = self._request_timeout(request, conn)
        degrade = self.stats.inflight >= self.config.degrade_threshold()
        loop = asyncio.get_running_loop()
        try:
            async with self._rw.read():
                # Writers are excluded while we hold the read side, so the
                # version is the snapshot every answer is computed at.
                version = self.root.database.version
                async with self.pool.lease(clearance) as session:
                    answers, degraded = await loop.run_in_executor(
                        self._threads,
                        functools.partial(self._run_ask, session,
                                          request["query"], engine, degrade,
                                          timeout_s, cancel))
            self.stats.asks_total += 1
            self.stats.completed_total += 1
            breaker.record_success()
            if degraded is not None:
                self.stats.degraded_total += 1
                return ok_response(request_id, answers=answers, version=version,
                                   complete=False, degraded=degraded,
                                   engine=engine)
            return ok_response(request_id, answers=answers, version=version,
                               complete=True, engine=engine)
        except BudgetExceededError as exc:
            # The request's own budget tripping is client-attributable:
            # it never counts against the breaker.
            self.stats.errors_total += 1
            if exc.reason == "cancelled":
                self.stats.cancelled_total += 1
                return error_response(request_id, "cancelled",
                                      "client disconnected mid-ask; "
                                      "evaluation cancelled")
            if exc.reason == "timeout" and timeout_s is not None:
                self.stats.deadline_total += 1
                return error_response(
                    request_id, "deadline",
                    f"deadline of {timeout_s}s passed: {exc}")
            return error_response(request_id, "rejected", str(exc))
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            # Should be impossible behind the pool's exclusive checkout;
            # if it surfaces, report it as its own code so it is visible.
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001 -- server must not die
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self._release(level)
            if probe:
                breaker.release_probe()

    def _run_ask(self, session, query: str, engine: str, degrade: bool,
                 timeout_s: float | None, cancel: threading.Event | None):
        """One ask on a worker thread, under the request's budget.

        Returns ``(answers, degraded)``: ``degraded`` is ``None`` for a
        complete result, the ``rung:reason`` string for a partial one
        served under overload.  The session's budget is swapped for the
        combined request budget (deadline + disconnect probe) for the
        duration -- the pool's exclusive checkout makes that safe.
        """
        from repro.resilience import PartialResult, ResilientExecutor

        saved = session.budget
        base = self._shed_budget if degrade else saved
        budget = self._combine_budget(base, timeout_s, cancel)
        session.budget = budget
        try:
            if degrade:
                executor = ResilientExecutor(allow_partial=True, budget=budget)
                result = executor.ask(session, query, engine=engine)
                if isinstance(result, PartialResult):
                    return result.answers or [], f"{result.rung}:{result.reason}"
                return result, None
            return session.ask(query, engine=engine), None
        finally:
            session.budget = saved

    async def _serve_assert(self, request: dict, request_id, clearance,
                            conn: _Connection | None = None) -> dict:
        breaker = self._breakers["assert"]
        if not breaker.allow():
            self.stats.breaker_rejected_total += 1
            return error_response(
                request_id, "breaker-open",
                f"assert circuit breaker is {breaker.state} after "
                f"{breaker.threshold} consecutive failures",
                retry_after=round(breaker.retry_after(), 3))
        # Same probe contract as _serve_ask: a claimed half-open probe
        # is resolved on every path -- verdict-less exits release it.
        probe = breaker.probing
        level = self._level_of(clearance)
        denied = self._admit(level)
        if denied is not None:
            if probe:
                breaker.release_probe()
            return error_response(request_id, denied["code"],
                                  denied["message"],
                                  retry_after=denied["retry_after"])
        timeout_s = self._request_timeout(request, conn)
        started = perf_counter()
        loop = asyncio.get_running_loop()
        try:
            async with self._rw.write():
                # The write side drained every reader: no ask is mid-flight
                # over the database while the clause lands, and the version
                # bump below is the next snapshot readers will see.
                #
                # Deadlines gate asserts only *before* the engine runs: an
                # assert is never cancelled mid-flight, because by the time
                # the deadline could trip, the journal may already hold the
                # record -- and an acknowledged-on-disk but
                # reported-dead-to-the-client write is the worst outcome.
                if (timeout_s is not None
                        and perf_counter() - started > timeout_s):
                    self.stats.errors_total += 1
                    self.stats.deadline_total += 1
                    return error_response(
                        request_id, "deadline",
                        f"deadline of {timeout_s}s passed while waiting "
                        "for the write lock; clause not applied")
                async with self.pool.lease(clearance) as session:
                    await loop.run_in_executor(
                        self._threads,
                        functools.partial(session.assert_clause,
                                          request["clause"],
                                          strict=bool(request.get("strict"))))
                version = self.root.database.version
            self.stats.asserts_total += 1
            self.stats.completed_total += 1
            breaker.record_success()
            return ok_response(request_id, version=version)
        except MultiLogSyntaxError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-query", str(exc))
        except LatticeError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "bad-clearance", str(exc))
        except SessionBusyError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "busy", str(exc))
        except JournalError as exc:
            # Durability failing (full disk, fsync fault) is a server
            # problem, not a client one: it counts against the breaker so
            # repeated failures start failing fast instead of grinding
            # every client through the same broken disk.
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal", str(exc))
        except ReproError as exc:
            self.stats.errors_total += 1
            return error_response(request_id, "rejected", str(exc))
        except Exception as exc:  # noqa: BLE001
            self.stats.errors_total += 1
            breaker.record_failure()
            return error_response(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")
        finally:
            self._release(level)
            if probe:
                breaker.release_probe()

    # -- dashboard -----------------------------------------------------
    def metrics_text(self) -> str:
        """The serving dashboard in Prometheus text exposition format."""
        return self.stats.render_prometheus(pool=self.pool,
                                            breakers=self._breakers)


async def serve(source, config: ServerConfig | None = None,
                http: bool = False, **overrides) -> MultiLogServer:
    """Convenience: build and start a server; caller owns ``stop()``."""
    server = MultiLogServer(source, config, **overrides)
    await server.start()
    if http:
        await server.start_http()
    return server
