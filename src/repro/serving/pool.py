"""Per-clearance session pools with exclusive checkout.

A :class:`MultiLogSession` is deliberately *not* reentrant -- per-ask
state (trace recorder, stats snapshot, engine caches mid-revalidation)
lives on the session for its exclusive holder, and concurrent entry
raises :class:`~repro.errors.SessionBusyError`.  The serving layer
therefore multiplexes clients over a :class:`SessionPool`: sessions are
keyed by clearance (one ``with_clearance()`` sibling family per level of
the lattice), checked out exclusively for the duration of one request,
and returned for reuse.  Sibling sessions share the database, the
journal and the **resolved** storage backend, so a pool never mixes dict
and columnar engines over one database -- the pool asserts this on every
creation as a regression guard.

Checkout blocks (async) when every session of a clearance is busy and
the per-clearance cap is reached; admission control above the pool keeps
that wait bounded (docs/SERVING.md).
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from time import perf_counter

from repro.errors import ServingError


class SessionPool:
    """Exclusive-checkout pool of sibling sessions over one database."""

    def __init__(self, root, max_per_clearance: int = 32,
                 on_create=None, on_wait=None):
        if max_per_clearance < 1:
            raise ServingError("max_per_clearance must be >= 1")
        #: the session the pool was built from; never handed out itself,
        #: it is the server's own handle (journal owner, write path).
        self.root = root
        self.max_per_clearance = max_per_clearance
        #: hook run on each freshly created sibling (the server wires the
        #: shared audit log and telemetry through it).
        self._on_create = on_create
        #: ``on_wait(level, seconds)`` called after every checkout with
        #: the time spent acquiring a session -- near-zero on a free
        #: sibling, the queueing delay when the clearance cap was hit.
        self._on_wait = on_wait
        self._free: dict[str, list] = {}
        self._busy: dict[str, int] = {}
        self._created: dict[str, int] = {}
        self._cond = asyncio.Condition()

    # ------------------------------------------------------------------
    def _make_session(self, clearance: str):
        session = self.root.with_clearance(clearance)
        if session.backend != self.root.backend:
            raise ServingError(
                f"session pool would mix storage backends over one "
                f"database: sibling at {clearance!r} resolved "
                f"{session.backend!r}, root runs {self.root.backend!r}")
        if self._on_create is not None:
            self._on_create(session)
        return session

    async def checkout(self, clearance: str | None = None):
        """An exclusively held session at ``clearance`` (default: root's).

        Reuses a free sibling, creates one up to ``max_per_clearance``,
        and otherwise waits until a sibling is checked back in.  Raises
        the underlying lattice error for an unknown clearance.
        """
        level = clearance if clearance is not None else str(self.root.clearance)
        # Validate before taking the condition: an unknown level must not
        # leave a phantom slot accounted against the cap.
        self.root.lattice.check_level(level)
        started = perf_counter()
        async with self._cond:
            while True:
                free = self._free.get(level)
                if free:
                    session = free.pop()
                    break
                if self._created.get(level, 0) < self.max_per_clearance:
                    # Creation is synchronous CPU work (admissibility
                    # re-check); account for the slot before yielding so
                    # a concurrent checkout cannot overshoot the cap.
                    self._created[level] = self._created.get(level, 0) + 1
                    try:
                        session = self._make_session(level)
                    except BaseException:
                        self._created[level] -= 1
                        self._cond.notify()
                        raise
                    break
                await self._cond.wait()
            self._busy[level] = self._busy.get(level, 0) + 1
        if self._on_wait is not None:
            self._on_wait(level, perf_counter() - started)
        return session

    async def checkin(self, session) -> None:
        """Return a checked-out session for reuse."""
        level = str(session.clearance)
        async with self._cond:
            self._busy[level] = max(0, self._busy.get(level, 0) - 1)
            self._free.setdefault(level, []).append(session)
            self._cond.notify()

    @asynccontextmanager
    async def lease(self, clearance: str | None = None):
        """``async with pool.lease(level) as session:`` checkout/checkin."""
        session = await self.checkout(clearance)
        try:
            yield session
        finally:
            await self.checkin(session)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pool occupancy per clearance (created / busy / free)."""
        return {
            level: {
                "created": created,
                "busy": self._busy.get(level, 0),
                "free": len(self._free.get(level, ())),
            }
            for level, created in sorted(self._created.items())
        }

    def sessions(self) -> list:
        """Every *free* pooled session (for aggregation; busy ones are
        their holders' business)."""
        return [session for free in self._free.values() for session in free]
