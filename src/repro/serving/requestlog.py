"""Per-request serving telemetry: access log, slow-query capture, SLOs.

Three observers the :class:`~repro.serving.server.MultiLogServer` feeds
once per request, from the single bookkeeping exit point of each data
path (docs/OBSERVABILITY.md documents the operator view):

* :class:`AccessLog` -- one structured JSONL line per request (trace id,
  op, clearance, outcome code, the admission/pool/lock/engine breakdown,
  shed/degraded/breaker flags), size-rotated on disk via
  :class:`~repro.obs.export.RotatingJsonlWriter`.  Never contains query
  text or answers: the access log is greppable operational metadata an
  operator at *any* clearance may read.
* :class:`SlowLog` -- tail-based capture: requests over a latency
  threshold (or with error outcomes) keep their full span tree, query
  text and an EXPLAIN sketch in a bounded ring buffer.  Entries are
  classified at the clearance the request ran at; :meth:`SlowLog.view`
  redacts everything content-bearing from entries above the viewer's
  level, so a LOW operator sees that a HIGH query was slow (timing,
  outcome, trace id) but never what it asked.  Every capture emits a
  ``slow_capture`` audit event -- retained query text is itself a
  cross-level access.
* :class:`SLOTracker` -- per-op rolling good/bad windows (a fast and a
  slow window, time-bucketed ring buffers) turned into burn-rate gauges:
  ``burn rate = bad_fraction / (1 - target)``, so 1.0 means "exactly
  spending the error budget" and a fast-window rate far above the slow
  one means the bleeding started just now.  The clock is injectable for
  tests.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.export import RotatingJsonlWriter


class AccessLog:
    """Size-rotated JSONL request log (one structured line per request).

    The writer is sync file I/O; the server calls :meth:`record` from
    its request bookkeeping (a handful of microseconds per line, flushed
    so ``tail -f`` works).  Schema: see docs/OBSERVABILITY.md.
    """

    def __init__(self, path: str | Path, max_bytes: int = 8 * 1024 * 1024,
                 max_files: int = 3):
        self._writer = RotatingJsonlWriter(path, max_bytes=max_bytes,
                                           max_files=max_files)

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def lines_written(self) -> int:
        return self._writer.lines_written

    @property
    def rotations(self) -> int:
        return self._writer.rotations

    @property
    def closed(self) -> bool:
        return self._writer.closed

    def record(self, entry: dict) -> None:
        self._writer.write_line(json.dumps(entry, separators=(",", ":"),
                                           default=repr))

    def close(self) -> None:
        self._writer.close()


#: keys a redacted slow-log view keeps: operational metadata only --
#: no query text, no rule labels, no span attributes, no answer counts.
_REDACTED_KEEP = ("ts", "trace_id", "op", "level", "outcome", "elapsed_ms",
                  "breakdown", "degraded")


class SlowLog:
    """Bounded ring of slow/errored request captures, lattice-redacted.

    ``threshold_s`` is the latency past which an ok request is captured;
    error outcomes are always captured (the "tail" in tail-based
    sampling includes failures).  ``capacity`` bounds memory: the oldest
    capture is dropped when a new one lands in a full ring.

    Captures carry content -- the query text, the span tree (whose
    attributes include rule labels and answer counts) and the EXPLAIN
    sketch -- classified at the clearance the request ran at.
    :meth:`view` applies the lattice: a viewer at level L gets full
    entries for captures at levels <= L and metadata-only (``redacted:
    true``) entries for the rest.  With no lattice attached, everything
    is redacted -- fail closed.
    """

    def __init__(self, capacity: int = 64, threshold_s: float = 1.0,
                 lattice=None, audit=None):
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._lattice = lattice
        self._audit = audit
        self._entries: deque[dict] = deque(maxlen=max(1, capacity))
        self.captured_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def should_capture(self, elapsed_s: float, ok: bool) -> bool:
        return (not ok) or elapsed_s >= self.threshold_s

    def capture(self, *, trace_id: str | None, op: str, level: str,
                outcome: str, elapsed_s: float, breakdown: dict,
                query: str | None = None, engine: str | None = None,
                explain: str | None = None,
                spans: list[dict] | None = None,
                degraded: bool = False) -> dict:
        """Record one capture (caller already decided it qualifies)."""
        entry: dict = {
            "ts": round(time.time(), 3),
            "trace_id": trace_id,
            "op": op,
            "level": level,
            "outcome": outcome,
            "elapsed_ms": round(elapsed_s * 1e3, 3),
            "breakdown": dict(breakdown),
            "degraded": degraded,
            "query": query,
            "engine": engine,
            "explain": explain,
            "spans": spans if spans is not None else [],
        }
        self._entries.append(entry)
        self.captured_total += 1
        if self._audit is not None:
            # Retaining query text in an inspectable buffer is itself an
            # access: leave a trail entry per capture, keyed by trace id
            # so the dedup in AuditLog keeps distinct requests distinct.
            self._audit.emit("slow_capture", subject=level,
                             trace_id=str(trace_id), op=op, outcome=outcome)
        return entry

    def view(self, viewer_level: str | None = None) -> list[dict]:
        """Captures newest-first, redacted for ``viewer_level``.

        An entry classified at level C is shown in full only when the
        lattice says ``C <= viewer_level``; otherwise every
        content-bearing field (query, explain, spans, engine) is
        stripped and the entry is marked ``redacted: true``.  ``None``
        viewer (or no lattice) redacts everything.
        """
        out: list[dict] = []
        for entry in reversed(self._entries):
            if self._visible(entry["level"], viewer_level):
                shown = dict(entry)
                shown["breakdown"] = dict(entry["breakdown"])
                shown["redacted"] = False
            else:
                shown = {key: (dict(entry[key]) if key == "breakdown"
                               else entry[key])
                         for key in _REDACTED_KEEP}
                shown["redacted"] = True
            out.append(shown)
        return out

    def _visible(self, entry_level: str, viewer_level: str | None) -> bool:
        if viewer_level is None or self._lattice is None:
            return False
        try:
            return bool(self._lattice.leq(entry_level, viewer_level))
        except Exception:  # noqa: BLE001 -- unknown level: fail closed
            return False


class _Window:
    """One rolling good/bad window as a time-bucketed ring."""

    __slots__ = ("window_s", "bucket_s", "_good", "_bad", "_stamp", "_clock")

    def __init__(self, window_s: float, buckets: int,
                 clock: Callable[[], float]):
        self.window_s = window_s
        self.bucket_s = window_s / buckets
        self._good = [0] * buckets
        self._bad = [0] * buckets
        #: bucket-epoch each slot was last written in; a stale slot is
        #: zeroed before reuse, so old traffic ages out lazily.
        self._stamp = [-1] * buckets
        self._clock = clock

    def _slot(self, now: float) -> int:
        epoch = int(now / self.bucket_s)
        index = epoch % len(self._good)
        if self._stamp[index] != epoch:
            self._stamp[index] = epoch
            self._good[index] = 0
            self._bad[index] = 0
        return index

    def record(self, good: bool) -> None:
        index = self._slot(self._clock())
        if good:
            self._good[index] += 1
        else:
            self._bad[index] += 1

    def totals(self) -> tuple[int, int]:
        """``(good, bad)`` over the live window."""
        now = self._clock()
        epoch = int(now / self.bucket_s)
        good = bad = 0
        for index in range(len(self._good)):
            age = epoch - self._stamp[index]
            if 0 <= age < len(self._good):
                good += self._good[index]
                bad += self._bad[index]
        return good, bad


class SLOMonitor:
    """Good/bad windows for one op, reduced to burn rates."""

    def __init__(self, target: float, windows: dict[str, float],
                 buckets: int, clock: Callable[[], float]):
        self.target = target
        self._windows = {name: _Window(seconds, buckets, clock)
                         for name, seconds in windows.items()}

    def record(self, good: bool) -> None:
        for window in self._windows.values():
            window.record(good)

    def burn_rates(self) -> dict[str, float]:
        budget = max(1e-9, 1.0 - self.target)
        out: dict[str, float] = {}
        for name, window in self._windows.items():
            good, bad = window.totals()
            total = good + bad
            bad_fraction = (bad / total) if total else 0.0
            out[name] = round(bad_fraction / budget, 4)
        return out

    def detail(self) -> dict[str, dict]:
        """Per-window good/bad counts + burn rate (the /healthz shape)."""
        rates = self.burn_rates()
        out: dict[str, dict] = {}
        for name, window in self._windows.items():
            good, bad = window.totals()
            out[name] = {"good": good, "bad": bad,
                         "burn_rate": rates[name],
                         "window_s": window.window_s}
        return out


class SLOTracker:
    """Per-op SLO monitors over a shared target and window pair.

    ``record(op, good)`` feeds both windows of the op's monitor
    (creating it on first sight); ``burn_rates()`` is the Prometheus
    gauge shape, ``detail()`` the /healthz shape.  A request is "good"
    when it completed ok within the op's latency objective -- the
    *server* decides that; the tracker only counts.
    """

    def __init__(self, target: float = 0.99, fast_window_s: float = 60.0,
                 slow_window_s: float = 3600.0, buckets: int = 60,
                 clock: Callable[[], float] = time.monotonic,
                 ops: Iterable[str] = ("ask", "assert")):
        self.target = target
        self._windows = {"fast": fast_window_s, "slow": slow_window_s}
        self._buckets = buckets
        self._clock = clock
        self._tracked = tuple(ops)
        self._monitors: dict[str, SLOMonitor] = {}

    def tracks(self, op: str) -> bool:
        return op in self._tracked

    def record(self, op: str, good: bool) -> None:
        if op not in self._tracked:
            return
        monitor = self._monitors.get(op)
        if monitor is None:
            monitor = self._monitors[op] = SLOMonitor(
                self.target, self._windows, self._buckets, self._clock)
        monitor.record(good)

    def burn_rates(self) -> dict[str, dict[str, float]]:
        return {op: monitor.burn_rates()
                for op, monitor in sorted(self._monitors.items())}

    def detail(self) -> dict[str, dict]:
        return {op: monitor.detail()
                for op, monitor in sorted(self._monitors.items())}
