"""The async multi-tenant serving layer.

The paper's MLS model is inherently multi-user -- one shared database
queried concurrently by subjects at different clearances -- and this
package is that front-end: an asyncio server multiplexing thousands of
concurrent clients over one :class:`~repro.multilog.ast.
MultiLogDatabase` through per-clearance pools of exclusively-held
:class:`~repro.multilog.session.MultiLogSession` siblings.

Pieces (docs/SERVING.md is the operator walkthrough):

* :mod:`repro.serving.protocol` -- the newline-framed JSON wire protocol.
* :mod:`repro.serving.pool` -- exclusive-checkout per-clearance pools.
* :mod:`repro.serving.server` -- admission control, snapshot-isolated
  reads, serialized journaled writes, the Prometheus serving dashboard.
* :mod:`repro.serving.http` -- a minimal HTTP/1.1 shim over the same
  dispatch (``POST /v1/ask``, ``GET /metrics``, ``GET /healthz``).
* :mod:`repro.serving.requestlog` -- the per-request observability
  trio: structured access log, lattice-redacted slow-query capture,
  SLO burn-rate monitors (docs/OBSERVABILITY.md).
* :mod:`repro.serving.client` -- the reference asyncio client.

Start one from the CLI with ``multilog serve PROGRAM.mlog --port 7979``
or in-process::

    from repro.serving import MultiLogServer
    server = MultiLogServer(source, max_inflight=128)
    await server.start()
"""

from repro.serving.client import ServingCallError, ServingClient
from repro.serving.pool import SessionPool
from repro.serving.requestlog import AccessLog, SlowLog, SLOTracker
from repro.serving.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)
from repro.serving.server import (
    DEFAULT_SHED_BUDGET,
    MultiLogServer,
    ServerConfig,
    ServingStats,
    serve,
)

__all__ = [
    "AccessLog",
    "DEFAULT_SHED_BUDGET",
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "MultiLogServer",
    "OPS",
    "SLOTracker",
    "SlowLog",
    "PROTOCOL_VERSION",
    "ServerConfig",
    "ServingCallError",
    "ServingClient",
    "ServingStats",
    "SessionPool",
    "decode_request",
    "encode_message",
    "error_response",
    "ok_response",
    "serve",
]
