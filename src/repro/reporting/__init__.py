"""Figure regeneration and table rendering (the evaluation artifacts)."""

from repro.reporting.figures import Figure, all_figures
from repro.reporting.tables import (
    relation_headers,
    relation_table,
    render_table,
    rows_signature,
    tuple_row,
)

__all__ = [
    "Figure",
    "all_figures",
    "relation_headers",
    "relation_table",
    "render_table",
    "rows_signature",
    "tuple_row",
]
