"""ASCII rendering of multilevel relations in the paper's figure layout.

Figures 1-3 and 6-8 all share one shape: a Tid column, ``value  class``
column pairs for each attribute, and a TC column.  :func:`relation_table`
reproduces it; :func:`render_table` is the generic grid renderer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.mls.relation import MLSRelation
from repro.mls.tuples import MLSTuple, NULL


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain ASCII grid with a header rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def _display(value: object) -> str:
    return "⊥" if value is NULL else str(value)


def tuple_row(t: MLSTuple, tid: str = "") -> list[str]:
    """One figure-style row: tid, value/class pairs, TC."""
    row = [tid] if tid else []
    for attr in t.schema.attributes:
        cell = t.cell(attr)
        row.append(_display(cell.value))
        row.append(cell.cls.upper())
    row.append(t.tc.upper())
    return row


def relation_headers(relation: MLSRelation, with_tid: bool = True) -> list[str]:
    headers = ["Tid"] if with_tid else []
    for attr in relation.schema.attributes:
        headers.append(attr.capitalize())
        headers.append("C")
    headers.append("TC")
    return headers


def relation_table(relation: MLSRelation,
                   tids: dict[str, MLSTuple] | None = None,
                   order: Sequence[str] | None = None) -> str:
    """Render a relation the way the paper's figures do.

    ``tids`` maps tuple ids to tuples (tuples not covered get blank ids);
    ``order`` fixes the row order by tid (default: relation order).
    """
    inverse: dict[MLSTuple, str] = {}
    if tids:
        for tid, t in tids.items():
            inverse[t] = tid
    ordered: list[MLSTuple]
    if order and tids:
        ordered = [tids[tid] for tid in order if tid in tids and tids[tid] in set(relation)]
        remaining = [t for t in relation if t not in set(ordered)]
        ordered.extend(remaining)
    else:
        ordered = list(relation)
    rows = [tuple_row(t, inverse.get(t, "")) for t in ordered]
    return render_table(relation_headers(relation), rows)


def rows_signature(relation: MLSRelation) -> set[tuple]:
    """A hashable signature of a relation's contents (for figure asserts)."""
    return {t.as_row() for t in relation}
