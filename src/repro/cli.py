"""An interactive MultiLog shell.

Run ``python -m repro.cli [program.mlog] [--clearance LEVEL]`` (or the
``multilog`` console script) and type clauses, queries and commands::

    mlog(s)> u[acct(alice : balance -u-> 100)].
    asserted.
    mlog(s)> ?- u[acct(K : balance -C-> B)] << cau.
    K = alice, C = u, B = 100
    mlog(s)> :prove u[acct(alice : balance -u-> 100)] << opt
    (BELIEF) ...
    mlog(s)> :clearance u

Commands: ``:help``, ``:load FILE``, ``:clearance LEVEL``, ``:engine
operational|reduction``, ``:modes``, ``:lattice``, ``:cells``,
``:believe MODE [LEVEL]``, ``:consistency``, ``:lint``, ``:prove
QUERY``, ``:stats``, ``:explain``, ``:trace on|off``, ``:faults ...``,
``:quit``.

Serving: ``multilog serve FILE --port 7979`` starts the async
multi-tenant server (newline-framed JSON protocol; ``--http-port``
adds the HTTP shim) with admission control and load shedding -- see
docs/SERVING.md.

Resilience: ``multilog run FILE`` evaluates a program's stored queries
non-interactively through the :class:`~repro.resilience.
ResilientExecutor` (``--retries``, ``--timeout``, ``--allow-partial``),
``multilog recover JOURNAL`` rebuilds a database from a write-ahead
journal (re-checking Definitions 5.3/5.4), ``--journal`` arms
crash-safe journaling on a shell session, and ``:faults`` arms or
disarms a fault-injection plan (see docs/RESILIENCE.md).

Static analysis: ``multilog lint FILE...`` runs the compile-time
analyzer (:mod:`repro.analysis`) over MultiLog sources (or plain
Datalog ``.dl`` files) without evaluating them -- ``--strict`` fails on
warnings, ``--format=json`` emits machine-readable diagnostics, and
``--workload d1|mission`` lints the built-in workloads.  The shell's
``--lint-only`` flag analyzes the program and exits non-zero on any
error-severity finding instead of starting a REPL.

Observability: ``--trace`` (or ``:trace on``) prints the span tree after
each query, ``--trace-out=FILE.{json,chrome,jsonl}`` dumps it (a
``.chrome`` file opens in Perfetto), ``:stats`` shows the session's
cumulative engine metrics, ``:metrics`` / ``multilog metrics FILE``
emit Prometheus text exposition, ``:audit`` / ``multilog audit FILE``
print the MLS security-audit trail (cross-level reads, overrides,
filter suppressions, surprise stories), and ``--explain`` / ``:explain
[QUERY]`` dump the compiled join plans -- or, with a query, the
paper-style provenance of its answers.

The shell logic lives in :class:`Shell` with a pure
``execute_line(text) -> str`` interface so it is fully unit-testable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datalog.storage import BACKENDS
from repro.errors import ReproError
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.session import MultiLogSession
from repro.reporting.tables import render_table

PROMPT = "mlog({level})> "

_HELP = """\
Enter MultiLog clauses (ending with '.') to assert them, or queries
('?- goal.' or a bare goal) to evaluate them.  Commands:
  :help                     this text
  :load FILE                assert every clause/query in FILE
  :clearance LEVEL          switch the session clearance
  :engine NAME              'operational' (default) or 'reduction'
  :modes                    list available belief modes
  :lattice                  show the security lattice
  :cells                    list every derivable m-cell
  :believe MODE [LEVEL]     show the believed cells in MODE
  :consistency              run the Definition 5.4 checks
  :lint                     run the static analyzer over the database
  :prove QUERY              print a proof tree for QUERY
  :stats                    cumulative engine metrics for this session
  :explain [QUERY]          compiled join plans; with QUERY, the
                            paper-style provenance of its answers
  :metrics                  Prometheus text of counters + histograms
                            (enables latency histograms on first use)
  :audit [jsonl|clear]      the MLS security-audit trail (enables the
                            trail on first use)
  :trace on|off             print the span tree after each query
  :faults                   show the armed fault-injection plan
  :faults raise POINT [transient|permanent|strategy]
  :faults delay POINT SECONDS
  :faults corrupt POINT     arm a fault at a span point (e.g. stratum[*])
  :faults off               disarm all faults
  :quit                     leave"""


class ShellExit(Exception):
    """Raised by ``:quit`` so the surrounding loop can stop."""


class Shell:
    """State + command dispatch for the interactive shell."""

    def __init__(self, source: str | MultiLogDatabase = "", clearance: str | None = None,
                 trace: bool = False, journal: str | None = None,
                 trace_out: str | None = None, backend: str | None = None):
        self.session = MultiLogSession(source or "level(system).", clearance,
                                       journal=journal, backend=backend)
        self.engine_name = "operational"
        self.trace = trace
        #: dump each query's span forest here (.json/.chrome/.jsonl).
        self.trace_out = trace_out
        self._pristine = not source

    @property
    def clearance(self) -> str:
        return self.session.clearance

    # ------------------------------------------------------------------
    def execute_line(self, line: str) -> str:
        """Process one input line and return the text to display."""
        text = line.strip()
        if not text or text.startswith("%"):
            return ""
        try:
            if text.startswith(":"):
                return self._command(text[1:])
            if text.startswith("?-"):
                return self._query(text)
            if text.endswith("."):
                self.session.assert_clause(text)
                return "asserted."
            return self._query(text)
        except ShellExit:
            raise
        except ReproError as exc:
            return f"error: {exc}"

    # ------------------------------------------------------------------
    def _command(self, text: str) -> str:
        parts = text.split(None, 1)
        name = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name in ("q", "quit", "exit"):
            raise ShellExit
        if name == "help":
            return _HELP
        if name == "load":
            return self._load(argument)
        if name == "clearance":
            if not argument:
                return f"clearance is {self.clearance!r}"
            plan = self.session._fault_plan
            previous = self.session
            self.session = self.session.with_clearance(argument)
            self._carry_obs(previous)
            if plan is not None:
                self.session.arm_faults(plan)
            return f"clearance set to {argument!r}"
        if name == "engine":
            if argument not in ("operational", "reduction"):
                return "error: engine must be 'operational' or 'reduction'"
            self.engine_name = argument
            return f"engine set to {argument!r}"
        if name == "modes":
            return ", ".join(sorted(self.session.modes))
        if name == "lattice":
            lattice = self.session.lattice
            pairs = ", ".join(f"{lo} < {hi}" for lo, hi in sorted(lattice.cover_pairs))
            return f"levels: {', '.join(sorted(lattice.levels))}\norders: {pairs or '(none)'}"
        if name == "cells":
            rows = [list(row) for row in self.session.cells()]
            if not rows:
                return "(no derivable cells)"
            return render_table(["pred", "key", "attr", "value", "class", "level"], rows)
        if name == "believe":
            return self._believe(argument)
        if name == "consistency":
            report = self.session.check_consistency()
            if report.ok:
                return "consistent (Definition 5.4 satisfied)."
            return "\n".join(report.all_messages())
        if name == "lint":
            return self.session.analyze().render_text()
        if name == "prove":
            tree = self.session.prove(argument)
            return tree.pretty() if tree is not None else "no proof."
        if name == "stats":
            stats = self.session.last_stats()
            if stats is None:
                return "(no stats yet: ask a query first)"
            return stats.summary()
        if name == "explain":
            if argument:
                return self.session.explain(query=argument, answer={})
            return self.session.explain()
        if name == "metrics":
            if self.session.histograms is None:
                self.session.enable_telemetry()
            return self.session.metrics_text().rstrip("\n")
        if name == "audit":
            log = self.session.enable_audit()
            if argument == "clear":
                log.clear()
                return "audit trail cleared"
            if argument == "jsonl":
                return log.to_jsonl() or "(no audit events yet)"
            if argument:
                return "error: usage :audit [jsonl|clear]"
            return log.render() or "(no audit events yet)"
        if name == "trace":
            if argument not in ("on", "off"):
                return "error: usage :trace on|off"
            self.trace = argument == "on"
            return f"trace {argument}"
        if name == "faults":
            return self._faults(argument)
        return f"error: unknown command :{name} (try :help)"

    def _faults(self, argument: str) -> str:
        """Arm/disarm the session's fault-injection plan (chaos testing)."""
        from repro.resilience import FaultPlan

        parts = argument.split()
        if not parts:
            plan = self.session._fault_plan
            return plan.describe() if plan is not None else "(no faults armed)"
        verb = parts[0].lower()
        if verb == "off":
            self.session.disarm_faults()
            return "faults disarmed"
        plan = self.session._fault_plan
        if plan is None:
            plan = FaultPlan()
        try:
            if verb == "raise":
                if len(parts) < 2:
                    return "error: usage :faults raise POINT [transient|permanent|strategy]"
                error = parts[2] if len(parts) > 2 else "transient"
                spec = plan.arm(parts[1], action="raise", error=error)
            elif verb == "delay":
                if len(parts) < 3:
                    return "error: usage :faults delay POINT SECONDS"
                spec = plan.arm(parts[1], action="delay", delay_s=float(parts[2]))
            elif verb == "corrupt":
                if len(parts) < 2:
                    return "error: usage :faults corrupt POINT"
                spec = plan.arm(parts[1], action="corrupt")
            else:
                return f"error: unknown :faults verb {verb!r} (raise|delay|corrupt|off)"
        except ValueError as exc:
            return f"error: {exc}"
        self.session.arm_faults(plan)
        return f"armed: {spec.describe()}"

    def _load(self, argument: str) -> str:
        if not argument:
            return "error: usage :load FILE"
        path = Path(argument)
        if not path.exists():
            return f"error: no such file {argument!r}"
        source = path.read_text()
        from repro.multilog.parser import parse_database

        loaded = parse_database(source)
        journal = self.session.journal
        plan = self.session._fault_plan
        previous = self.session
        backend = self.session.backend
        if self._pristine:
            # Nothing asserted yet: adopt the file wholesale, including
            # its lattice, and re-derive the clearance from its top.
            self.session = MultiLogSession(parse_database(source), backend=backend)
            self._pristine = False
        else:
            database = self.session.database
            database.add_clauses(loaded.clauses())  # one version bump
            for query in loaded.queries:
                database.add_query(query)
            self.session = MultiLogSession(database, self.clearance,
                                           backend=backend)
        self._carry_obs(previous)
        if journal is not None:
            # A load bypasses assert_clause, so bring the journal back in
            # step with one atomic snapshot of the post-load database.
            journal.compact(self.session.database)
            self.session.journal = journal
        if plan is not None:
            self.session.arm_faults(plan)
        counts = (f"{len(loaded.lattice_clauses)} lattice, "
                  f"{len(loaded.secured_clauses)} secured, "
                  f"{len(loaded.plain_clauses)} plain clause(s)")
        lines = [f"loaded {counts} from {argument}"]
        for query in loaded.queries:
            lines.append(f"{query}")
            lines.append(self._query(str(query)))
        return "\n".join(lines)

    def _believe(self, argument: str) -> str:
        if not argument:
            return "error: usage :believe MODE [LEVEL]"
        parts = argument.split()
        mode = parts[0]
        level = parts[1] if len(parts) > 1 else None
        rows = [list(row) for row in self.session.believed_cells(mode, level)]
        if not rows:
            return "(nothing believed)"
        return render_table(["pred", "key", "attr", "value", "class", "source"], rows)

    def _carry_obs(self, previous: MultiLogSession) -> None:
        """Carry telemetry/audit state across a session swap.

        ``:clearance`` and ``:load`` rebuild the session; the shell's
        histograms, sink, sampling and audit trail are user-visible state
        that must survive the swap (the audit trail in particular is one
        continuous record of the shell's cross-level reads).
        """
        self.session._histograms = previous._histograms
        self.session._sink = previous._sink
        self.session._sample_rate = previous._sample_rate
        self.session._sample_rng = previous._sample_rng
        self.session._audit = previous._audit

    def _query(self, text: str) -> str:
        try:
            answers = self.session.ask(text, engine=self.engine_name)
        except ReproError as exc:
            # The ask died mid-evaluation; the session still snapshotted
            # the partial forest (spans are closed ``aborted=True``), so
            # :trace / --trace-out render where it stopped.
            lines = [f"error: {exc}"]
            self._append_trace(lines)
            return "\n".join(lines)
        if not answers:
            lines = ["no."]
        else:
            lines = []
            for answer in answers:
                if not answer:
                    lines.append("yes.")
                else:
                    lines.append(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        self._append_trace(lines)
        return "\n".join(lines)

    def _append_trace(self, lines: list[str]) -> None:
        recorder = self.session.last_trace()
        if recorder is None:
            return
        if self.trace:
            rendered = recorder.pretty()
            if rendered:
                lines.append(rendered)
        if self.trace_out:
            from repro.obs.export import write_trace

            write_trace(recorder, self.trace_out)


def _analyze_text(name: str, text: str, clearance: str | None):
    """Analyze one source text; *any* failure becomes an ML000 diagnostic.

    The lint subcommand promises a report per input -- in particular
    ``--format=json`` must emit a well-formed envelope even when the
    program does not parse -- so crashes of any flavour (syntax errors,
    recursion blowups on hostile input) are folded into the report
    instead of escaping as a traceback.
    """
    from repro.analysis import AnalysisReport, analyze_database, analyze_program
    from repro.analysis.diagnostics import fingerprint

    try:
        if name.endswith(".dl"):
            from repro.datalog.parse import parse_program

            return analyze_program(parse_program(text))
        from repro.multilog.parser import parse_database

        return analyze_database(parse_database(text), clearance)
    except ReproError as exc:
        report = AnalysisReport()
        report.program_hash = fingerprint(text)
        report.add("ML000", str(exc), location=name,
                   hint="fix the syntax error; nothing else was checked")
        return report
    except (RecursionError, ValueError, TypeError) as exc:
        report = AnalysisReport()
        report.program_hash = fingerprint(text)
        report.add("ML000",
                   f"analysis crashed: {type(exc).__name__}: {exc}",
                   location=name,
                   hint="the input is malformed beyond what the parser "
                        "reports cleanly")
        return report


def _lint_inputs(args) -> list[tuple[str, object]]:
    """``(name, report)`` per input file / workload, in argument order."""
    from repro.analysis import AnalysisReport

    reports: list[tuple[str, object]] = []
    for path_arg in args.paths:
        path = Path(path_arg)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            report = AnalysisReport()
            if not path.exists():
                report.add("ML000", f"no such file: {path_arg}",
                           location=path_arg)
            else:
                report.add("ML000", f"cannot read {path_arg}: {exc}",
                           location=path_arg,
                           hint="lint inputs must be UTF-8 text files")
            reports.append((path_arg, report))
            continue
        reports.append(
            (path_arg, _analyze_text(path_arg, text, args.clearance)))
    for workload in args.workload:
        from repro.analysis import analyze_database
        from repro.workloads import d1_database, mission_multilog

        db = d1_database() if workload == "d1" else mission_multilog()
        reports.append((f"workload:{workload}",
                        analyze_database(db, args.clearance)))
    if getattr(args, "lint_self", False):
        from repro.analysis import analyze_async_safety

        reports.append(("self:serving", analyze_async_safety()))
    return reports


def lint_main(argv: list[str]) -> int:
    """``multilog lint``: analyze sources without evaluating them."""
    parser = argparse.ArgumentParser(
        prog="multilog lint",
        description="Run the compile-time analyzer (stratification, safety, "
                    "arity, security-flow and dead-code lint) over MultiLog "
                    "sources or plain Datalog .dl files.")
    parser.add_argument("paths", nargs="*",
                        help="source files (.mlog/.dl) to analyze")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just errors")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format")
    parser.add_argument("--clearance", default=None,
                        help="analyze at this clearance (default: lattice tops)")
    parser.add_argument("--workload", action="append", default=[],
                        choices=("d1", "mission"),
                        help="also lint a built-in workload (repeatable)")
    parser.add_argument("--self", dest="lint_self", action="store_true",
                        help="run the async-safety lint (ML020/ML021) over "
                             "this installation's serving layer")
    args = parser.parse_args(argv)
    if not args.paths and not args.workload and not args.lint_self:
        parser.error("nothing to lint: give at least one file, --workload "
                     "or --self")

    reports = _lint_inputs(args)
    exit_code = 0
    if args.format == "json":
        import json

        from repro.analysis import ANALYZER_VERSION

        payload = {
            "analyzer": ANALYZER_VERSION,
            "inputs": {name: report.to_dicts() for name, report in reports},
            "ok": all(report.clean(args.strict) for _, report in reports),
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(f"== {name} ==")
            print(report.render_text())
    for _, report in reports:
        exit_code = max(exit_code, report.exit_code(args.strict))
    return exit_code


def run_main(argv: list[str]) -> int:
    """``multilog run``: evaluate a program's stored queries resiliently.

    Every stored query (the Q component of Definition 5.1) runs through a
    :class:`~repro.resilience.ResilientExecutor`: transient faults are
    retried ``--retries`` times, evaluation is bounded by ``--timeout``
    seconds, and with ``--allow-partial`` a budget overrun prints the
    partial answers flagged ``(partial: ...)`` instead of failing.
    """
    parser = argparse.ArgumentParser(
        prog="multilog run",
        description="Evaluate a MultiLog program's stored queries through "
                    "the resilience layer (retry / fallback / degrade).")
    parser.add_argument("program", help="MultiLog source file")
    parser.add_argument("--clearance", default=None,
                        help="session clearance (default: lattice top)")
    parser.add_argument("--engine", choices=("operational", "reduction"),
                        default="operational")
    parser.add_argument("--retries", type=int, default=2,
                        help="max retries per ladder rung for transient faults")
    parser.add_argument("--backoff", type=float, default=0.0,
                        help="base retry backoff in seconds (doubles per retry)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock budget per query in seconds")
    parser.add_argument("--allow-partial", action="store_true",
                        help="serve flagged partial answers on budget overrun "
                             "instead of failing")
    parser.add_argument("--journal", default=None,
                        help="arm write-ahead journaling to this path")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="storage backend for the reduced program "
                             "(default: $MULTILOG_BACKEND or 'dict'; "
                             "'columnar' evaluates vectorized)")
    args = parser.parse_args(argv)

    from repro.obs import EvaluationBudget
    from repro.resilience import PartialResult, ResilientExecutor, RetryPolicy

    budget = (EvaluationBudget(timeout_s=args.timeout)
              if args.timeout is not None else None)
    try:
        session = MultiLogSession(Path(args.program).read_text(), args.clearance,
                                  budget=budget, journal=args.journal,
                                  backend=args.backend)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    executor = ResilientExecutor(
        retry=RetryPolicy(max_retries=args.retries, base_delay_s=args.backoff),
        allow_partial=args.allow_partial)
    exit_code = 0
    for query in session.database.queries:
        print(query)
        try:
            result = executor.ask(session, query, engine=args.engine)
        except ReproError as exc:
            print(f"  error: {exc}")
            exit_code = 1
            continue
        if isinstance(result, PartialResult):
            answers = result.answers or []
            print(f"  (partial: {result.reason}, rung={result.rung}, "
                  f"{len(answers)} answer(s) so far)")
        else:
            answers = result
        if not answers:
            print("  no.")
        for answer in answers:
            if not answer:
                print("  yes.")
            else:
                print("  " + ", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
    return exit_code


def serve_main(argv: list[str]) -> int:
    """``multilog serve``: the async multi-tenant server (docs/SERVING.md).

    Serves one shared database to concurrent clients over the
    newline-framed JSON protocol (and, with ``--http-port``, the HTTP
    shim).  Reads are snapshot-isolated, writes are serialized through
    the write-ahead journal when ``--journal`` is given, and overload
    degrades (budgeted partial answers) then sheds instead of queuing.
    """
    parser = argparse.ArgumentParser(
        prog="multilog serve",
        description="Serve a MultiLog database to concurrent clients "
                    "(newline-framed JSON protocol + optional HTTP shim).")
    parser.add_argument("program", nargs="?", default=None,
                        help="MultiLog source file (default: empty database)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7979,
                        help="framed-protocol port (0 = ephemeral)")
    parser.add_argument("--http-port", type=int, default=None,
                        help="also serve the HTTP shim on this port")
    parser.add_argument("--clearance", default=None,
                        help="server/root clearance (default: lattice top)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="storage backend (default: $MULTILOG_BACKEND or "
                             "'dict')")
    parser.add_argument("--journal", default=None,
                        help="write-ahead journal path for asserted clauses")
    parser.add_argument("--engine", choices=("operational", "reduction"),
                        default="operational",
                        help="default engine for asks that do not name one")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="admission cap; requests past it are shed")
    parser.add_argument("--degrade-at", type=float, default=0.75,
                        help="fraction of --max-inflight past which asks run "
                             "degraded (budgeted, partial answers)")
    parser.add_argument("--shed-timeout", type=float, default=2.0,
                        help="wall-clock budget per degraded ask in seconds")
    parser.add_argument("--timeout", type=float, default=None,
                        help="default deadline per request in seconds "
                             "(clients may override per request)")
    parser.add_argument("--quota", action="append", default=None,
                        metavar="LEVEL=N",
                        help="per-clearance admission quota (repeatable), "
                             "e.g. --quota u=16 --quota c=32")
    parser.add_argument("--checkpoint-records", type=int, default=1000,
                        help="checkpoint the journal after this many clause "
                             "records since the last snapshot (0 disables)")
    parser.add_argument("--checkpoint-bytes", type=int, default=4 * 1024 * 1024,
                        help="... or once the journal exceeds this many bytes "
                             "(0 disables)")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds SIGTERM waits for inflight requests "
                             "before stopping anyway")
    parser.add_argument("--no-audit", action="store_true",
                        help="disable the server-wide MLS audit trail")
    parser.add_argument("--trace", action="store_true",
                        help="open a root span per request and thread it "
                             "through the engine (docs/OBSERVABILITY.md)")
    parser.add_argument("--access-log", default=None, metavar="FILE",
                        help="size-rotated JSONL request log (one line per "
                             "request; never contains query text)")
    parser.add_argument("--slow-threshold", type=float, default=None,
                        metavar="SECONDS",
                        help="capture requests slower than this (or errored) "
                             "into the slow log, served via the slowlog op "
                             "and GET /v1/debug/slow")
    parser.add_argument("--slo-target", type=float, default=0.99,
                        help="availability target the burn-rate gauges "
                             "measure against (default 0.99)")
    args = parser.parse_args(argv)

    import asyncio
    import signal

    from repro.obs import EvaluationBudget
    from repro.serving import MultiLogServer, ServerConfig

    try:
        source = Path(args.program).read_text() if args.program else ""
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    quotas = None
    if args.quota:
        quotas = {}
        for spec in args.quota:
            level, sep, cap = spec.partition("=")
            if not sep or not cap.isdigit():
                print(f"error: bad --quota {spec!r} (expected LEVEL=N)",
                      file=sys.stderr)
                return 2
            quotas[level] = int(cap)
    config = ServerConfig(
        host=args.host, port=args.port, clearance=args.clearance,
        backend=args.backend, journal=args.journal, engine=args.engine,
        max_inflight=args.max_inflight, degrade_at=args.degrade_at,
        shed_budget=EvaluationBudget(timeout_s=args.shed_timeout),
        default_timeout_s=args.timeout, clearance_quotas=quotas,
        checkpoint_records=args.checkpoint_records or None,
        checkpoint_bytes=args.checkpoint_bytes or None,
        drain_timeout_s=args.drain_timeout,
        audit=not args.no_audit,
        trace=args.trace, access_log=args.access_log,
        slow_threshold_s=args.slow_threshold, slo_target=args.slo_target)

    async def _serve() -> int:
        try:
            server = MultiLogServer(source, config)
            host, port = await server.start()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"multilog serving on {host}:{port} "
              f"(backend={server.root.backend}, "
              f"clearance={server.root.clearance}, "
              f"max_inflight={config.max_inflight})")
        if args.http_port is not None:
            http_host, http_port = await server.start_http(port=args.http_port)
            print(f"HTTP shim on http://{http_host}:{http_port} "
                  f"(POST /v1/ask, GET /metrics, GET /healthz)")
        # SIGTERM drains gracefully: stop accepting, finish inflight,
        # final checkpoint, then exit -- the rollout story for the
        # million-user deployment (docs/SERVING.md).
        terminated = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, terminated.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handler support
        serve_task = asyncio.ensure_future(server.serve_forever())
        term_task = asyncio.ensure_future(terminated.wait())
        try:
            await asyncio.wait({serve_task, term_task},
                               return_when=asyncio.FIRST_COMPLETED)
            if terminated.is_set():
                print("SIGTERM: draining...")
                drained = await server.drain()
                print("drained cleanly" if drained
                      else "drain timed out with requests in flight")
        except asyncio.CancelledError:
            pass
        finally:
            for task in (serve_task, term_task):
                task.cancel()
            await asyncio.gather(serve_task, term_task,
                                 return_exceptions=True)
            await server.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserver stopped")
        return 0


def _telemetry_session(parser: argparse.ArgumentParser, args
                       ) -> MultiLogSession | None:
    """A session over ``args.program`` or ``--workload`` (telemetry CLIs)."""
    if args.program:
        try:
            source = Path(args.program).read_text()
            return MultiLogSession(source, args.clearance)
        except (OSError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    if args.workload:
        from repro.workloads import d1_database, mission_multilog

        db = d1_database() if args.workload == "d1" else mission_multilog()
        return MultiLogSession(db, args.clearance)
    parser.error("nothing to run: give a program file or --workload")
    return None


def metrics_main(argv: list[str]) -> int:
    """``multilog metrics``: run stored queries, print Prometheus text.

    Evaluates the program's stored queries (Definition 5.1's Q component)
    with latency histograms enabled, then emits every counter and
    per-span-family histogram in the Prometheus text exposition format on
    stdout -- pipe it to a file for the node_exporter textfile collector.
    """
    parser = argparse.ArgumentParser(
        prog="multilog metrics",
        description="Evaluate a program's stored queries and emit the "
                    "session's telemetry in Prometheus text format.")
    parser.add_argument("program", nargs="?", help="MultiLog source file")
    parser.add_argument("--clearance", default=None)
    parser.add_argument("--engine", choices=("operational", "reduction"),
                        default="operational")
    parser.add_argument("--workload", choices=("d1", "mission"), default=None,
                        help="run a built-in workload instead of a file")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also dump the last query's span forest "
                             "(.json/.chrome/.jsonl by suffix)")
    args = parser.parse_args(argv)
    session = _telemetry_session(parser, args)
    if session is None:
        return 2
    session.enable_telemetry()
    exit_code = 0
    for query in session.database.queries:
        try:
            session.ask(query, engine=args.engine)
        except ReproError as exc:
            print(f"# query failed: {exc}", file=sys.stderr)
            exit_code = 1
    print(session.metrics_text(), end="")
    if args.trace_out and session.last_trace() is not None:
        from repro.obs.export import write_trace

        write_trace(session.last_trace(), args.trace_out)
    return exit_code


def audit_main(argv: list[str]) -> int:
    """``multilog audit``: run stored queries under the MLS audit trail.

    Every cross-level read, cautious override, filter suppression and
    surprise story the evaluation implies is printed afterwards --
    ``--format jsonl`` emits one JSON object per distinct event for log
    shipping.
    """
    parser = argparse.ArgumentParser(
        prog="multilog audit",
        description="Evaluate a program's stored queries with the MLS "
                    "security-audit trail enabled and print the trail.")
    parser.add_argument("program", nargs="?", help="MultiLog source file")
    parser.add_argument("--clearance", default=None)
    parser.add_argument("--engine", choices=("operational", "reduction"),
                        default="operational")
    parser.add_argument("--workload", choices=("d1", "mission"), default=None,
                        help="run a built-in workload instead of a file")
    parser.add_argument("--format", choices=("text", "jsonl"), default="text")
    args = parser.parse_args(argv)
    session = _telemetry_session(parser, args)
    if session is None:
        return 2
    log = session.enable_audit()
    exit_code = 0
    for query in session.database.queries:
        try:
            session.ask(query, engine=args.engine)
        except ReproError as exc:
            print(f"# query failed: {exc}", file=sys.stderr)
            exit_code = 1
    if args.format == "jsonl":
        text = log.to_jsonl()
        if text:
            print(text)
    else:
        print(log.render() or "(no audit events)")
    return exit_code


def slowlog_main(argv: list[str]) -> int:
    """``multilog slowlog``: fetch a running server's slow-query log.

    Connects over the framed protocol and prints the captured
    slow/errored requests, redacted by the server at the requesting
    clearance -- a LOW operator sees timings and outcomes for HIGH
    captures but never their query text (docs/OBSERVABILITY.md).
    """
    parser = argparse.ArgumentParser(
        prog="multilog slowlog",
        description="Print the slow-query captures of a running multilog "
                    "server, redacted at the requesting clearance.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7979,
                        help="framed-protocol port of the server")
    parser.add_argument("--clearance", default=None,
                        help="view the log at this clearance "
                             "(default: the server's root clearance)")
    parser.add_argument("--limit", type=int, default=None,
                        help="newest N captures only")
    parser.add_argument("--format", choices=("text", "jsonl"), default="text")
    args = parser.parse_args(argv)

    import asyncio
    import json

    from repro.serving import ServingClient

    async def _fetch() -> dict:
        client = await ServingClient.connect(args.host, args.port,
                                             clearance=args.clearance)
        try:
            return await client.slowlog(limit=args.limit)
        finally:
            await client.close()

    try:
        response = asyncio.run(_fetch())
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not response.get("enabled"):
        print("slow log disabled on this server "
              "(start it with --slow-threshold)", file=sys.stderr)
        return 1
    entries = response.get("entries", [])
    if args.format == "jsonl":
        for entry in entries:
            print(json.dumps(entry, separators=(",", ":"), default=repr))
        return 0
    print(f"{len(entries)} capture(s) "
          f"(threshold {response.get('threshold_s')}s, "
          f"{response.get('captured_total')} total)")
    for entry in entries:
        line = (f"  {entry['trace_id']}  {entry['op']:<6} "
                f"level={entry['level']} outcome={entry['outcome']} "
                f"{entry['elapsed_ms']:.1f}ms")
        if entry.get("redacted"):
            line += "  [redacted]"
        print(line)
        if not entry.get("redacted") and entry.get("query"):
            print(f"    query: {entry['query']}")
            if entry.get("explain"):
                for row in str(entry["explain"]).splitlines():
                    print(f"    | {row}")
    return 0


def recover_main(argv: list[str]) -> int:
    """``multilog recover``: rebuild a database from a journal."""
    parser = argparse.ArgumentParser(
        prog="multilog recover",
        description="Replay a write-ahead journal, re-check Definitions "
                    "5.3/5.4 on the recovered database, and report.")
    parser.add_argument("journal", help="journal file written by a journaled session")
    parser.add_argument("--clearance", default=None)
    parser.add_argument("--compact", action="store_true",
                        help="compact the journal to one snapshot after recovery")
    parser.add_argument("--require-consistent", action="store_true",
                        help="fail recovery when the replayed database does "
                             "not satisfy Definition 5.4")
    parser.add_argument("--shell", action="store_true",
                        help="drop into an interactive shell on the recovered session")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="storage backend for the recovered session "
                             "(default: $MULTILOG_BACKEND or 'dict')")
    args = parser.parse_args(argv)

    try:
        session = MultiLogSession.recover(
            args.journal, args.clearance,
            require_consistent=args.require_consistent,
            backend=args.backend)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    db = session.database
    print(f"recovered {len(db.lattice_clauses)} lattice, "
          f"{len(db.secured_clauses)} secured, "
          f"{len(db.plain_clauses)} plain clause(s) at version {db.version}")
    if session.journal_recovery is not None:
        print(session.journal_recovery.summary())
    else:
        print("admissibility (Def 5.3): ok")
        report = session.recovery_report
        print(f"consistency (Def 5.4): {'ok' if report.ok else 'VIOLATED'}")
        if not report.ok:
            for message in report.all_messages():
                print(f"  {message}")
    if args.compact:
        session.journal.compact(db)
        print(f"compacted journal to {args.journal}")
    if args.shell:
        shell = Shell(db, session.clearance, backend=session.backend)
        shell.session.journal = session.journal
        return _repl(shell)
    return 0


def _repl(shell: "Shell") -> int:
    """The interactive read-eval-print loop over a prepared shell."""
    print("MultiLog shell -- :help for commands")
    while True:
        try:
            line = input(PROMPT.format(level=shell.clearance))
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.execute_line(line)
        except ShellExit:
            return 0
        if output:
            print(output)


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``multilog`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "recover":
        return recover_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "metrics":
        return metrics_main(argv[1:])
    if argv and argv[0] == "audit":
        return audit_main(argv[1:])
    if argv and argv[0] == "slowlog":
        return slowlog_main(argv[1:])
    parser = argparse.ArgumentParser(description="Interactive MultiLog shell")
    parser.add_argument("program", nargs="?", help="MultiLog source file to load")
    parser.add_argument("--clearance", help="session clearance (default: lattice top)")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree after each query")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="dump each query's span forest to FILE "
                             "(.json / .chrome / .jsonl by suffix)")
    parser.add_argument("--explain", action="store_true",
                        help="dump the compiled join plans of the reduced "
                             "program and exit")
    parser.add_argument("--lint-only", action="store_true",
                        help="run the static analyzer over the program and "
                             "exit (non-zero on any error-severity finding)")
    parser.add_argument("--journal", default=None,
                        help="arm crash-safe write-ahead journaling of "
                             "asserted clauses to this path")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="storage backend for the reduced program "
                             "(default: $MULTILOG_BACKEND or 'dict'; "
                             "'columnar' evaluates vectorized)")
    args = parser.parse_args(argv)

    source = Path(args.program).read_text() if args.program else ""
    if args.lint_only:
        report = _analyze_text(args.program or "<empty>", source, args.clearance)
        print(report.render_text())
        return report.exit_code(strict=False)
    shell = Shell(source, args.clearance, trace=args.trace, journal=args.journal,
                  trace_out=args.trace_out, backend=args.backend)
    if args.explain:
        print(shell.session.explain())
        return 0
    return _repl(shell)


if __name__ == "__main__":
    sys.exit(main())
