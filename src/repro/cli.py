"""An interactive MultiLog shell.

Run ``python -m repro.cli [program.mlog] [--clearance LEVEL]`` (or the
``multilog`` console script) and type clauses, queries and commands::

    mlog(s)> u[acct(alice : balance -u-> 100)].
    asserted.
    mlog(s)> ?- u[acct(K : balance -C-> B)] << cau.
    K = alice, C = u, B = 100
    mlog(s)> :prove u[acct(alice : balance -u-> 100)] << opt
    (BELIEF) ...
    mlog(s)> :clearance u

Commands: ``:help``, ``:load FILE``, ``:clearance LEVEL``, ``:engine
operational|reduction``, ``:modes``, ``:lattice``, ``:cells``,
``:believe MODE [LEVEL]``, ``:consistency``, ``:lint``, ``:prove
QUERY``, ``:stats``, ``:explain``, ``:trace on|off``, ``:quit``.

Static analysis: ``multilog lint FILE...`` runs the compile-time
analyzer (:mod:`repro.analysis`) over MultiLog sources (or plain
Datalog ``.dl`` files) without evaluating them -- ``--strict`` fails on
warnings, ``--format=json`` emits machine-readable diagnostics, and
``--workload d1|mission`` lints the built-in workloads.  The shell's
``--lint-only`` flag analyzes the program and exits non-zero on any
error-severity finding instead of starting a REPL.

Observability: ``--trace`` (or ``:trace on``) prints the span tree after
each query, ``:stats`` shows the session's cumulative engine metrics,
and ``--explain`` / ``:explain`` dump the compiled join plans of the
reduced program.

The shell logic lives in :class:`Shell` with a pure
``execute_line(text) -> str`` interface so it is fully unit-testable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.session import MultiLogSession
from repro.reporting.tables import render_table

PROMPT = "mlog({level})> "

_HELP = """\
Enter MultiLog clauses (ending with '.') to assert them, or queries
('?- goal.' or a bare goal) to evaluate them.  Commands:
  :help                     this text
  :load FILE                assert every clause/query in FILE
  :clearance LEVEL          switch the session clearance
  :engine NAME              'operational' (default) or 'reduction'
  :modes                    list available belief modes
  :lattice                  show the security lattice
  :cells                    list every derivable m-cell
  :believe MODE [LEVEL]     show the believed cells in MODE
  :consistency              run the Definition 5.4 checks
  :lint                     run the static analyzer over the database
  :prove QUERY              print a proof tree for QUERY
  :stats                    cumulative engine metrics for this session
  :explain                  compiled join plans of the reduced program
  :trace on|off             print the span tree after each query
  :quit                     leave"""


class ShellExit(Exception):
    """Raised by ``:quit`` so the surrounding loop can stop."""


class Shell:
    """State + command dispatch for the interactive shell."""

    def __init__(self, source: str | MultiLogDatabase = "", clearance: str | None = None,
                 trace: bool = False):
        self.session = MultiLogSession(source or "level(system).", clearance)
        self.engine_name = "operational"
        self.trace = trace
        self._pristine = not source

    @property
    def clearance(self) -> str:
        return self.session.clearance

    # ------------------------------------------------------------------
    def execute_line(self, line: str) -> str:
        """Process one input line and return the text to display."""
        text = line.strip()
        if not text or text.startswith("%"):
            return ""
        try:
            if text.startswith(":"):
                return self._command(text[1:])
            if text.startswith("?-"):
                return self._query(text)
            if text.endswith("."):
                self.session.assert_clause(text)
                return "asserted."
            return self._query(text)
        except ShellExit:
            raise
        except ReproError as exc:
            return f"error: {exc}"

    # ------------------------------------------------------------------
    def _command(self, text: str) -> str:
        parts = text.split(None, 1)
        name = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name in ("q", "quit", "exit"):
            raise ShellExit
        if name == "help":
            return _HELP
        if name == "load":
            return self._load(argument)
        if name == "clearance":
            if not argument:
                return f"clearance is {self.clearance!r}"
            self.session = self.session.with_clearance(argument)
            return f"clearance set to {argument!r}"
        if name == "engine":
            if argument not in ("operational", "reduction"):
                return "error: engine must be 'operational' or 'reduction'"
            self.engine_name = argument
            return f"engine set to {argument!r}"
        if name == "modes":
            return ", ".join(sorted(self.session.modes))
        if name == "lattice":
            lattice = self.session.lattice
            pairs = ", ".join(f"{lo} < {hi}" for lo, hi in sorted(lattice.cover_pairs))
            return f"levels: {', '.join(sorted(lattice.levels))}\norders: {pairs or '(none)'}"
        if name == "cells":
            rows = [list(row) for row in self.session.cells()]
            if not rows:
                return "(no derivable cells)"
            return render_table(["pred", "key", "attr", "value", "class", "level"], rows)
        if name == "believe":
            return self._believe(argument)
        if name == "consistency":
            report = self.session.check_consistency()
            if report.ok:
                return "consistent (Definition 5.4 satisfied)."
            return "\n".join(report.all_messages())
        if name == "lint":
            return self.session.analyze().render_text()
        if name == "prove":
            tree = self.session.prove(argument)
            return tree.pretty() if tree is not None else "no proof."
        if name == "stats":
            stats = self.session.last_stats()
            if stats is None:
                return "(no stats yet: ask a query first)"
            return stats.summary()
        if name == "explain":
            return self.session.explain()
        if name == "trace":
            if argument not in ("on", "off"):
                return "error: usage :trace on|off"
            self.trace = argument == "on"
            return f"trace {argument}"
        return f"error: unknown command :{name} (try :help)"

    def _load(self, argument: str) -> str:
        if not argument:
            return "error: usage :load FILE"
        path = Path(argument)
        if not path.exists():
            return f"error: no such file {argument!r}"
        source = path.read_text()
        from repro.multilog.parser import parse_database

        loaded = parse_database(source)
        if self._pristine:
            # Nothing asserted yet: adopt the file wholesale, including
            # its lattice, and re-derive the clearance from its top.
            self.session = MultiLogSession(parse_database(source))
            self._pristine = False
        else:
            database = self.session.database
            for clause in loaded.clauses():
                database.add(clause)
            for query in loaded.queries:
                database.add_query(query)
            self.session = MultiLogSession(database, self.clearance)
        counts = (f"{len(loaded.lattice_clauses)} lattice, "
                  f"{len(loaded.secured_clauses)} secured, "
                  f"{len(loaded.plain_clauses)} plain clause(s)")
        lines = [f"loaded {counts} from {argument}"]
        for query in loaded.queries:
            lines.append(f"{query}")
            lines.append(self._query(str(query)))
        return "\n".join(lines)

    def _believe(self, argument: str) -> str:
        if not argument:
            return "error: usage :believe MODE [LEVEL]"
        parts = argument.split()
        mode = parts[0]
        level = parts[1] if len(parts) > 1 else None
        rows = [list(row) for row in self.session.believed_cells(mode, level)]
        if not rows:
            return "(nothing believed)"
        return render_table(["pred", "key", "attr", "value", "class", "source"], rows)

    def _query(self, text: str) -> str:
        answers = self.session.ask(text, engine=self.engine_name)
        if not answers:
            lines = ["no."]
        else:
            lines = []
            for answer in answers:
                if not answer:
                    lines.append("yes.")
                else:
                    lines.append(", ".join(f"{k} = {v}" for k, v in sorted(answer.items())))
        if self.trace:
            recorder = self.session.last_trace()
            if recorder is not None:
                lines.append(recorder.pretty())
        return "\n".join(lines)


def _analyze_text(name: str, text: str, clearance: str | None):
    """Analyze one source text; parse failures become ML000 diagnostics."""
    from repro.analysis import AnalysisReport, analyze_database, analyze_program

    try:
        if name.endswith(".dl"):
            from repro.datalog.parse import parse_program

            return analyze_program(parse_program(text))
        from repro.multilog.parser import parse_database

        return analyze_database(parse_database(text), clearance)
    except ReproError as exc:
        report = AnalysisReport()
        report.add("ML000", str(exc), location=name,
                   hint="fix the syntax error; nothing else was checked")
        return report


def _lint_inputs(args) -> list[tuple[str, object]]:
    """``(name, report)`` per input file / workload, in argument order."""
    reports: list[tuple[str, object]] = []
    for path_arg in args.paths:
        path = Path(path_arg)
        if not path.exists():
            from repro.analysis import AnalysisReport

            report = AnalysisReport()
            report.add("ML000", f"no such file: {path_arg}", location=path_arg)
            reports.append((path_arg, report))
            continue
        reports.append(
            (path_arg, _analyze_text(path_arg, path.read_text(), args.clearance)))
    for workload in args.workload:
        from repro.analysis import analyze_database
        from repro.workloads import d1_database, mission_multilog

        db = d1_database() if workload == "d1" else mission_multilog()
        reports.append((f"workload:{workload}",
                        analyze_database(db, args.clearance)))
    return reports


def lint_main(argv: list[str]) -> int:
    """``multilog lint``: analyze sources without evaluating them."""
    parser = argparse.ArgumentParser(
        prog="multilog lint",
        description="Run the compile-time analyzer (stratification, safety, "
                    "arity, security-flow and dead-code lint) over MultiLog "
                    "sources or plain Datalog .dl files.")
    parser.add_argument("paths", nargs="*",
                        help="source files (.mlog/.dl) to analyze")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just errors")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format")
    parser.add_argument("--clearance", default=None,
                        help="analyze at this clearance (default: lattice tops)")
    parser.add_argument("--workload", action="append", default=[],
                        choices=("d1", "mission"),
                        help="also lint a built-in workload (repeatable)")
    args = parser.parse_args(argv)
    if not args.paths and not args.workload:
        parser.error("nothing to lint: give at least one file or --workload")

    reports = _lint_inputs(args)
    exit_code = 0
    if args.format == "json":
        import json

        payload = {
            "inputs": {name: report.to_dicts() for name, report in reports},
            "ok": all(report.clean(args.strict) for _, report in reports),
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in reports:
            print(f"== {name} ==")
            print(report.render_text())
    for _, report in reports:
        exit_code = max(exit_code, report.exit_code(args.strict))
    return exit_code


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``multilog`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(description="Interactive MultiLog shell")
    parser.add_argument("program", nargs="?", help="MultiLog source file to load")
    parser.add_argument("--clearance", help="session clearance (default: lattice top)")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree after each query")
    parser.add_argument("--explain", action="store_true",
                        help="dump the compiled join plans of the reduced "
                             "program and exit")
    parser.add_argument("--lint-only", action="store_true",
                        help="run the static analyzer over the program and "
                             "exit (non-zero on any error-severity finding)")
    args = parser.parse_args(argv)

    source = Path(args.program).read_text() if args.program else ""
    if args.lint_only:
        report = _analyze_text(args.program or "<empty>", source, args.clearance)
        print(report.render_text())
        return report.exit_code(strict=False)
    shell = Shell(source, args.clearance, trace=args.trace)
    if args.explain:
        print(shell.session.explain())
        return 0
    print("MultiLog shell -- :help for commands")
    while True:
        try:
            line = input(PROMPT.format(level=shell.clearance))
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.execute_line(line)
        except ShellExit:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    sys.exit(main())
