"""Keyed memo layers with version-counter invalidation.

Every mutable store in the hot path (the Datalog :class:`~repro.datalog.
database.Database`, :class:`~repro.mls.relation.MLSRelation`, and
:class:`~repro.multilog.ast.MultiLogDatabase`) carries a monotone
``version`` counter bumped on every mutation.  A :class:`VersionedMemo`
keys cached derived values -- belief views, tau-translations, least
models -- on ``(owner, key)`` and stamps each entry with the owner's
version at compute time.  A lookup against a newer version is a miss
that evicts the stale entry, so *any* insert invalidates everything
derived from the mutated store without explicit wiring.

Owners are held weakly: dropping a relation or database drops its cached
views with it.  Cached values are shared, not copied -- callers must
treat them as read-only (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import weakref
from collections.abc import Callable
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one memo layer."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = 0


_MEMOS: list["VersionedMemo"] = []


class VersionedMemo:
    """Per-owner memo store invalidated by the owner's version counter."""

    def __init__(self, name: str):
        self.name = name
        self.stats = CacheStats()
        self._store: "weakref.WeakKeyDictionary[object, dict]" = weakref.WeakKeyDictionary()
        _MEMOS.append(self)

    def get_or_compute(self, owner: object, version: int, key: object,
                       compute: Callable[[], object]) -> object:
        """The cached value for ``(owner, key)`` at ``version``, computing
        (and storing) it on a miss or a stale hit."""
        entries = self._store.get(owner)
        if entries is None:
            entries = {}
            self._store[owner] = entries
        entry = entries.get(key)
        if entry is not None:
            cached_version, value = entry
            if cached_version == version:
                self.stats.hits += 1
                return value
            # Evict only entries stamped before the owner's *current*
            # version.  Sibling keys recomputed since the mutation are
            # still valid -- clearing them all (the old behaviour) threw
            # away freshly computed values whenever one stale key was
            # looked up after a mutation.
            stale = [k for k, (v, _) in entries.items() if v < version]
            self.stats.invalidations += len(stale)
            for k in stale:
                del entries[k]
        self.stats.misses += 1
        value = compute()
        entries[key] = (version, value)
        return value

    def entries_for(self, owner: object) -> int:
        """Number of live cache entries for ``owner`` (introspection)."""
        return len(self._store.get(owner) or ())

    def clear(self) -> None:
        self._store.clear()
        self.stats.reset()


def all_memos() -> list[VersionedMemo]:
    """Every memo layer created so far (registration order)."""
    return list(_MEMOS)


def clear_all_caches() -> None:
    """Drop every cached value and reset all counters (test isolation)."""
    for memo in _MEMOS:
        memo.clear()


def cache_stats() -> dict[str, CacheStats]:
    """Snapshot of per-layer statistics, keyed by memo name."""
    return {memo.name: memo.stats for memo in _MEMOS}
