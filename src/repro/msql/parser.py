"""Lexer and parser for the extended SQL dialect.

Keywords are case-insensitive; identifiers are lower-cased.  The grammar::

    statement   := set_expr
    set_expr    := primary ((INTERSECT | UNION | EXCEPT) primary)*
    primary     := select | "(" set_expr ")"
    select      := SELECT cols FROM name [WHERE cond]
                   [BELIEVED mode] [AT LEVEL name]
                   [ORDER BY name [ASC|DESC]] [LIMIT int]
    cols        := "*" | name ("," name)*
    cond        := or_term
    or_term     := and_term (OR and_term)*
    and_term    := unary (AND unary)*
    unary       := NOT unary | "(" cond ")" | predicate
    predicate   := name op literal
                 | name [NOT] IN "(" set_expr ")"
    op          := = | <> | != | < | <= | > | >=
"""

from __future__ import annotations

import re

from repro.errors import MultiLogSyntaxError
from repro.msql.ast import (
    And,
    Comparison,
    Condition,
    InSubquery,
    Not,
    Or,
    Select,
    SetExpression,
    UserContext,
)

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<op><>|<=|>=|!=|=|<|>)
  | (?P<punct>[(),;*])
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'[^']*')
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset({
    "select", "from", "where", "and", "or", "not", "in", "believed",
    "intersect", "union", "except", "at", "level", "user", "context",
    "order", "by", "desc", "asc", "limit",
})


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise MultiLogSyntaxError(
                f"unexpected character {text[position]!r} in SQL at offset {position}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "name":
                value = value.lower()
            tokens.append((kind, value))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise MultiLogSyntaxError("unexpected end of SQL text")
        self._index += 1
        return token

    def _expect(self, text: str) -> None:
        kind, value = self._next()
        if value != text:
            raise MultiLogSyntaxError(f"expected {text!r}, found {value!r}")

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token[0] == "name" and token[1] == word

    # ------------------------------------------------------------------
    def parse_statement(self) -> Select | SetExpression | UserContext:
        if self._at_keyword("user"):
            self._next()
            if not self._at_keyword("context"):
                raise MultiLogSyntaxError("expected CONTEXT after USER")
            self._next()
            level = self._identifier("security level")
            if self._peek() is not None and self._peek()[1] == ";":
                self._next()
            if self._peek() is not None:
                raise MultiLogSyntaxError("trailing tokens after USER CONTEXT")
            return UserContext(level)
        expr = self.parse_set_expr()
        if self._peek() is not None and self._peek()[1] == ";":
            self._next()
        if self._peek() is not None:
            raise MultiLogSyntaxError(f"trailing tokens after statement: {self._peek()[1]!r}")
        return expr

    def parse_set_expr(self) -> Select | SetExpression:
        left = self.parse_primary()
        while self._peek() is not None and self._peek()[1] in ("intersect", "union", "except"):
            op = self._next()[1]
            right = self.parse_primary()
            left = SetExpression(op, left, right)
        return left

    def parse_primary(self) -> Select | SetExpression:
        token = self._peek()
        if token is not None and token[1] == "(":
            self._next()
            inner = self.parse_set_expr()
            self._expect(")")
            return inner
        return self.parse_select()

    def parse_select(self) -> Select:
        kind, value = self._next()
        if value != "select":
            raise MultiLogSyntaxError(f"expected SELECT, found {value!r}")
        columns: tuple[str, ...] | None
        if self._peek() is not None and self._peek()[1] == "*":
            self._next()
            columns = None
        else:
            names = [self._identifier("column name")]
            while self._peek() is not None and self._peek()[1] == ",":
                self._next()
                names.append(self._identifier("column name"))
            columns = tuple(names)
        self._expect("from")
        table = self._identifier("table name")
        where: Condition | None = None
        if self._at_keyword("where"):
            self._next()
            where = self.parse_condition()
        believed: str | None = None
        if self._at_keyword("believed"):
            self._next()
            believed = self._identifier("belief mode")
        at_level: str | None = None
        if self._at_keyword("at"):
            self._next()
            if self._at_keyword("level"):
                self._next()
            at_level = self._identifier("security level")
        order_by: tuple[str, bool] | None = None
        if self._at_keyword("order"):
            self._next()
            if not self._at_keyword("by"):
                raise MultiLogSyntaxError("expected BY after ORDER")
            self._next()
            column = self._identifier("column name")
            descending = False
            if self._at_keyword("desc"):
                self._next()
                descending = True
            elif self._at_keyword("asc"):
                self._next()
            order_by = (column, descending)
        limit: int | None = None
        if self._at_keyword("limit"):
            self._next()
            kind, value = self._next()
            if kind != "number" or "." in value:
                raise MultiLogSyntaxError(f"expected an integer LIMIT, found {value!r}")
            limit = int(value)
        return Select(table, columns, where, believed, at_level, order_by, limit)

    def _identifier(self, what: str) -> str:
        kind, value = self._next()
        if kind != "name" or value in KEYWORDS:
            raise MultiLogSyntaxError(f"expected a {what}, found {value!r}")
        return value

    # -- conditions ------------------------------------------------------
    def parse_condition(self) -> Condition:
        left = self._and_term()
        while self._at_keyword("or"):
            self._next()
            left = Or(left, self._and_term())
        return left

    def _and_term(self) -> Condition:
        left = self._unary()
        while self._at_keyword("and"):
            self._next()
            left = And(left, self._unary())
        return left

    def _unary(self) -> Condition:
        if self._at_keyword("not"):
            self._next()
            return Not(self._unary())
        token = self._peek()
        if token is not None and token[1] == "(":
            # Either a parenthesized condition or a subquery used by a
            # preceding IN -- here it can only be a condition group.
            self._next()
            inner = self.parse_condition()
            self._expect(")")
            return inner
        return self._predicate()

    def _predicate(self) -> Condition:
        attribute = self._identifier("attribute name")
        negated = False
        if self._at_keyword("not"):
            self._next()
            negated = True
            if not self._at_keyword("in"):
                raise MultiLogSyntaxError("expected IN after NOT")
        if self._at_keyword("in"):
            self._next()
            self._expect("(")
            query = self.parse_set_expr()
            self._expect(")")
            return InSubquery(attribute, query, negated)
        if negated:
            raise MultiLogSyntaxError("NOT must be followed by IN here")
        kind, op = self._next()
        if kind != "op":
            raise MultiLogSyntaxError(f"expected a comparison operator, found {op!r}")
        literal = self._literal()
        return Comparison(attribute, "!=" if op == "<>" else op, literal)

    def _literal(self) -> object:
        kind, value = self._next()
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "name" and value not in KEYWORDS:
            return value
        raise MultiLogSyntaxError(f"expected a literal, found {value!r}")


def parse_sql(text: str) -> Select | SetExpression | UserContext:
    """Parse one extended-SQL statement."""
    return _Parser(_tokenize(text)).parse_statement()
