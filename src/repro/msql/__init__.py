"""The extended SQL front-end with ``BELIEVED <mode>`` (Section 3.2)."""

from repro.msql.ast import (
    And,
    Comparison,
    Condition,
    InSubquery,
    Not,
    Or,
    Select,
    SetExpression,
    UserContext,
)
from repro.msql.executor import (
    WITHOUT_DOUBT_QUERY,
    Catalog,
    ResultSet,
    SqlSession,
)
from repro.msql.parser import parse_sql

__all__ = [
    "And",
    "Catalog",
    "Comparison",
    "Condition",
    "InSubquery",
    "Not",
    "Or",
    "ResultSet",
    "Select",
    "SetExpression",
    "SqlSession",
    "UserContext",
    "WITHOUT_DOUBT_QUERY",
    "parse_sql",
]
