"""AST of the extended SQL dialect (the Section 3.2 surface syntax).

The dialect is deliberately small: single-table SELECTs with boolean
WHERE conditions, the ``BELIEVED <mode>`` clause the paper proposes, and
the set operations (INTERSECT / UNION / EXCEPT) its headline query uses.
"""

from __future__ import annotations

from dataclasses import dataclass


class Condition:
    """Base class of WHERE conditions."""


@dataclass(frozen=True)
class Comparison(Condition):
    """``attribute <op> literal`` with op in = <> < <= > >=."""

    attribute: str
    op: str
    literal: object


@dataclass(frozen=True)
class InSubquery(Condition):
    """``attribute [NOT] IN ( <set expression> )``."""

    attribute: str
    query: "SetExpression | Select"
    negated: bool = False


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition


@dataclass(frozen=True)
class Select:
    """``SELECT cols FROM table [WHERE cond] [BELIEVED mode] [AT level]
    [ORDER BY col [DESC]] [LIMIT n]``.

    ``columns`` is ``None`` for ``SELECT *``.  ``believed`` is the belief
    mode name (``cautiously`` etc.) or ``None`` for the plain
    Jajodia-Sandhu view.  ``at_level`` lets a query speculate about the
    belief of a *lower* level ("theorize about the belief of others").
    """

    table: str
    columns: tuple[str, ...] | None
    where: Condition | None = None
    believed: str | None = None
    at_level: str | None = None
    order_by: tuple[str, bool] | None = None  # (column, descending)
    limit: int | None = None


@dataclass(frozen=True)
class SetExpression:
    """``left (INTERSECT|UNION|EXCEPT) right`` over row sets."""

    op: str
    left: "SetExpression | Select"
    right: "SetExpression | Select"


@dataclass(frozen=True)
class UserContext:
    """``USER CONTEXT <level>`` -- the session-level preamble the paper's
    Section 3.2 example opens with; switches the evaluation clearance."""

    level: str
