"""Executor for the extended SQL dialect.

A :class:`Catalog` holds named multilevel relations; a :class:`SqlSession`
binds a catalog to a user context (clearance).  Execution semantics:

* no ``BELIEVED`` clause -- the statement sees the ordinary
  Jajodia-Sandhu view at the session clearance (what ``select * from
  mission`` returns in Section 3);
* ``BELIEVED <mode>`` -- the statement sees ``beta(r, level, mode)``;
  built-in modes accept every paper alias (``cautiously``, ``firmly``,
  ``optimistically``, ...), and custom modes registered on the session's
  :class:`~repro.belief.modes.ModeRegistry` work the same way;
* ``AT LEVEL l`` -- evaluates the belief at a *dominated* level ``l``
  (belief speculation about other users); read-up is refused;
* set operations compare projected data rows (classifications do not
  participate, matching the paper's query which intersects starship
  names).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.belief.modes import ModeRegistry, default_registry
from repro.errors import AccessDeniedError, MLSError, SchemaError
from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import MLSTuple
from repro.mls.views import view_at
from repro.msql.ast import (
    And,
    Comparison,
    Condition,
    InSubquery,
    Not,
    Or,
    Select,
    SetExpression,
    UserContext,
)
from repro.msql.parser import parse_sql

Row = tuple[object, ...]


@dataclass
class ResultSet:
    """Ordered, de-duplicated rows plus their column names."""

    columns: tuple[str, ...]
    rows: list[Row] = field(default_factory=list)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def as_set(self) -> set[Row]:
        return set(self.rows)

    def column(self, name: str) -> list[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


class Catalog:
    """Named multilevel relations visible to SQL sessions."""

    def __init__(self) -> None:
        self._tables: dict[str, MLSRelation] = {}

    def register(self, relation: MLSRelation, name: str | None = None) -> None:
        self._tables[(name or relation.schema.name).lower()] = relation

    def table(self, name: str) -> MLSRelation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def tables(self) -> list[str]:
        return sorted(self._tables)


class SqlSession:
    """One user's SQL interface: catalog + clearance + belief modes."""

    def __init__(self, catalog: Catalog, clearance: Level,
                 registry: ModeRegistry | None = None):
        self.catalog = catalog
        self.clearance = clearance
        self.registry = registry if registry is not None else default_registry()

    # ------------------------------------------------------------------
    def execute(self, sql: str | Select | SetExpression | UserContext) -> ResultSet:
        """Run one statement and return its rows.

        ``USER CONTEXT l`` switches the session clearance (upward moves
        require that the catalog's lattices actually declare the level;
        the *data* guard stays per-relation) and yields an empty result.
        """
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, UserContext):
            self.clearance = statement.level
            return ResultSet(("context",), [(statement.level,)])
        return self._evaluate(statement)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Run a ``;``-separated script (the paper's example opens with a
        ``user context u`` line followed by the query)."""
        results = []
        for piece in sql.split(";"):
            if piece.strip():
                results.append(self.execute(piece))
        return results

    def _evaluate(self, node: Select | SetExpression) -> ResultSet:
        if isinstance(node, SetExpression):
            left = self._evaluate(node.left)
            right = self._evaluate(node.right)
            if len(left.columns) != len(right.columns):
                raise SchemaError(
                    "set operation over results with different column counts"
                )
            if node.op == "intersect":
                keep = [row for row in left.rows if row in right.as_set()]
            elif node.op == "union":
                keep = left.rows + [row for row in right.rows if row not in left.as_set()]
            else:  # except
                keep = [row for row in left.rows if row not in right.as_set()]
            deduped: list[Row] = []
            seen: set[Row] = set()
            for row in keep:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            return ResultSet(left.columns, deduped)
        return self._evaluate_select(node)

    def _evaluate_select(self, select: Select) -> ResultSet:
        relation = self.catalog.table(select.table)
        lattice = relation.schema.lattice
        level = select.at_level or self.clearance
        lattice.check_level(level)
        if not lattice.leq(level, self.clearance):
            raise AccessDeniedError(
                f"no read-up: cannot evaluate at level {level!r} from clearance "
                f"{self.clearance!r}"
            )
        if select.believed is None:
            source = view_at(relation, level)
        else:
            mode_fn = self.registry.resolve(select.believed)
            source = mode_fn(relation, level)
        if select.where is not None:
            source = source.select(lambda t: self._condition(select.where, t, level))
        columns = select.columns or relation.schema.attributes
        for column in columns:
            relation.schema.position(column)
        rows: list[Row] = []
        seen: set[Row] = set()
        for t in source:
            row = tuple(t.value(c) for c in columns)
            if row not in seen:
                seen.add(row)
                rows.append(row)
        if select.order_by is not None:
            column, descending = select.order_by
            if column not in columns:
                raise SchemaError(f"ORDER BY column {column!r} not in the select list")
            index = columns.index(column)
            rows.sort(key=lambda r: repr(r[index]), reverse=descending)
        if select.limit is not None:
            rows = rows[:select.limit]
        return ResultSet(tuple(columns), rows)

    # ------------------------------------------------------------------
    def _condition(self, condition: Condition, t: MLSTuple, level: Level) -> bool:
        if isinstance(condition, Comparison):
            value = t.value(condition.attribute)
            other = condition.literal
            try:
                if condition.op == "=":
                    return value == other
                if condition.op == "!=":
                    return value != other
                if condition.op == "<":
                    return value < other       # type: ignore[operator]
                if condition.op == "<=":
                    return value <= other      # type: ignore[operator]
                if condition.op == ">":
                    return value > other       # type: ignore[operator]
                if condition.op == ">=":
                    return value >= other      # type: ignore[operator]
            except TypeError:
                return False
            raise MLSError(f"unknown comparison operator {condition.op!r}")
        if isinstance(condition, InSubquery):
            result = self._evaluate(condition.query)
            if len(result.columns) != 1:
                raise SchemaError("IN subquery must produce exactly one column")
            members = {row[0] for row in result.rows}
            found = t.value(condition.attribute) in members
            return not found if condition.negated else found
        if isinstance(condition, And):
            return (self._condition(condition.left, t, level)
                    and self._condition(condition.right, t, level))
        if isinstance(condition, Or):
            return (self._condition(condition.left, t, level)
                    or self._condition(condition.right, t, level))
        if isinstance(condition, Not):
            return not self._condition(condition.operand, t, level)
        raise MLSError(f"unknown condition node {condition!r}")


#: The paper's headline query (Section 3.2): starships spying on Mars
#: "without any doubt" -- believed in every mode at the user's level.
WITHOUT_DOUBT_QUERY = """
select starship from mission where starship in (
    (select starship from mission
       where destination = mars and objective = spying
       believed cautiously)
    intersect
    (select starship from mission
       where destination = mars and objective = spying
       believed firmly)
    intersect
    (select starship from mission
       where destination = mars and objective = spying
       believed optimistically)
)
"""
