"""Concrete syntax for MultiLog programs.

The syntax follows the paper's notation as closely as ASCII allows::

    % Lambda: the security lattice
    level(u).  level(c).  level(s).
    order(u, c).  order(c, s).

    % Sigma: secured data, atomic or molecular
    u[p(k : a -u-> v)].
    s[mission(avenger : starship -s-> avenger; objective -s-> shipping;
              destination -s-> pluto)].
    c[p(k : a -c-> t)] :- q(j).
    s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau.

    % Pi: ordinary clauses
    q(j).

    % Queries
    ?- c[p(k : a -u-> v)] << opt.

Details:

* ``a -c-> v`` writes the paper's labelled arrow; ``a -> v`` uses a
  *don't-care* classification (Section 7), which parses as a fresh
  variable.
* Identifiers starting upper-case (or ``_``) are variables; a bare ``_``
  is an anonymous (fresh) variable.
* ``<< mode`` builds a b-atom; the mode may be a variable.
* ``%`` starts a comment; molecule separators may be ``;`` or ``,``.
"""

from __future__ import annotations

import itertools
import re

from repro.datalog.terms import Constant, Term, Variable
from repro.errors import MultiLogSyntaxError
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    BodyAtom,
    Clause,
    HAtom,
    HeadAtom,
    LAtom,
    MAtom,
    MMolecule,
    MultiLogDatabase,
    PAtom,
    Query,
)

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<query>\?-)
  | (?P<implies>:-)
  | (?P<believes><<)
  | (?P<arrow>->)
  | (?P<punct>[\[\]():;,.\-])
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'[^']*')
    """,
    re.VERBOSE,
)

_ANON = itertools.count()


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(source):
        match = _TOKEN.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise MultiLogSyntaxError(
                f"unexpected character {source[position]!r}", line, column
            )
        text = match.group()
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token | None:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            raise MultiLogSyntaxError(
                "unexpected end of input",
                last.line if last else 1,
                last.column if last else 1,
            )
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise MultiLogSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _error(self, message: str, token: _Token) -> MultiLogSyntaxError:
        return MultiLogSyntaxError(message, token.line, token.column)

    # -- terms ----------------------------------------------------------
    def _term(self) -> Term:
        token = self._next()
        if token.kind == "name":
            if token.text == "_":
                return Variable(f"_Anon{next(_ANON)}")
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "number":
            return Constant(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            return Constant(token.text[1:-1])
        raise self._error(f"expected a term, found {token.text!r}", token)

    # -- atoms ----------------------------------------------------------
    def _is_m_start(self) -> bool:
        first = self._peek()
        second = self._peek(1)
        return (
            first is not None and first.kind in ("name", "number", "string")
            and second is not None and second.text == "["
        )

    def _m_atom_or_molecule(self) -> MAtom | MMolecule:
        level = self._term()
        self._expect("[")
        pred_token = self._next()
        if pred_token.kind != "name" or pred_token.text[0].isupper():
            raise self._error(
                f"expected a predicate name, found {pred_token.text!r}", pred_token
            )
        pred = pred_token.text
        self._expect("(")
        key = self._term()
        self._expect(":")
        assignments: list[tuple[str, Term, Term]] = []
        while True:
            attr_token = self._next()
            if attr_token.kind != "name" or attr_token.text[0].isupper():
                raise self._error(
                    f"expected an attribute name, found {attr_token.text!r}", attr_token
                )
            cls, value = self._arrow_tail()
            assignments.append((attr_token.text, cls, value))
            separator = self._next()
            if separator.text == ")":
                break
            if separator.text not in (";", ","):
                raise self._error(
                    f"expected ';', ',' or ')', found {separator.text!r}", separator
                )
        self._expect("]")
        if len(assignments) == 1:
            attr, cls, value = assignments[0]
            return MAtom(level, pred, key, attr, cls, value)
        return MMolecule(level, pred, key, tuple(assignments))

    def _arrow_tail(self) -> tuple[Term, Term]:
        """Parse ``-c-> v`` or the don't-care ``-> v`` after an attribute."""
        token = self._next()
        if token.text == "->":
            return Variable(f"_Care{next(_ANON)}"), self._term()
        if token.text == "-":
            cls = self._term()
            self._expect("->")
            return cls, self._term()
        raise self._error(
            f"expected '-level->' or '->', found {token.text!r}", token
        )

    def _p_atom(self) -> PAtom | LAtom | HAtom:
        name_token = self._next()
        if name_token.kind != "name" or name_token.text[0].isupper() or name_token.text[0] == "_":
            raise self._error(
                f"expected a predicate name, found {name_token.text!r}", name_token
            )
        name = name_token.text
        args: list[Term] = []
        if self._peek() is not None and self._peek().text == "(":
            self._expect("(")
            args.append(self._term())
            while True:
                token = self._next()
                if token.text == ")":
                    break
                if token.text != ",":
                    raise self._error(f"expected ',' or ')', found {token.text!r}", token)
                args.append(self._term())
        if name == "level" and len(args) == 1:
            return LAtom(args[0])
        if name == "order" and len(args) == 2:
            return HAtom(args[0], args[1])
        return PAtom(name, tuple(args))

    def _body_atom(self) -> BodyAtom:
        if self._is_m_start():
            matom = self._m_atom_or_molecule()
            token = self._peek()
            if token is not None and token.text == "<<":
                self._next()
                mode = self._term()
                if isinstance(matom, MMolecule):
                    return BMolecule(matom, mode)
                return BAtom(matom, mode)
            return matom
        return self._p_atom()

    def _head_atom(self) -> HeadAtom:
        if self._is_m_start():
            matom = self._m_atom_or_molecule()
            token = self._peek()
            if token is not None and token.text == "<<":
                raise self._error("b-atoms may not appear in clause heads", token)
            return matom
        return self._p_atom()

    # -- clauses ----------------------------------------------------------
    def _body(self) -> tuple[BodyAtom, ...]:
        atoms = [self._body_atom()]
        while True:
            token = self._next()
            if token.text == ".":
                return tuple(atoms)
            if token.text != ",":
                raise self._error(f"expected ',' or '.', found {token.text!r}", token)
            atoms.append(self._body_atom())

    def parse_clause_or_query(self) -> Clause | Query:
        token = self._peek()
        if token is not None and token.text == "?-":
            self._next()
            return Query(self._body())
        head = self._head_atom()
        token = self._next()
        if token.text == ".":
            return Clause(head, ())
        if token.text != ":-":
            raise self._error(f"expected ':-' or '.', found {token.text!r}", token)
        return Clause(head, self._body())

    def parse_database(self) -> MultiLogDatabase:
        database = MultiLogDatabase()
        clauses = []
        while self._peek() is not None:
            item = self.parse_clause_or_query()
            if isinstance(item, Query):
                database.add_query(item)
            else:
                clauses.append(item)
        database.add_clauses(clauses)  # bulk load: one version bump
        return database


def parse_database(source: str) -> MultiLogDatabase:
    """Parse MultiLog source text into a database ``<Lambda, Sigma, Pi, Q>``."""
    return _Parser(_tokenize(source)).parse_database()


def parse_query(source: str) -> Query:
    """Parse a single query (with or without the leading ``?-``)."""
    text = source.strip()
    if not text.startswith("?-"):
        text = "?- " + text
    if not text.rstrip().endswith("."):
        text = text + "."
    parser = _Parser(_tokenize(text))
    item = parser.parse_clause_or_query()
    if parser._peek() is not None:
        token = parser._peek()
        raise MultiLogSyntaxError("trailing tokens after query", token.line, token.column)
    assert isinstance(item, Query)
    return item


def parse_clause(source: str) -> Clause:
    """Parse a single clause."""
    parser = _Parser(_tokenize(source.strip()))
    item = parser.parse_clause_or_query()
    if not isinstance(item, Clause):
        raise MultiLogSyntaxError("expected a clause, found a query")
    if parser._peek() is not None:
        token = parser._peek()
        raise MultiLogSyntaxError("trailing tokens after clause", token.line, token.column)
    return item
