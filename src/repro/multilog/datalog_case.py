"""Proposition 6.1: Datalog is a special case of MultiLog.

A MultiLog database ``<{}, {}, P, {<- G}>`` with a classical Datalog
program ``P`` behaves exactly like Datalog: the only proof rules that fire
are EMPTY, AND and DEDUCTION-G, and the answers coincide with a native
Datalog engine's.

:func:`run_both` pushes the same program through (a) the MultiLog
operational engine (as a pure-Pi database under the implicit ``system``
level) and (b) the native bottom-up Datalog engine, and returns both
answer sets so tests/benches can assert they agree.
"""

from __future__ import annotations

from repro.datalog import answer_rows, evaluate
from repro.datalog.parse import parse_atom as parse_datalog_atom
from repro.datalog.parse import parse_program as parse_datalog_program
from repro.errors import MultiLogError
from repro.multilog.ast import Query
from repro.multilog.parser import parse_query
from repro.multilog.session import MultiLogSession


def as_pure_datalog_database(source: str) -> MultiLogSession:
    """Load Datalog text as a pure-Pi MultiLog database.

    Positive Datalog syntax is a subset of MultiLog's p-clause syntax, so
    the MultiLog parser handles it directly.  A program that sneaks in
    m-/l-/h-clauses is rejected: Proposition 6.1 is about the degenerate
    case with empty Lambda and Sigma.
    """
    session = MultiLogSession(source)
    db = session.database
    if db.secured_clauses:
        raise MultiLogError("not a pure Datalog program: Sigma is non-empty")
    declared = [
        c for c in db.lattice_clauses
        if str(c.head) != "level(system)"
    ]
    if declared:
        raise MultiLogError("not a pure Datalog program: Lambda is non-empty")
    return session


def run_both(program_text: str, query_text: str) -> tuple[set[tuple], set[tuple]]:
    """Answers of ``query_text`` via MultiLog and via native Datalog.

    Both are returned as sets of ground argument tuples of the goal atom.
    """
    # Native Datalog.
    native_program = parse_datalog_program(program_text)
    goal = parse_datalog_atom(query_text)
    native = answer_rows(evaluate(native_program), goal)

    # Through MultiLog.
    session = as_pure_datalog_database(program_text)
    query: Query = parse_query(query_text)
    goal_args = goal.args
    multilog: set[tuple] = set()
    for answer in session.ask(query):
        row = []
        for arg in goal_args:
            name = getattr(arg, "name", None)
            if name is not None:
                row.append(answer[name])
            else:
                row.append(arg.value)  # type: ignore[union-attr]
        multilog.add(tuple(row))
    return multilog, native


def proposition_holds(program_text: str, query_text: str) -> bool:
    """True when both engines return identical answers (Proposition 6.1)."""
    multilog, native = run_both(program_text, query_text)
    return multilog == native
