"""Abstract syntax of MultiLog (Section 5.1).

The language has five atom kinds:

* **m-atoms** ``s[p(k : a -c-> v)]`` -- one classified column of an MLS
  tuple; ``s`` plays the tuple-class role, ``c`` the cell classification.
* **m-molecules** ``s[p(k : a1 -c1-> v1; ...; an -cn-> vn)]`` -- syntactic
  sugar for the conjunction of the component m-atoms (footnote 8).
* **b-atoms** ``m-atom << mode`` -- belief in one of the modes; never
  allowed in clause heads.
* **p-atoms** -- ordinary Datalog atoms.
* **l-atoms** ``level(s)`` and **h-atoms** ``order(l, h)`` -- the security
  lattice declarations.

A database (Definition 5.1) is ``<Lambda, Sigma, Pi, Q>``: lattice
clauses, secured-data clauses, plain clauses, and queries.

Terms are shared with the Datalog substrate
(:mod:`repro.datalog.terms`): constants and variables; attribute names
are plain strings (the paper draws them from the finite set ``A``).
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.datalog.terms import Constant, Term, Variable, make_term
from repro.errors import MultiLogError

#: The distinguished null value inside MultiLog programs.
NULL_VALUE = "null"


def term(value: object) -> Term:
    """Coerce ``value`` using the Datalog variable/constant convention."""
    return make_term(value)


def format_term(term: Term) -> str:
    """Render a term in re-parseable concrete syntax.

    Variables print by name; lower-case identifier constants and numbers
    print bare; any other string constant is single-quoted.
    """
    if isinstance(term, Variable):
        return term.name
    value = term.value
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if re.fullmatch(r"[a-z][A-Za-z0-9_]*", text):
        return text
    return f"'{text}'"


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MAtom:
    """``level[pred(key : attr -cls-> value)]``."""

    level: Term
    pred: str
    key: Term
    attr: str
    cls: Term
    value: Term

    def __str__(self) -> str:
        return (f"{format_term(self.level)}[{self.pred}({format_term(self.key)} : "
                f"{self.attr} -{format_term(self.cls)}-> {format_term(self.value)})]")

    def variables(self) -> set[Variable]:
        return {t for t in (self.level, self.key, self.cls, self.value) if isinstance(t, Variable)}


@dataclass(frozen=True)
class MMolecule:
    """``level[pred(key : a1 -c1-> v1; ...)]`` -- sugar for m-atom conjunction."""

    level: Term
    pred: str
    key: Term
    assignments: tuple[tuple[str, Term, Term], ...]  # (attr, cls, value)

    def atoms(self) -> tuple[MAtom, ...]:
        """The equivalent atomic conjunction (footnote 8)."""
        return tuple(
            MAtom(self.level, self.pred, self.key, attr, cls, value)
            for attr, cls, value in self.assignments
        )

    def __str__(self) -> str:
        inner = "; ".join(
            f"{a} -{format_term(c)}-> {format_term(v)}" for a, c, v in self.assignments
        )
        return f"{format_term(self.level)}[{self.pred}({format_term(self.key)} : {inner})]"

    def variables(self) -> set[Variable]:
        out = {t for t in (self.level, self.key) if isinstance(t, Variable)}
        for _attr, cls, value in self.assignments:
            out |= {t for t in (cls, value) if isinstance(t, Variable)}
        return out


@dataclass(frozen=True)
class BAtom:
    """``m-atom << mode`` -- belief in mode ``mode`` (a constant or variable)."""

    matom: MAtom
    mode: Term

    def __str__(self) -> str:
        return f"{self.matom} << {format_term(self.mode)}"

    def variables(self) -> set[Variable]:
        out = self.matom.variables()
        if isinstance(self.mode, Variable):
            out.add(self.mode)
        return out


@dataclass(frozen=True)
class BMolecule:
    """``m-molecule << mode`` -- believes every component cell."""

    molecule: MMolecule
    mode: Term

    def atoms(self) -> tuple[BAtom, ...]:
        return tuple(BAtom(m, self.mode) for m in self.molecule.atoms())

    def __str__(self) -> str:
        return f"{self.molecule} << {format_term(self.mode)}"

    def variables(self) -> set[Variable]:
        out = self.molecule.variables()
        if isinstance(self.mode, Variable):
            out.add(self.mode)
        return out


@dataclass(frozen=True)
class PAtom:
    """An ordinary predicate atom ``p(t1, ..., tn)``."""

    pred: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(format_term(a) for a in self.args)})"

    def variables(self) -> set[Variable]:
        return {t for t in self.args if isinstance(t, Variable)}


@dataclass(frozen=True)
class LAtom:
    """``level(s)`` -- declares a security level."""

    level: Term

    def __str__(self) -> str:
        return f"level({format_term(self.level)})"

    def variables(self) -> set[Variable]:
        return {self.level} if isinstance(self.level, Variable) else set()


@dataclass(frozen=True)
class HAtom:
    """``order(l, h)`` -- declares ``l`` immediately below ``h``."""

    low: Term
    high: Term

    def __str__(self) -> str:
        return f"order({format_term(self.low)}, {format_term(self.high)})"

    def variables(self) -> set[Variable]:
        return {t for t in (self.low, self.high) if isinstance(t, Variable)}


@dataclass(frozen=True)
class LeqGoal:
    """An internal goal ``l <= h`` (proved by REFLEXIVITY/TRANSITIVITY)."""

    low: Term
    high: Term

    def __str__(self) -> str:
        return f"{self.low} <= {self.high}"

    def variables(self) -> set[Variable]:
        return {t for t in (self.low, self.high) if isinstance(t, Variable)}


BodyAtom = MAtom | MMolecule | BAtom | BMolecule | PAtom | LAtom | HAtom | LeqGoal
HeadAtom = MAtom | MMolecule | PAtom | LAtom | HAtom


# ----------------------------------------------------------------------
# Clauses and databases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Clause:
    """``head <- body`` (a fact when the body is empty).

    b-atoms may not appear in heads (Section 5.1: "we do not allow
    b-atoms to appear in the consequent").
    """

    head: HeadAtom
    body: tuple[BodyAtom, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.head, (BAtom, BMolecule)):
            raise MultiLogError(f"b-atoms may not appear in clause heads: {self.head}")

    @property
    def is_fact(self) -> bool:
        return not self.body

    def kind(self) -> str:
        """m-, p-, l- or h-clause, by the head atom (Section 5.1)."""
        if isinstance(self.head, (MAtom, MMolecule)):
            return "m"
        if isinstance(self.head, LAtom):
            return "l"
        if isinstance(self.head, HAtom):
            return "h"
        return "p"

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(b) for b in self.body)}."


@dataclass(frozen=True)
class Query:
    """``<- B1, ..., Bm`` (written ``?- ...`` in the concrete syntax)."""

    body: tuple[BodyAtom, ...]

    def __str__(self) -> str:
        return f"?- {', '.join(str(b) for b in self.body)}."

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for atom in self.body:
            out |= atom.variables()
        return out


@dataclass(eq=False)  # identity hash so memo layers can hold it weakly
class MultiLogDatabase:
    """A MultiLog database ``<Lambda, Sigma, Pi, Q>`` (Definition 5.1)."""

    lattice_clauses: list[Clause] = field(default_factory=list)   # Lambda
    secured_clauses: list[Clause] = field(default_factory=list)   # Sigma
    plain_clauses: list[Clause] = field(default_factory=list)     # Pi
    queries: list[Query] = field(default_factory=list)            # Q
    #: monotone counter bumped on every added clause; the tau-translation
    #: memo (:mod:`repro.cache`) keys reduced programs on it.
    version: int = field(default=0, compare=False, repr=False)

    def _component_for(self, clause: Clause) -> list[Clause]:
        """The Lambda/Sigma/Pi list a clause files into, by head kind."""
        kind = clause.kind()
        if kind in ("l", "h"):
            return self.lattice_clauses
        if kind == "m":
            return self.secured_clauses
        return self.plain_clauses

    def add(self, clause: Clause) -> None:
        """File a clause into the right component by its head kind."""
        self._component_for(clause).append(clause)
        self.version += 1

    def add_clauses(self, clauses: Iterable[Clause]) -> int:
        """Bulk-load: file every clause, bump ``version`` once.

        The single bump is the point -- loaders (program text, journal
        replay, workload generators) add thousands of clauses before the
        first query, and a per-clause bump would invalidate version-keyed
        memo layers once per clause instead of once per load.  Returns
        the number of clauses filed.
        """
        count = 0
        for clause in clauses:
            self._component_for(clause).append(clause)
            count += 1
        if count:
            self.version += 1
        return count

    def add_query(self, query: Query) -> None:
        self.queries.append(query)
        self.version += 1

    def retract(self, clause: Clause) -> None:
        """Undo the most recent :meth:`add` of ``clause`` (rollback).

        Removes the clause from its component (matched by identity, from
        the end) and restores the pre-add ``version``, so memo layers and
        sibling-session caches built before the add stay valid -- the
        content is byte-identical to the pre-add state.  Only safe for a
        clause that was the latest mutation; ``assert_clause`` uses it to
        stay atomic when validation rejects a trial add.
        """
        kind = clause.kind()
        if kind in ("l", "h"):
            component = self.lattice_clauses
        elif kind == "m":
            component = self.secured_clauses
        else:
            component = self.plain_clauses
        for index in range(len(component) - 1, -1, -1):
            if component[index] is clause:
                del component[index]
                self.version -= 1
                return
        raise ValueError(f"clause {clause} is not in the database")

    def clauses(self) -> list[Clause]:
        return self.lattice_clauses + self.secured_clauses + self.plain_clauses

    def atomized_secured_clauses(self) -> list[Clause]:
        """Sigma with every molecule broken into atomic conjunctions.

        Head molecules expand into one clause per component m-atom (the
        preprocessor step of Section 5.3); body molecules expand in place.
        """
        out: list[Clause] = []
        for clause in self.secured_clauses:
            body: list[BodyAtom] = []
            for atom in clause.body:
                if isinstance(atom, (MMolecule, BMolecule)):
                    body.extend(atom.atoms())
                else:
                    body.append(atom)
            heads: Iterable[HeadAtom]
            if isinstance(clause.head, MMolecule):
                heads = clause.head.atoms()
            else:
                heads = (clause.head,)
            for head in heads:
                out.append(Clause(head, tuple(body)))
        return out

    def atomized_plain_clauses(self) -> list[Clause]:
        """Pi with body molecules expanded (heads are already p-atoms)."""
        out: list[Clause] = []
        for clause in self.plain_clauses:
            body: list[BodyAtom] = []
            for atom in clause.body:
                if isinstance(atom, (MMolecule, BMolecule)):
                    body.extend(atom.atoms())
                else:
                    body.append(atom)
            out.append(Clause(clause.head, tuple(body)))
        return out

    def security_labels(self) -> set[str]:
        """Every ground security label mentioned anywhere in the database."""
        labels: set[str] = set()
        for clause in self.lattice_clauses:
            for atom in [clause.head, *clause.body]:
                if isinstance(atom, LAtom) and isinstance(atom.level, Constant):
                    labels.add(str(atom.level.value))
                if isinstance(atom, HAtom):
                    for t in (atom.low, atom.high):
                        if isinstance(t, Constant):
                            labels.add(str(t.value))
        return labels

    def __str__(self) -> str:
        sections = []
        for title, clauses in (
            ("% Lambda (lattice)", self.lattice_clauses),
            ("% Sigma (secured data)", self.secured_clauses),
            ("% Pi (plain clauses)", self.plain_clauses),
        ):
            if clauses:
                sections.append(title)
                sections.extend(str(c) for c in clauses)
        if self.queries:
            sections.append("% Queries")
            sections.extend(str(q) for q in self.queries)
        return "\n".join(sections)
