"""Empirical validation of Theorem 6.1 (operational <=> reduction).

The paper proves the two semantics equivalent; this module *measures* it:
given a database and a clearance, it compares

* the derivable m-cells visible at the clearance,
* the believed cells for every built-in mode at every level below the
  clearance, and
* the answers of any supplied queries through both engines,

and reports every discrepancy.  The property test in
``tests/multilog/test_equivalence.py`` runs this over randomized
databases; ``benchmarks/bench_thm61_equivalence.py`` does it at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.multilog.admissibility import check_admissibility
from repro.multilog.ast import MultiLogDatabase, Query
from repro.multilog.proof import BUILTIN_MODES, OperationalEngine
from repro.multilog.reduction import ReducedProgram, translate


@dataclass
class EquivalenceReport:
    """Discrepancies between the two semantics (empty means equivalent)."""

    cell_mismatches: list[str] = field(default_factory=list)
    belief_mismatches: list[str] = field(default_factory=list)
    query_mismatches: list[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not (self.cell_mismatches or self.belief_mismatches or self.query_mismatches)

    def all_messages(self) -> list[str]:
        return self.cell_mismatches + self.belief_mismatches + self.query_mismatches


def _normalize_answer(answer: dict[str, object]) -> tuple:
    return tuple(sorted((k, repr(v)) for k, v in answer.items()))


def check_equivalence(db: MultiLogDatabase, clearance: str,
                      queries: list[Query] | None = None) -> EquivalenceReport:
    """Compare the two semantics on ``db`` at ``clearance``."""
    context = check_admissibility(db)
    lattice = context.lattice
    operational = OperationalEngine(db, clearance, context)
    operational.compute()
    reduced: ReducedProgram = translate(db, clearance, context)
    report = EquivalenceReport()

    # 1. Derivable cells visible at the clearance.  The reduction keeps
    # unreachable high facts around (facts are not guarded), so compare
    # the <= clearance slices.
    op_cells = {row for row in operational.cells()}
    red_cells = {
        row for row in reduced.rel_rows()
        if lattice.leq(str(row[5]), clearance)
    }
    for row in sorted(op_cells - red_cells, key=repr):
        report.cell_mismatches.append(f"operational-only cell: {row!r}")
    for row in sorted(red_cells - op_cells, key=repr):
        report.cell_mismatches.append(f"reduction-only cell: {row!r}")

    # 2. Beliefs at every level below the clearance, every built-in mode.
    for level in sorted(lattice.down_set(clearance)):
        for mode in sorted(BUILTIN_MODES):
            op = {
                (r[0], r[1], r[2], r[3], r[4])
                for r in operational.believed_cells(mode, level)
            }
            red = reduced.bel_rows(mode, level)
            if op != red:
                report.belief_mismatches.append(
                    f"bel({mode!r}, {level!r}): operational-only "
                    f"{sorted(op - red, key=repr)!r}, reduction-only "
                    f"{sorted(red - op, key=repr)!r}"
                )

    # 3. Query answers.
    for query in queries or []:
        op_answers = {
            _normalize_answer(answer) for answer in operational.solve(query)
        }
        red_answers = {_normalize_answer(a) for a in reduced.query(query)}
        if op_answers != red_answers:
            report.query_mismatches.append(
                f"query {query}: operational {sorted(op_answers)!r} != "
                f"reduction {sorted(red_answers)!r}"
            )
    return report


def assert_equivalent(db: MultiLogDatabase, clearance: str,
                      queries: list[Query] | None = None) -> None:
    """Raise ``AssertionError`` with the full discrepancy list, if any."""
    report = check_equivalence(db, clearance, queries)
    if not report.equivalent:
        raise AssertionError(
            "Theorem 6.1 violated:\n" + "\n".join(report.all_messages())
        )
