"""Consistency of MultiLog databases (Definition 5.4).

The checks operate on ``[[Sigma]]`` -- the derivable m-cells -- grouped
into *m-predicate instances*: all cells sharing ``(pred, key, level)``
form one molecule, the deductive image of one MLS tuple.

* **Entity integrity** -- each molecule contains at least one key cell
  (a cell whose value equals the molecule key, the paper's
  ``s[p(k : a -c-> k)]`` requirement); key cells are uniformly
  classified; key values are non-null; every non-key classification
  dominates ``C_AK``.
* **Null integrity** -- null cells are classified at ``C_AK``; no two
  distinct molecules at the same level subsume each other (tuple-class
  polyinstantiation is legal, mirroring the relational reading -- see
  :mod:`repro.mls.integrity`).
* **Polyinstantiation integrity** -- the FD ``k, C_AK, Ci -> Ai`` holds
  across molecules of the same predicate.

Note: the paper's own D1 (Figure 10) does *not* satisfy entity integrity
read literally (its molecule has no key cell), so consistency checking is
offered as an explicit call rather than forced at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConsistencyError
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import NULL_VALUE, MultiLogDatabase
from repro.multilog.proof import CellRow, OperationalEngine


@dataclass(frozen=True)
class Molecule:
    """One m-predicate instance: the cells of ``(pred, key, level)``."""

    pred: str
    key: object
    level: str
    cells: tuple[CellRow, ...]

    def key_cells(self) -> tuple[CellRow, ...]:
        return tuple(c for c in self.cells if c[3] == self.key)

    def attribute_map(self) -> dict[str, list[CellRow]]:
        out: dict[str, list[CellRow]] = {}
        for cell in self.cells:
            out.setdefault(cell[2], []).append(cell)
        return out


@dataclass
class ConsistencyReport:
    """All violations found, grouped by property."""

    entity: list[str] = field(default_factory=list)
    null: list[str] = field(default_factory=list)
    polyinstantiation: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.entity or self.null or self.polyinstantiation)

    def all_messages(self) -> list[str]:
        return (
            [f"[entity] {m}" for m in self.entity]
            + [f"[null] {m}" for m in self.null]
            + [f"[polyinstantiation] {m}" for m in self.polyinstantiation]
        )


def derivable_cells(db: MultiLogDatabase, context: LatticeContext | None = None) -> set[CellRow]:
    """``[[Sigma]]`` -- cells derivable at some maximal lattice level."""
    resolved = context if context is not None else check_admissibility(db)
    cells: set[CellRow] = set()
    for top in sorted(resolved.lattice.tops()):
        engine = OperationalEngine(db, top, resolved)
        cells |= set(engine.cells())
    return cells


def molecules(cells: set[CellRow], db: MultiLogDatabase | None = None) -> list[Molecule]:
    """Group cells into m-predicate instances.

    Ground molecular facts in Sigma keep their syntactic tuple boundaries
    (the two polyinstantiated Phantom molecules of Figure 1 both live at
    level s with key ``phantom``; only the stored grouping tells them
    apart).  Remaining -- rule-derived -- cells are grouped by
    ``(pred, key, level)``.
    """
    remaining = set(cells)
    out: list[Molecule] = []
    if db is not None:
        for clause in db.secured_clauses:
            from repro.multilog.ast import MMolecule  # local to avoid cycle

            if not clause.is_fact or not isinstance(clause.head, MMolecule):
                continue
            try:
                rows = tuple(
                    (
                        atom.pred,
                        atom.key.value,        # type: ignore[union-attr]
                        atom.attr,
                        atom.value.value,      # type: ignore[union-attr]
                        str(atom.cls.value),   # type: ignore[union-attr]
                        str(atom.level.value),  # type: ignore[union-attr]
                    )
                    for atom in clause.head.atoms()
                )
            except AttributeError:
                continue  # non-ground molecule fact: handled by grouping below
            # Match against the full cell set: two molecules may share
            # cells (e.g. the same key cell asserted by both), so sharing
            # must not disqualify the second one.
            if all(row in cells for row in rows):
                head = clause.head
                out.append(Molecule(
                    head.pred,
                    head.key.value,              # type: ignore[union-attr]
                    str(head.level.value),       # type: ignore[union-attr]
                    tuple(sorted(rows, key=repr)),
                ))
                remaining -= set(rows)
    grouped: dict[tuple[str, object, str], list[CellRow]] = {}
    for cell in remaining:
        grouped.setdefault((cell[0], cell[1], cell[5]), []).append(cell)
    out.extend(
        Molecule(pred, key, level, tuple(sorted(group, key=repr)))
        for (pred, key, level), group in sorted(grouped.items(), key=repr)
    )
    return out


def _subsumes(a: Molecule, b: Molecule) -> bool:
    """Molecule-level subsumption (Definition 5.4, null integrity)."""
    if a.pred != b.pred or a.key != b.key:
        return False
    map_a, map_b = a.attribute_map(), b.attribute_map()
    if set(map_a) != set(map_b):
        return False
    for attr in map_b:
        pairs_a = {(c[3], c[4]) for c in map_a[attr]}
        for cell in map_b[attr]:
            value, cls = cell[3], cell[4]
            if (value, cls) in pairs_a:
                continue
            if value == NULL_VALUE and any(v != NULL_VALUE for v, _c in pairs_a):
                continue
            return False
    return True


def check_consistency(db: MultiLogDatabase,
                      context: LatticeContext | None = None) -> ConsistencyReport:
    """Run every Definition 5.4 check; returns the full violation report."""
    resolved = context if context is not None else check_admissibility(db)
    lattice = resolved.lattice
    cells = derivable_cells(db, resolved)
    report = ConsistencyReport()
    mols = molecules(cells, db)

    # -- entity integrity ---------------------------------------------------
    # C_AK per molecule *instance* (same-level polyinstantiated molecules
    # share (pred, key, level), so a dict keyed on those would collide).
    key_class: dict[int, str] = {}
    for index, mol in enumerate(mols):
        label = f"{mol.level}[{mol.pred}({mol.key!r} : ...)]"
        if mol.key == NULL_VALUE:
            report.entity.append(f"{label}: apparent key is null")
            continue
        key_cells = mol.key_cells()
        if not key_cells:
            report.entity.append(
                f"{label}: no key cell (requires an m-atom "
                f"{mol.level}[{mol.pred}({mol.key} : a -c-> {mol.key})])"
            )
            continue
        classes = {c[4] for c in key_cells}
        if len(classes) != 1:
            report.entity.append(
                f"{label}: key cells are not uniformly classified ({sorted(classes)})"
            )
            continue
        c_ak = next(iter(classes))
        key_class[index] = c_ak
        for cell in mol.cells:
            if cell in key_cells:
                continue
            if not lattice.leq(c_ak, cell[4]):
                report.entity.append(
                    f"{label}: classification {cell[4]!r} of attribute {cell[2]!r} "
                    f"does not dominate C_AK = {c_ak!r}"
                )

    # -- null integrity -------------------------------------------------------
    for index, mol in enumerate(mols):
        c_ak = key_class.get(index)
        if c_ak is None:
            continue
        for cell in mol.cells:
            if cell[3] == NULL_VALUE and cell[4] != c_ak:
                report.null.append(
                    f"{mol.level}[{mol.pred}({mol.key!r})]: null {cell[2]!r} is "
                    f"classified {cell[4]!r}, not at the key level {c_ak!r}"
                )
    for i, a in enumerate(mols):
        for b in mols[i + 1:]:
            if a.level != b.level or a.cells == b.cells:
                continue
            if _subsumes(a, b) or _subsumes(b, a):
                report.null.append(
                    f"molecules {a.level}[{a.pred}({a.key!r})] subsume each other"
                )

    # -- polyinstantiation integrity ------------------------------------------
    witnesses: dict[tuple, CellRow] = {}
    for index, mol in enumerate(mols):
        c_ak = key_class.get(index)
        if c_ak is None:
            continue
        for cell in mol.cells:
            fd_lhs = (mol.pred, mol.key, c_ak, cell[2], cell[4])
            prior = witnesses.get(fd_lhs)
            if prior is None:
                witnesses[fd_lhs] = cell
            elif prior[3] != cell[3]:
                report.polyinstantiation.append(
                    f"FD k,C_AK,C_i -> A_i violated for {mol.pred}.{cell[2]}: key "
                    f"{mol.key!r} at ({c_ak!r}, {cell[4]!r}) maps to both "
                    f"{prior[3]!r} and {cell[3]!r}"
                )
    return report


def is_consistent(db: MultiLogDatabase, context: LatticeContext | None = None) -> bool:
    """Predicate form of :func:`check_consistency`."""
    return check_consistency(db, context).ok


def assert_consistent(db: MultiLogDatabase, context: LatticeContext | None = None) -> None:
    """Raise :class:`ConsistencyError` listing every violation, if any."""
    report = check_consistency(db, context)
    if not report.ok:
        raise ConsistencyError(
            "database violates Definition 5.4: " + "; ".join(report.all_messages())
        )
