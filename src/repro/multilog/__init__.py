"""MultiLog: the paper's core contribution (Sections 5-7).

* :mod:`~repro.multilog.ast` / :mod:`~repro.multilog.parser` -- the
  language (five atom kinds, molecules, databases ``<Lambda, Sigma, Pi,
  Q>``).
* :mod:`~repro.multilog.admissibility` / :mod:`~repro.multilog.consistency`
  -- Definitions 5.3 and 5.4.
* :mod:`~repro.multilog.proof` -- operational semantics with Figure 11
  proof trees.
* :mod:`~repro.multilog.reduction` -- the tau translation and the Figure
  12 inference engine over the Datalog back-end.
* :mod:`~repro.multilog.equivalence` -- Theorem 6.1, measured.
* :mod:`~repro.multilog.datalog_case` -- Proposition 6.1.
* :mod:`~repro.multilog.extensions` -- Section 7 (FILTER / FILTER-NULL /
  user-defined modes).
* :mod:`~repro.multilog.session` -- the high-level API.
* :mod:`~repro.multilog.bridge` -- MLS relations <-> MultiLog databases.
"""

from repro.multilog.admissibility import (
    LatticeContext,
    check_admissibility,
    is_admissible,
    lambda_meaning,
)
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    Clause,
    HAtom,
    LAtom,
    LeqGoal,
    MAtom,
    MMolecule,
    MultiLogDatabase,
    PAtom,
    Query,
)
from repro.multilog.bridge import believed_relation, cells_to_relation, relation_to_multilog
from repro.multilog.consistency import (
    ConsistencyReport,
    assert_consistent,
    check_consistency,
    derivable_cells,
    is_consistent,
    molecules,
)
from repro.multilog.datalog_case import as_pure_datalog_database, proposition_holds, run_both
from repro.multilog.equivalence import EquivalenceReport, assert_equivalent, check_equivalence
from repro.multilog.fixpoint import HeightStepPair, fixpoint_steps, height_step_report
from repro.multilog.extensions import (
    USER_MODE_EXAMPLE,
    filter_proof,
    filtered_cells,
    surprise_cells,
)
from repro.multilog.parser import parse_clause, parse_database, parse_query
from repro.multilog.proof import (
    BUILTIN_MODES,
    CellRow,
    OperationalEngine,
    ProofTree,
    Prover,
)
from repro.multilog.reduction import (
    ReducedProgram,
    compare_cautious_axiomatizations,
    engine_axioms,
    faithful_figure12_axioms,
    figure12_axioms,
    needs_specialization,
    translate,
)
from repro.multilog.session import SYSTEM_LEVEL, MultiLogSession

__all__ = [
    "BAtom",
    "BMolecule",
    "BUILTIN_MODES",
    "CellRow",
    "Clause",
    "ConsistencyReport",
    "EquivalenceReport",
    "HeightStepPair",
    "HAtom",
    "LAtom",
    "LatticeContext",
    "LeqGoal",
    "MAtom",
    "MMolecule",
    "MultiLogDatabase",
    "MultiLogSession",
    "OperationalEngine",
    "PAtom",
    "ProofTree",
    "Prover",
    "Query",
    "ReducedProgram",
    "SYSTEM_LEVEL",
    "USER_MODE_EXAMPLE",
    "as_pure_datalog_database",
    "assert_consistent",
    "assert_equivalent",
    "believed_relation",
    "cells_to_relation",
    "check_admissibility",
    "check_consistency",
    "check_equivalence",
    "compare_cautious_axiomatizations",
    "derivable_cells",
    "engine_axioms",
    "faithful_figure12_axioms",
    "figure12_axioms",
    "height_step_report",
    "filter_proof",
    "fixpoint_steps",
    "filtered_cells",
    "is_admissible",
    "is_consistent",
    "lambda_meaning",
    "molecules",
    "needs_specialization",
    "parse_clause",
    "parse_database",
    "parse_query",
    "proposition_holds",
    "relation_to_multilog",
    "run_both",
    "surprise_cells",
    "translate",
]
