"""Section 7 extensions: FILTER, FILTER-NULL and the sigma'd views.

The core MultiLog semantics deliberately omits the Jajodia-Sandhu filter
function sigma (it is what manufactures surprise stories).  Section 7
shows how to add it back orthogonally with two proof rules:

* **FILTER** -- a lower level inherits the part of a higher-level tuple
  whose data elements are classified at or below it;
* **FILTER-NULL** -- elements classified *above* the observing level are
  inherited as nulls (classified at the key level, per null integrity).

:func:`filtered_cells` implements both rules on top of a computed
:class:`~repro.multilog.proof.OperationalEngine`, which makes the
J-S views of Figures 2-3 reproducible from the deductive side; the
``bench_fig13_extensions`` bench cross-checks them against the
relational :func:`repro.mls.views.view_at`.

User-defined belief modes (the USER-BELIEF rule) need no extension code:
they are ordinary ``bel/7`` clauses in Pi -- see
:data:`USER_MODE_EXAMPLE` for the pattern.
"""

from __future__ import annotations

from repro.multilog.ast import NULL_VALUE
from repro.multilog.proof import CellRow, OperationalEngine
from repro.obs.context import current as _current_obs


def filtered_cells(engine: OperationalEngine, level: str, *,
                   audit=None) -> set[CellRow]:
    """The sigma-filtered cell view at ``level`` (FILTER + FILTER-NULL).

    A molecule ``(pred, key, tc)`` contributes at ``level`` when its key
    cell is classified at or below ``level`` -- even when ``tc`` itself is
    higher (that is precisely the downward inheritance the core semantics
    refuses to do).  Visible cells keep value and classification (FILTER);
    hidden cells surface as nulls classified at the key level
    (FILTER-NULL).  The reported level of every inherited cell is
    ``min(tc, level)`` -- i.e. ``level`` when the tuple descends.

    Every FILTER-NULL suppression is reported to ``audit`` (default: the
    ambient observation context's trail) as a ``filter_suppression``
    event naming the suppressed classification.
    """
    lattice = engine.lattice
    lattice.check_level(level)
    if not lattice.leq(level, engine.clearance):
        # No read-up: a session may only compute filtered views at or
        # below its own clearance.
        raise PermissionError(
            f"cannot compute the filtered view at {level!r} from a session "
            f"cleared at {engine.clearance!r}"
        )
    from repro.multilog.consistency import molecules  # deferred: avoids a cycle

    if audit is None:
        audit = _current_obs().audit
    out: set[CellRow] = set()
    for molecule in molecules(set(engine.cells()), engine.db):
        key_cells = molecule.key_cells()
        if not key_cells:
            continue
        key_cls = sorted(c[4] for c in key_cells)[0]
        if not lattice.leq(key_cls, level):
            continue  # the key itself is invisible: the molecule vanishes
        tc = molecule.level
        shown_level = tc if lattice.leq(tc, level) else level
        for cell in molecule.cells:
            if lattice.leq(cell[4], level):
                out.add((molecule.pred, molecule.key, cell[2], cell[3],
                         cell[4], shown_level))                              # FILTER
            else:
                out.add((molecule.pred, molecule.key, cell[2], NULL_VALUE,
                         key_cls, shown_level))                              # FILTER-NULL
                if audit.enabled:
                    audit.emit("filter_suppression", subject=level,
                               object=cell[4], predicate=molecule.pred,
                               attribute=cell[2])
    return out


def surprise_cells(engine: OperationalEngine, level: str, *,
                   audit=None) -> set[CellRow]:
    """Null cells of filtered molecules no other molecule papers over.

    These are the deductive image of the paper's surprise stories: the
    observer at ``level`` sees that a value exists above her but cannot
    see it.  A null-bearing filtered molecule is *covered* (no surprise)
    when another filtered molecule with the same key strictly subsumes it
    cell-for-cell -- the relational subsumption rule recast on cells.
    """
    from repro.multilog.consistency import molecules  # deferred: cycle

    lattice = engine.lattice
    lattice.check_level(level)
    filtered_by_molecule: list[dict[str, CellRow]] = []
    suppressed_cls: dict[CellRow, str] = {}
    for molecule in molecules(set(engine.cells()), engine.db):
        key_cells = molecule.key_cells()
        if not key_cells:
            continue
        key_cls = sorted(c[4] for c in key_cells)[0]
        if not lattice.leq(key_cls, level):
            continue
        tc = molecule.level
        shown_level = tc if lattice.leq(tc, level) else level
        per_attr: dict[str, CellRow] = {}
        for cell in molecule.cells:
            if lattice.leq(cell[4], level):
                per_attr[cell[2]] = (molecule.pred, molecule.key, cell[2],
                                     cell[3], cell[4], shown_level)
            else:
                row = (molecule.pred, molecule.key, cell[2],
                       NULL_VALUE, key_cls, shown_level)
                per_attr[cell[2]] = row
                suppressed_cls[row] = cell[4]
        filtered_by_molecule.append(per_attr)

    def covers(a: dict[str, CellRow], b: dict[str, CellRow]) -> bool:
        """a strictly subsumes b (same key, cell-wise more informative)."""
        if a is b or set(a) != set(b):
            return False
        sample_a, sample_b = next(iter(a.values())), next(iter(b.values()))
        if (sample_a[0], sample_a[1]) != (sample_b[0], sample_b[1]):
            return False
        for attr in b:
            va, ca = a[attr][3], a[attr][4]
            vb, cb = b[attr][3], b[attr][4]
            if (va, ca) == (vb, cb):
                continue
            if vb == NULL_VALUE and va != NULL_VALUE:
                continue
            return False
        return True

    surprises: set[CellRow] = set()
    for molecule_cells in filtered_by_molecule:
        nulls = [c for c in molecule_cells.values() if c[3] == NULL_VALUE]
        if not nulls:
            continue
        if any(covers(other, molecule_cells) for other in filtered_by_molecule):
            continue
        surprises.update(nulls)
    if audit is None:
        audit = _current_obs().audit
    if audit.enabled:
        for row in sorted(surprises, key=repr):
            pred, _key, attr, _value, cls, shown = row
            # object is the *suppressed* classification -- what the story
            # leaks the existence of -- not the null's own (key) class.
            audit.emit("surprise_story", subject=level,
                       object=suppressed_cls.get(row, cls),
                       predicate=pred, attribute=attr, shown_level=shown)
    return surprises


def filter_proof(engine: OperationalEngine, filtered: CellRow,
                 level: str) -> "ProofTree":
    """A Figure 13 proof tree for one sigma-filtered cell at ``level``.

    FILTER inherits a visible cell from a dominating molecule (premises:
    ``level <= R`` and ``c <= level`` plus the source cell's own
    DEDUCTION-G' derivation); FILTER-NULL inherits a null when the source
    cell's classification strictly dominates the observing level.
    """
    from repro.multilog.consistency import molecules  # deferred: cycle
    from repro.multilog.proof import Prover, ProofTree

    lattice = engine.lattice
    prover = Prover(engine)
    pred, key, attr, value, cls, shown = filtered
    for molecule in molecules(set(engine.cells()), engine.db):
        if molecule.pred != pred or molecule.key != key:
            continue
        key_cells = molecule.key_cells()
        if not key_cells:
            continue
        key_cls = sorted(c[4] for c in key_cells)[0]
        if not lattice.leq(key_cls, level):
            continue
        for cell in molecule.cells:
            if cell[2] != attr:
                continue
            source_visible = lattice.leq(cell[4], level)
            if value != NULL_VALUE:
                if not source_visible or cell[3] != value or cell[4] != cls:
                    continue
                rule, note = "FILTER", "inherit the dominated part of the tuple"
            else:
                if source_visible or cls != key_cls:
                    continue
                rule, note = "FILTER-NULL", "element classified above the observer"
            if lattice.leq(molecule.level, level):
                # Not a downward inheritance at all: the molecule is
                # ordinarily visible, so the plain derivation suffices.
                return prover._explain_cell(cell)
            conclusion = (f"<D, {engine.clearance}> |- "
                          f"{level}[{pred}({key} : {attr} -{cls}-> {value})]")
            premises = (
                prover.leq_tree(level, molecule.level),   # l <= R (descend)
                prover._explain_cell(cell),               # the source cell
            )
            return ProofTree(rule, conclusion, premises, note=note)
    raise ValueError(f"{filtered!r} is not a sigma-filtered cell at {level!r}")


#: A worked example of a user-defined belief mode (Section 7):
#: "corroborated" believes a cell at H only when it is firmly asserted at
#: H *and* also visible at some strictly lower level -- i.e. higher data
#: confirmed by a lower source.  User modes are plain bel/7 rules in Pi
#: that may build on the built-in modes.
USER_MODE_EXAMPLE = """
bel(P, K, A, V, C, H, corroborated) :-
    bel(P, K, A, V, C, H, fir),
    bel(P, K, A, V, C, L, opt),
    order(L, H).
"""
